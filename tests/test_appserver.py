"""Tests for the application-server tier (§4): the adaptive component
container versus the statically cloned servlet tier."""

import pytest

from repro.appserver import (
    ComponentContainer,
    ComponentDescriptor,
    ServletTierDeployment,
)
from repro.errors import ContainerError
from repro.util import VirtualClock


class EchoService:
    """A trivially observable business component."""

    created = 0

    def __init__(self):
        EchoService.created += 1

    def ping(self, value):
        return f"pong:{value}"


@pytest.fixture(autouse=True)
def _reset_counter():
    EchoService.created = 0


def make_container(clock=None, **overrides) -> ComponentContainer:
    container = ComponentContainer(clock=clock or VirtualClock())
    container.deploy(ComponentDescriptor(
        name="page-service", factory=EchoService,
        min_instances=overrides.pop("min_instances", 1),
        max_instances=overrides.pop("max_instances", 4),
        idle_timeout=overrides.pop("idle_timeout", 10.0),
    ))
    return container


class TestDescriptorValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ContainerError):
            ComponentDescriptor("x", EchoService, min_instances=-1)
        with pytest.raises(ContainerError):
            ComponentDescriptor("x", EchoService, min_instances=3,
                                max_instances=2)
        with pytest.raises(ContainerError):
            ComponentDescriptor("x", EchoService, idle_timeout=0)


class TestComponentContainer:
    def test_min_instances_created_eagerly(self):
        container = make_container(min_instances=2)
        assert container.resident_instances("page-service") == 2
        assert EchoService.created == 2

    def test_invoke_reuses_pooled_instance(self):
        container = make_container()
        assert container.invoke("page-service", "ping", 1) == "pong:1"
        assert container.invoke("page-service", "ping", 2) == "pong:2"
        assert EchoService.created == 1  # the min instance served both
        assert container.invocations == 2

    def test_unknown_component_rejected(self):
        container = make_container()
        with pytest.raises(ContainerError, match="no component"):
            container.invoke("ghost", "ping")

    def test_duplicate_deploy_rejected(self):
        container = make_container()
        with pytest.raises(ContainerError, match="already deployed"):
            container.deploy(ComponentDescriptor("page-service", EchoService))

    def test_pool_grows_under_concurrency(self):
        container = make_container(min_instances=1, max_instances=3)
        pool = container._pool("page-service")
        first = container._acquire(pool)
        second = container._acquire(pool)
        third = container._acquire(pool)
        assert container.resident_instances("page-service") == 3
        with pytest.raises(ContainerError, match="max instances"):
            container._acquire(pool)
        for instance in (first, second, third):
            container._release(pool, instance)
        assert container.pool_stats("page-service")["peak_resident"] == 3

    def test_sweep_passivates_idle_down_to_min(self):
        clock = VirtualClock()
        container = make_container(clock=clock, min_instances=1,
                                   max_instances=8, idle_timeout=5.0)
        pool = container._pool("page-service")
        held = [container._acquire(pool) for _ in range(5)]
        for instance in held:
            container._release(pool, instance)
        assert container.resident_instances("page-service") == 5
        assert container.sweep() == 0  # nothing idle long enough yet
        clock.advance(6)
        passivated = container.sweep()
        assert passivated == 4
        assert container.resident_instances("page-service") == 1
        stats = container.pool_stats("page-service")
        assert stats["passivated_total"] == 4

    def test_sweep_respects_recent_use(self):
        clock = VirtualClock()
        container = make_container(clock=clock, min_instances=0,
                                   max_instances=8, idle_timeout=5.0)
        pool = container._pool("page-service")
        stale = container._acquire(pool)
        fresh = container._acquire(pool)
        container._release(pool, stale)
        clock.advance(4)
        container._release(pool, fresh)  # used recently
        clock.advance(2)  # stale idle 6s, fresh idle 2s
        assert container.sweep() == 1
        assert container.resident_instances("page-service") == 1

    def test_shared_by_non_web_clients(self):
        """§4: the business tier is callable by any application."""
        container = make_container()

        def batch_job():
            return [container.invoke("page-service", "ping", i)
                    for i in range(3)]

        assert batch_job() == ["pong:0", "pong:1", "pong:2"]

    def test_undeploy(self):
        container = make_container()
        container.undeploy("page-service")
        assert container.deployed() == []


class TestServletTier:
    def test_every_clone_gets_every_service(self):
        tier = ServletTierDeployment(clone_count=3)
        tier.deploy("page-service", EchoService)
        tier.deploy("unit-service", EchoService)
        assert tier.resident_instances() == 6
        assert EchoService.created == 6

    def test_instances_never_released(self):
        tier = ServletTierDeployment(clone_count=2)
        tier.deploy("page-service", EchoService)
        before = tier.resident_instances()
        assert tier.sweep() == 0
        assert tier.resident_instances() == before

    def test_round_robin_invocation(self):
        tier = ServletTierDeployment(clone_count=2)
        tier.deploy("page-service", EchoService)
        assert tier.invoke("page-service", "ping", "a") == "pong:a"
        assert tier.invoke("page-service", "ping", "b") == "pong:b"
        assert tier.invocations == 2

    def test_validation(self):
        with pytest.raises(ContainerError):
            ServletTierDeployment(clone_count=0)
        tier = ServletTierDeployment(clone_count=1)
        tier.deploy("s", EchoService)
        with pytest.raises(ContainerError, match="already deployed"):
            tier.deploy("s", EchoService)
        with pytest.raises(ContainerError, match="no service"):
            tier.invoke("ghost", "ping")


class TestAdaptiveVersusStatic:
    def test_idle_resource_occupancy_differs(self):
        """The §4 claim in one test: after traffic drops, the adaptive
        container releases memory, the static clones cannot."""
        clock = VirtualClock()
        container = ComponentContainer(clock=clock)
        tier = ServletTierDeployment(clone_count=4, instances_per_service=2)
        for name in ("pages", "units", "operations"):
            container.deploy(ComponentDescriptor(
                name, EchoService, min_instances=0, max_instances=16,
                idle_timeout=30.0,
            ))
            tier.deploy(name, EchoService)

        # traffic burst
        for _ in range(10):
            container.invoke("pages", "ping", 1)
            tier.invoke("pages", "ping", 1)
        burst_adaptive = container.resident_instances()
        # traffic stops; time passes; the container sweeps
        clock.advance(60)
        container.sweep()
        assert container.resident_instances() == 0
        assert tier.resident_instances() == 24  # unchanged, forever
        assert burst_adaptive <= 16
