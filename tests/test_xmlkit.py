"""Tests for repro.xmlkit: tree, parser, writer, patterns."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuleError, XmlError, XmlParseError
from repro.xmlkit import (
    Element,
    Text,
    compile_pattern,
    parse_xml,
    pretty_print,
    serialize,
)


class TestTree:
    def test_append_sets_parent(self):
        root = Element("page")
        child = root.add("unit", {"id": "u1"})
        assert child.parent is root
        assert root.element_children() == [child]

    def test_detach(self):
        root = Element("page")
        child = root.add("unit")
        child.detach()
        assert child.parent is None
        assert root.children == []

    def test_append_moves_node_between_parents(self):
        a, b = Element("a"), Element("b")
        child = a.add("x")
        b.append(child)
        assert child.parent is b
        assert a.children == []

    def test_replace_with(self):
        root = Element("page")
        old = root.add("skeleton")
        new = Element("styled")
        old.replace_with(new)
        assert root.element_children() == [new]
        assert new.parent is root

    def test_replace_root_fails(self):
        with pytest.raises(XmlError):
            Element("root").replace_with(Element("other"))

    def test_copy_is_deep_and_detached(self):
        root = Element("page", {"id": "p"})
        root.add("unit", text="hello")
        clone = root.copy()
        assert clone.parent is None
        assert serialize(clone) == serialize(root)
        clone.find("unit").set("id", "changed")
        assert "changed" not in serialize(root)

    def test_text_aggregation(self):
        root = parse_xml("<a>one<b>two</b>three</a>")
        assert root.text() == "onetwothree"

    def test_find_and_find_all(self):
        root = parse_xml("<p><u n='1'/><v/><u n='2'/></p>")
        assert root.find("u").get("n") == "1"
        assert [u.get("n") for u in root.find_all("u")] == ["1", "2"]
        assert root.find("missing") is None

    def test_descendants(self):
        root = parse_xml("<a><b><c/><c/></b><c/></a>")
        assert len(root.descendants("c")) == 3

    def test_required_raises(self):
        with pytest.raises(XmlError, match="missing required child"):
            Element("page").required("unit")

    def test_require_attr(self):
        element = Element("unit", {"id": "u1"})
        assert element.require_attr("id") == "u1"
        with pytest.raises(XmlError, match="missing required attribute"):
            element.require_attr("entity")

    def test_empty_tag_rejected(self):
        with pytest.raises(XmlError):
            Element("")

    def test_root_navigation(self):
        root = Element("a")
        leaf = root.add("b").add("c")
        assert leaf.root() is root

    def test_insert_position(self):
        root = Element("a")
        root.add("x")
        root.insert(0, Element("first"))
        assert root.element_children()[0].tag == "first"


class TestParser:
    def test_simple_document(self):
        root = parse_xml('<page id="volume"><unit/></page>')
        assert root.tag == "page"
        assert root.get("id") == "volume"
        assert root.find("unit") is not None

    def test_xml_declaration_skipped(self):
        root = parse_xml('<?xml version="1.0"?><a/>')
        assert root.tag == "a"

    def test_comments_skipped(self):
        root = parse_xml("<a><!-- note --><b/><!-- more --></a>")
        assert [c.tag for c in root.element_children()] == ["b"]

    def test_cdata(self):
        root = parse_xml("<q><![CDATA[SELECT * FROM t WHERE a < 3]]></q>")
        assert root.text() == "SELECT * FROM t WHERE a < 3"

    def test_entities(self):
        root = parse_xml("<a b='&lt;&amp;&gt;&quot;&apos;'>&#65;&#x42;</a>")
        assert root.get("b") == "<&>\"'"
        assert root.text() == "AB"

    def test_single_quoted_attributes(self):
        assert parse_xml("<a x='1'/>").get("x") == "1"

    def test_namespaced_tags_kept_verbatim(self):
        root = parse_xml("<webml:dataUnit entity='Volume'/>")
        assert root.tag == "webml:dataUnit"

    def test_mismatched_tag_rejected(self):
        with pytest.raises(XmlParseError, match="mismatched end tag"):
            parse_xml("<a><b></a></b>")

    def test_unterminated_rejected(self):
        with pytest.raises(XmlParseError, match="unterminated"):
            parse_xml("<a><b>")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlParseError, match="duplicate attribute"):
            parse_xml("<a x='1' x='2'/>")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XmlParseError, match="after the root"):
            parse_xml("<a/><b/>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError, match="unknown entity"):
            parse_xml("<a>&nope;</a>")

    def test_doctype_rejected(self):
        with pytest.raises(XmlParseError, match="DOCTYPE"):
            parse_xml("<!DOCTYPE html><a/>")

    def test_error_location_reported(self):
        with pytest.raises(XmlParseError) as exc:
            parse_xml("<a>\n  <b x=1/>\n</a>")
        assert exc.value.line == 2

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlParseError, match="quoted"):
            parse_xml("<a x=1/>")

    def test_whitespace_preserved_in_content(self):
        root = parse_xml("<a>  two  spaces  </a>")
        assert root.text() == "  two  spaces  "


class TestWriter:
    def test_serialize_escapes(self):
        root = Element("a", {"q": 'say "hi" <now>'})
        root.add_text("1 < 2 & 3 > 2")
        out = serialize(root)
        assert "&lt;" in out and "&amp;" in out and "&quot;" in out

    def test_serialize_self_closes_empty(self):
        assert serialize(Element("br")) == "<br/>"

    def test_roundtrip(self):
        source = '<page id="p1"><unit kind="data">Volume</unit><x/></page>'
        assert serialize(parse_xml(source)) == source

    def test_pretty_print_indents(self):
        root = parse_xml("<a><b><c/></b></a>")
        out = pretty_print(root)
        assert out == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_pretty_print_inline_text(self):
        root = parse_xml("<a><b>hello</b></a>")
        assert "<b>hello</b>" in pretty_print(root)

    def test_pretty_roundtrip_structure(self):
        source = "<page><unit id='u'>text</unit><other/></page>"
        reparsed = parse_xml(pretty_print(parse_xml(source)))
        assert reparsed.find("unit").text() == "text"
        assert reparsed.find("other") is not None


_tags = st.sampled_from(["page", "unit", "cell", "webml:dataUnit", "row"])
_attr_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=12
)
# Empty text nodes vanish on reparse (<a></a> == <a/>), so require content.
_text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=1, max_size=12
)


@st.composite
def _xml_trees(draw, depth=0):
    element = Element(draw(_tags))
    for name, value in draw(
        st.dictionaries(st.sampled_from(["id", "entity", "class"]), _attr_values, max_size=2)
    ).items():
        element.set(name, value)
    if depth < 3:
        for _ in range(draw(st.integers(0, 2))):
            kind = draw(st.sampled_from(["element", "text"]))
            if kind == "text":
                element.append(Text(draw(_text_values)))
            else:
                element.append(draw(_xml_trees(depth=depth + 1)))
    return element


class TestRoundtripProperties:
    @given(_xml_trees())
    def test_serialize_parse_roundtrip(self, tree):
        reparsed = parse_xml(serialize(tree))
        assert serialize(reparsed) == serialize(tree)


class TestPatterns:
    def test_tag_match(self):
        pattern = compile_pattern("unit")
        assert pattern.matches(Element("unit"))
        assert not pattern.matches(Element("page"))

    def test_wildcard(self):
        assert compile_pattern("*").matches(Element("anything"))

    def test_attribute_presence(self):
        pattern = compile_pattern("unit[@entity]")
        assert pattern.matches(Element("unit", {"entity": "Volume"}))
        assert not pattern.matches(Element("unit"))

    def test_attribute_equality(self):
        pattern = compile_pattern("unit[@kind='index']")
        assert pattern.matches(Element("unit", {"kind": "index"}))
        assert not pattern.matches(Element("unit", {"kind": "data"}))

    def test_parent_axis(self):
        tree = parse_xml("<page><unit/></page>")
        unit = tree.find("unit")
        assert compile_pattern("page/unit").matches(unit)
        assert not compile_pattern("area/unit").matches(unit)

    def test_ancestor_axis(self):
        tree = parse_xml("<page><row><unit/></row></page>")
        unit = tree.find("row").find("unit")
        assert compile_pattern("page//unit").matches(unit)
        assert not compile_pattern("page/unit").matches(unit)

    def test_rooted_pattern(self):
        tree = parse_xml("<page><page><unit/></page></page>")
        inner_unit = tree.find("page").find("unit")
        # rooted: the page step must be the tree root
        assert compile_pattern("/page/unit").matches(inner_unit) is False
        outer = Element("page")
        direct = outer.add("unit")
        assert compile_pattern("/page/unit").matches(direct)

    def test_multiple_predicates(self):
        pattern = compile_pattern("unit[@kind='data'][@entity]")
        assert pattern.matches(Element("unit", {"kind": "data", "entity": "E"}))
        assert not pattern.matches(Element("unit", {"kind": "data"}))

    def test_specificity_ordering(self):
        generic = compile_pattern("*")
        tag = compile_pattern("unit")
        qualified = compile_pattern("page/unit[@kind='index']")
        assert generic.specificity < tag.specificity < qualified.specificity

    def test_bad_syntax_rejected(self):
        for bad in ["", "[@x]", "unit[@]", "unit[", "a b", "un*t"]:
            with pytest.raises(RuleError):
                compile_pattern(bad)


class TestWriterEdgeCases:
    def test_escape_attr_quotes(self):
        from repro.xmlkit.writer import escape_attr, escape_text

        assert escape_attr('a"b<c>&d') == "a&quot;b&lt;c&gt;&amp;d"
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_pretty_print_drops_whitespace_only_text(self):
        root = parse_xml("<a>\n  <b/>\n</a>")
        assert pretty_print(root) == "<a>\n  <b/>\n</a>\n"

    def test_text_copy_is_independent(self):
        original = Text("hello")
        clone = original.copy()
        clone.value = "changed"
        assert original.value == "hello"


class TestPatternSpecificityTies:
    def test_equal_specificity_first_declared_wins_in_stylesheet(self):
        from repro.presentation.xslt import Stylesheet, UnitRule

        first = UnitRule(pattern="webml:dataUnit", set_attrs={"who": "first"})
        second = UnitRule(pattern="webml:dataUnit", set_attrs={"who": "second"})
        sheet = Stylesheet("s", unit_rules=[first, second])
        styled = sheet.apply("<p><webml:dataUnit unit='u'/></p>")
        assert 'who="first"' in styled

    def test_predicate_beats_bare_tag(self):
        bare = compile_pattern("webml:dataUnit")
        qualified = compile_pattern("webml:dataUnit[@kind='data']")
        assert qualified.specificity > bare.specificity
