"""Smoke tests: every shipped example must run clean from the repo root.

The examples are deliverables — they break loudly here rather than in a
reader's terminal.
"""

import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES = sorted(
    name for name in os.listdir(os.path.join(_REPO_ROOT, "examples"))
    if name.endswith(".py")
)


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, os.path.join("examples", script)],
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should narrate what they do"


def test_example_inventory():
    assert "quickstart.py" in _EXAMPLES
    assert len(_EXAMPLES) >= 3  # the deliverable floor; we ship five
