"""Compiled query execution: expression parity (values *and* error
messages), EXPLAIN mode annotations, plan-cache interaction (DDL and
ANALYZE must recompile, a dropped schema must poison the compiled
entry), the prepared-statement fast path, ordering edge cases shared
by both modes, and the observability surface the compiler feeds."""

import json

import pytest

from repro.errors import QueryError
from repro.rdb import Database
from repro.rdb.compile import (
    CompileError,
    compile_plan,
    compile_row_key,
    compile_scalar,
    compile_tuple,
)
from repro.rdb.executor import DescendingKey, SortKey, sort_rows_with_keys
from repro.rdb.sqlparser import parse_select


def _store() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " title VARCHAR(80), price FLOAT, year INTEGER,"
        " PRIMARY KEY (oid))"
    )
    rows = [
        ("alpha", 10.0, 1999),
        ("beta", None, 2001),
        ("gamma", 7.5, None),
        ("delta", 10.0, 2001),
    ]
    for title, price, year in rows:
        db.insert_row("book", {"title": title, "price": price, "year": year})
    return db


def _both(db, sql, params=None):
    """(compiled rows, interpreted rows) for one SQL text."""
    compiled = db.prepare(sql)
    interpreted = db.prepare(sql, compiled=False)
    assert compiled.exec_mode in ("compiled", "mixed")
    assert interpreted.exec_mode == "interpreted"
    return (
        compiled.execute(params or {}).as_tuples(),
        interpreted.execute(params or {}).as_tuples(),
    )


class TestExpressionParity:
    """Value-level parity on the branches most likely to drift."""

    @pytest.mark.parametrize("predicate", [
        "price > 8",                      # NULL operand -> UNKNOWN
        "price = 10.0 AND year > 2000",   # 3VL AND
        "price IS NULL OR year IS NULL",  # 3VL OR
        "NOT (price > 8)",
        "title LIKE '%a'",
        "title NOT LIKE 'b%'",
        "title LIKE :pat",
        "year IN (1999, 2001)",
        "year NOT IN (1999, :cut)",
        "price BETWEEN 7 AND 10",
        "price NOT BETWEEN 7 AND 10",
        "COALESCE(price, 0.0) > 8",
        "LENGTH(title) = 5",
        "UPPER(title) = 'ALPHA'",
        "price * 2 - 1 >= year - 1982",
        "price / 4 > 2",
    ])
    def test_predicates_agree(self, predicate):
        db = _store()
        sql = f"SELECT title FROM book WHERE {predicate} ORDER BY oid"
        params = {"pat": "%t%", "cut": 2001}
        compiled_rows, interpreted_rows = _both(db, sql, params)
        assert compiled_rows == interpreted_rows

    def test_in_list_with_null_options_is_unknown(self):
        db = _store()
        # 1999 IN (NULL, 2001) is UNKNOWN, not FALSE: NOT IN must
        # filter those rows out in both modes
        sql = ("SELECT title FROM book"
               " WHERE year NOT IN (2001, price) ORDER BY oid")
        compiled_rows, interpreted_rows = _both(db, sql)
        assert compiled_rows == interpreted_rows
        assert compiled_rows == [("alpha",)]

    def test_projection_and_concat_agree(self):
        db = _store()
        sql = ("SELECT title || '-' || year AS tag,"
               " price * :rate + 1 AS px FROM book ORDER BY oid")
        compiled_rows, interpreted_rows = _both(db, sql, {"rate": 2.0})
        assert compiled_rows == interpreted_rows
        assert compiled_rows[0] == ("alpha-1999", 21.0)
        assert compiled_rows[2][0] is None  # NULL year poisons concat

    def test_aggregates_agree(self):
        db = _store()
        sql = ("SELECT price, COUNT(*) AS n, SUM(year) AS sy"
               " FROM book GROUP BY price HAVING COUNT(*) >= 1"
               " ORDER BY n DESC, price")
        compiled_rows, interpreted_rows = _both(db, sql)
        assert compiled_rows == interpreted_rows


class TestErrorMessageParity:
    """A compiled plan must fail like the interpreter, byte for byte."""

    @pytest.mark.parametrize("sql,params", [
        ("SELECT year / 0 AS x FROM book", {}),
        ("SELECT year % 0 AS x FROM book", {}),
        ("SELECT title + 1 AS x FROM book", {}),
        ("SELECT -title AS x FROM book", {}),
        ("SELECT title FROM book WHERE year > :missing", {}),
        ("SELECT title FROM book WHERE title > 1999", {}),
    ])
    def test_identical_query_errors(self, sql, params):
        db = _store()
        with pytest.raises(QueryError) as compiled_err:
            db.prepare(sql).execute(params)
        with pytest.raises(QueryError) as interpreted_err:
            db.prepare(sql, compiled=False).execute(params)
        assert str(compiled_err.value) == str(interpreted_err.value)


class TestCompileUnits:
    """Direct checks on the compiler's public helpers."""

    COLUMNS = {"b": ("title", "price", "year")}

    def _where(self, predicate):
        return parse_select(
            f"SELECT b.title FROM book b WHERE {predicate}"
        ).where

    def test_compile_scalar_row_mode(self):
        compiled = compile_scalar(
            self._where("b.price > 8"), self.COLUMNS, mode="row"
        )
        assert compiled.compiled
        assert "RowScope" not in compiled.source
        assert compiled.fn({"title": "x", "price": 9.0, "year": 1}, {}) is True
        assert compiled.fn({"title": "x", "price": None, "year": 1}, {}) is None

    def test_compile_scalar_falls_back_on_aggregates(self):
        expr = parse_select(
            "SELECT b.title FROM book b GROUP BY b.title"
            " HAVING COUNT(*) > 1"
        ).having
        compiled = compile_scalar(expr, self.COLUMNS)
        assert not compiled.compiled  # aggregates stay interpreted

    def test_compile_scalar_rejects_unknown_column(self):
        with pytest.raises(QueryError):
            # resolution failures are *semantic* errors and must raise
            # the same QueryError the interpreter would, not fall back
            db = _store()
            db.query("SELECT nothere FROM book")

    def test_compile_tuple_single_key_is_a_tuple(self):
        compiled = compile_tuple(
            [self._where("b.year = 1999").left], self.COLUMNS, mode="row"
        )
        assert compiled.fn({"title": "t", "price": 1.0, "year": 7}, {}) == (7,)

    def test_compile_row_key(self):
        key = compile_row_key(("year", "title"))
        assert key({"title": "t", "price": 1.0, "year": 7}) == (7, "t")

    def test_compile_plan_counts_fallbacks(self):
        db = _store()
        plan = db.prepare("SELECT title FROM book WHERE price > 8")
        assert plan.compile_stats == {"compiled": 2, "interpreted": 0} or \
            plan.compile_stats["interpreted"] == 0
        assert plan.compile_seconds >= 0.0
        stats = compile_plan(plan)
        assert stats["interpreted"] == 0


class TestExplainAnnotations:
    def test_compiled_plan_is_annotated(self):
        db = _store()
        lines = db.prepare(
            "SELECT title FROM book WHERE price > 8 ORDER BY title LIMIT 2"
        ).explain().splitlines()
        # the mode rides on the root operator's bracket: consumers that
        # read lines[0] / lines[-1] positionally must keep working
        assert lines[0].startswith("Limit")
        assert "exec=compiled" in "\n".join(lines)
        assert "fused" in "\n".join(lines)

    def test_interpreted_plan_is_annotated(self):
        db = _store()
        explained = db.prepare(
            "SELECT title FROM book WHERE price > 8", compiled=False
        ).explain()
        assert "exec=interpreted" in explained
        assert "fused" not in explained

    def test_seed_plan_is_interpreted(self):
        db = _store()
        plan = db.prepare("SELECT title FROM book", optimize=False)
        assert plan.exec_mode == "interpreted"
        assert "exec=interpreted" in plan.explain()


class TestPlanCacheInteraction:
    SQL = "SELECT title FROM book WHERE year = 2001"

    def test_ddl_invalidation_recompiles(self):
        db = _store()
        before = db.prepare(self.SQL)
        compiled_before = db.observability_stats()["plans_compiled"]
        db.execute("CREATE INDEX ix_book_year ON book (year)")
        assert db.cached_plan_count() == 0
        after = db.prepare(self.SQL)
        assert after is not before  # fresh plan, fresh closures
        assert after.exec_mode == "compiled"
        assert db.observability_stats()["plans_compiled"] == \
            compiled_before + 1

    def test_analyze_invalidation_recompiles(self):
        db = _store()
        before = db.prepare(self.SQL)
        db.execute("ANALYZE book")
        after = db.prepare(self.SQL)
        assert after is not before
        assert after.exec_mode == "compiled"

    def test_dropped_schema_never_serves_poisoned_plan(self):
        db = _store()
        assert db.query(self.SQL).as_tuples() == [("beta",), ("delta",)]
        db.execute("DROP TABLE book")
        db.execute(
            "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
            " name VARCHAR(40), PRIMARY KEY (oid))"
        )
        # the old compiled plan read book.title / book.year; both DDL
        # statements evicted it, so the text replans against the new
        # schema — never runs stale closures
        assert db.cached_plan_count() == 0
        db.insert_row("book", {"name": "x"})
        with pytest.raises(QueryError):
            db.query(self.SQL)

    def test_prepared_statement_fast_path_counts_reuse(self):
        db = _store()
        db.query(self.SQL)
        assert db.stats.prepared_reuse == 0
        db.query(self.SQL)
        db.query(self.SQL)
        assert db.stats.prepared_reuse == 2
        assert db.stats.selects == 3

    def test_fast_path_self_heals_on_stale_hint(self):
        db = _store()
        # simulate "probe saw the entry, another thread invalidated it":
        # the fast path re-parses the SQL text under the plan lock
        rows = db._execute_select(None, self.SQL, {})
        assert rows.as_tuples() == [("beta",), ("delta",)]

    def test_fast_path_rejects_non_select_text(self):
        db = _store()
        with pytest.raises(QueryError):
            db._execute_select(None, "DELETE FROM book", {})


class TestOrderingEdgeCases:
    """Satellite: the shared sorter must give both modes one answer."""

    def test_null_ordering_matches_in_both_modes(self):
        db = _store()
        # NULLS FIRST ascending, NULLS LAST descending — the NULL price
        # ("beta") bookends both directions, oid breaks the 10.0 tie
        expected = {
            "ASC": [("beta",), ("gamma",), ("alpha",), ("delta",)],
            "DESC": [("alpha",), ("delta",), ("gamma",), ("beta",)],
        }
        for direction, want in expected.items():
            sql = f"SELECT title FROM book ORDER BY price {direction}, oid"
            compiled_rows, interpreted_rows = _both(db, sql)
            assert compiled_rows == interpreted_rows == want

    def test_mixed_type_keys_sort_identically(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
            " v VARCHAR(20), PRIMARY KEY (oid))"
        )
        for v in ("10", "2", None, "apple", ""):
            db.insert_row("t", {"v": v})
        for sql in ("SELECT v FROM t ORDER BY v, oid",
                    "SELECT v FROM t ORDER BY v DESC, oid"):
            compiled_rows, interpreted_rows = _both(db, sql)
            assert compiled_rows == interpreted_rows

    def test_descending_key_inverts_sortkey(self):
        # descending: larger values sort first, NULLs sort last
        assert DescendingKey(5) < DescendingKey(2)
        assert DescendingKey(5) < DescendingKey(None)
        # ascending: NULLs sort first
        assert SortKey(None) < SortKey(5)

    def test_sort_rows_with_keys_multi_key(self):
        items = [("a", (1, "x")), ("b", (None, "y")), ("c", (1, "a"))]

        class _Key:
            def __init__(self, descending):
                self.descending = descending

        # key 1 ascending (NULL first), key 2 descending breaks the tie
        sort_rows_with_keys(items, [_Key(False), _Key(True)])
        assert [row for row, _ in items] == ["b", "a", "c"]


class TestCompileObservability:
    def test_database_stats_expose_compile_counters(self):
        db = _store()
        db.query("SELECT title FROM book WHERE price > 8")
        db.prepare("SELECT title FROM book", optimize=False).execute({})
        stats = db.observability_stats()
        assert stats["plans_compiled"] >= 1
        assert stats["plans_interpreted"] >= 1
        assert stats["compile_ms_total"] >= 0.0
        assert stats["selects_compiled"] >= 1
        assert "compile_fallback_exprs" in stats

    def test_slow_log_entries_carry_mode(self):
        db = _store()
        db.slow_log.threshold_seconds = 0.0
        db.query("SELECT title FROM book WHERE price > 8")
        entry = db.slow_log.entries()[0]
        assert entry.mode == "compiled"
        assert entry.to_dict()["mode"] == "compiled"

    def test_status_page_shows_compile_counters_and_mode(self, acm_app):
        acm_app.database.slow_log.threshold_seconds = 0.0
        acm_app.get(acm_app.page_url("public", "Volumes"))
        text = acm_app.get("/_status").body
        assert "plans_compiled" in text
        assert "compile_ms_total" in text
        assert "rdb.compile_seconds" in text
        assert "[compiled]" in text  # slow-query mode suffix
        doc = json.loads(acm_app.get("/_status?format=json").body)
        rdb = doc["metrics"]["external"]["rdb.database"]
        assert rdb["plans_compiled"] >= 1
        assert rdb["selects_compiled"] >= 1
        assert any(e["mode"] == "compiled" for e in doc["slow_queries"])
