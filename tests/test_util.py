"""Tests for repro.util: naming, topological ordering, clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    CycleError,
    SystemClock,
    VirtualClock,
    camel_to_snake,
    make_identifier,
    snake_to_camel,
    stable_topological_sort,
    unique_name,
)


class TestNaming:
    def test_camel_to_snake_simple(self):
        assert camel_to_snake("VolumeToIssue") == "volume_to_issue"

    def test_camel_to_snake_acronym(self):
        assert camel_to_snake("ACMPaper") == "acm_paper"

    def test_camel_to_snake_already_lower(self):
        assert camel_to_snake("volume") == "volume"

    def test_camel_to_snake_digits(self):
        assert camel_to_snake("Page2Unit") == "page2_unit"

    def test_snake_to_camel(self):
        assert snake_to_camel("volume_to_issue") == "VolumeToIssue"

    def test_snake_to_camel_lower_first(self):
        assert snake_to_camel("volume data", upper_first=False) == "volumeData"

    def test_snake_to_camel_empty(self):
        assert snake_to_camel("") == ""

    def test_make_identifier_punctuation(self):
        assert make_identifier("Issues&Papers") == "issues_papers"

    def test_make_identifier_leading_digit(self):
        assert make_identifier("2-column layout") == "_2_column_layout"

    def test_make_identifier_empty(self):
        assert make_identifier("  !! ") == "_"

    def test_unique_name_no_clash(self):
        taken: set[str] = set()
        assert unique_name("page", taken) == "page"
        assert "page" in taken

    def test_unique_name_clash_counts_up(self):
        taken = {"page", "page_2"}
        assert unique_name("page", taken) == "page_3"

    @given(st.text(min_size=1, max_size=40))
    def test_make_identifier_always_valid(self, text):
        ident = make_identifier(text)
        assert ident.isidentifier()

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
                   min_size=1, max_size=20))
    def test_camel_snake_camel_roundtrip_shape(self, name):
        # Round-tripping normalizes case boundaries but must stay stable:
        # a second conversion is a fixed point.
        once = camel_to_snake(name)
        assert camel_to_snake(once) == once


class TestTopologicalSort:
    def test_no_dependencies_preserves_order(self):
        order = stable_topological_sort(["c", "a", "b"], {})
        assert order == ["c", "a", "b"]

    def test_linear_chain(self):
        deps = {"b": ["a"], "c": ["b"]}
        assert stable_topological_sort(["c", "b", "a"], deps) == ["a", "b", "c"]

    def test_diamond_is_stable(self):
        deps = {"b": ["a"], "c": ["a"], "d": ["b", "c"]}
        assert stable_topological_sort(["a", "b", "c", "d"], deps) == ["a", "b", "c", "d"]

    def test_external_dependencies_ignored(self):
        # A unit fed only by the HTTP request depends on nothing orderable.
        deps = {"a": ["http-request"]}
        assert stable_topological_sort(["a"], deps) == ["a"]

    def test_self_dependency_ignored(self):
        assert stable_topological_sort(["a"], {"a": ["a"]}) == ["a"]

    def test_cycle_detected(self):
        deps = {"a": ["b"], "b": ["a"]}
        with pytest.raises(CycleError) as exc:
            stable_topological_sort(["a", "b"], deps)
        assert set(exc.value.members) == {"a", "b"}

    @given(
        st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=30).flatmap(
            lambda nodes: st.tuples(
                st.just(nodes),
                st.dictionaries(
                    st.sampled_from(nodes),
                    st.lists(st.sampled_from(nodes), max_size=4),
                    max_size=len(nodes),
                ),
            )
        )
    )
    def test_order_respects_dependencies(self, nodes_and_deps):
        nodes, deps = nodes_and_deps
        try:
            order = stable_topological_sort(nodes, deps)
        except CycleError:
            return  # cycles are a legitimate rejection
        assert sorted(order) == sorted(nodes)
        position = {n: i for i, n in enumerate(order)}
        for node, before in deps.items():
            for dep in before:
                if dep in position and dep != node:
                    assert position[dep] < position[node]


class TestClocks:
    def test_virtual_clock_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_virtual_clock_advances(self):
        clock = VirtualClock(start=5.0)
        assert clock.advance(2.5) == 7.5
        assert clock.now() == 7.5

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_system_clock_monotonic(self):
        clock = SystemClock()
        first = clock.now()
        assert clock.now() >= first
