"""The sans-IO protocol core: parsing, encoding, connection state.

Everything here runs without a socket — the point of the layer.  The
two real edges (threaded and async) are thin IO shells over these
objects, so the protocol matrix is proven once, here, and both edges
inherit it.
"""

from __future__ import annotations

import gzip

import pytest

from repro.httpcore import (
    GZIP_MIN_BYTES,
    HttpConnection,
    LAST_CHUNK,
    ProtocolError,
    RequestParser,
    accepts_gzip,
    encode_chunk,
    encode_response,
    encode_simple,
    entry_response,
    etag_matches,
)
from repro.httpcore.delivery import cache_control_for, finalize_delivery
from repro.httpcore.parsing import canonical_header, session_id_from_headers
from repro.caching.page_cache import PageCache, content_etag
from repro.mvc.http import HttpRequest, HttpResponse


# -- request parsing ----------------------------------------------------------


class TestRequestParser:
    def test_simple_get(self):
        parser = RequestParser()
        requests = parser.feed(
            b"GET /public/page1?a=1&b=2 HTTP/1.1\r\n"
            b"Host: x\r\nUser-Agent: test\r\n\r\n"
        )
        assert len(requests) == 1
        request = requests[0]
        assert request.method == "GET"
        assert request.path == "/public/page1"
        assert request.params == {"a": "1", "b": "2"}
        assert request.headers["User-Agent"] == "test"
        assert request.http_version == "HTTP/1.1"

    def test_incremental_feed(self):
        parser = RequestParser()
        head = b"GET /x HTTP/1.1\r\nHost: x\r\n\r\n"
        for byte in head[:-1]:
            assert parser.feed(bytes([byte])) == []
        requests = parser.feed(head[-1:])
        assert [r.path for r in requests] == ["/x"]

    def test_pipelined_requests(self):
        parser = RequestParser()
        requests = parser.feed(
            b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
            b"GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert [r.path for r in requests] == ["/a", "/b"]

    def test_post_form_body_merges_params(self):
        body = b"name=ceri&tag=a&tag=b"
        parser = RequestParser()
        requests = parser.feed(
            b"POST /do/op1?x=1 HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/x-www-form-urlencoded\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode() + body
        )
        request = requests[0]
        assert request.method == "POST"
        assert request.params["x"] == "1"
        assert request.params["name"] == "ceri"
        assert request.params["tag"] == ["a", "b"]

    def test_session_cookie_extracted(self):
        parser = RequestParser()
        (request,) = parser.feed(
            b"GET /x HTTP/1.1\r\nHost: x\r\n"
            b"Cookie: other=1; repro_session=s42\r\n\r\n"
        )
        assert request.session_id == "s42"

    def test_header_names_canonicalized(self):
        parser = RequestParser()
        (request,) = parser.feed(
            b"GET /x HTTP/1.1\r\nhost: x\r\nuSER-aGENT: ua\r\n\r\n"
        )
        assert request.headers["Host"] == "x"
        assert request.headers["User-Agent"] == "ua"
        assert canonical_header("if-none-match") == "If-None-Match"

    @pytest.mark.parametrize("raw", [
        b"NOT-HTTP\r\n\r\n",
        b"GET /x SPDY/9\r\n\r\n",
        b"GET /x HTTP/1.1\r\nBroken Header No Colon\r\n\r\n",
    ])
    def test_malformed_requests_rejected(self, raw):
        with pytest.raises(ProtocolError):
            RequestParser().feed(raw)

    def test_oversized_header_block_rejected(self):
        parser = RequestParser(max_header_bytes=128)
        with pytest.raises(ProtocolError):
            parser.feed(b"GET /x HTTP/1.1\r\nX-Pad: " + b"a" * 256)

    def test_session_id_from_headers(self):
        assert session_id_from_headers(
            {"Cookie": "repro_session=s7"}
        ) == "s7"
        assert session_id_from_headers({}) is None


# -- response encoding --------------------------------------------------------


class TestEncodeResponse:
    def test_basic_200(self):
        response = HttpResponse(status=200, body="<html>hi</html>")
        wire = encode_response(response, date="D")
        head, _, body = wire.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Date: D" in lines
        assert "Content-Type: text/html" in lines
        assert f"Content-Length: {len(response.body)}" in lines
        assert "Connection: keep-alive" in lines
        assert body == b"<html>hi</html>"

    def test_header_order_deterministic(self):
        response = HttpResponse(status=200, body="x",
                                headers={"ETag": '"e"', "Cache-Control": "no-cache"})
        assert encode_response(response, date="D") == encode_response(
            HttpResponse(status=200, body="x",
                         headers={"ETag": '"e"', "Cache-Control": "no-cache"}),
            date="D",
        )

    def test_304_has_no_body_or_length(self):
        wire = encode_response(HttpResponse.not_modified('"e"'), date="D")
        assert wire.endswith(b"\r\n\r\n")
        text = wire.decode()
        assert "304 Not Modified" in text
        assert "Content-Length" not in text
        assert "Content-Type" not in text

    def test_encoded_body_wins(self):
        body = "x" * 500
        response = HttpResponse(status=200, body=body)
        response.encoded_body = gzip.compress(body.encode(), mtime=0)
        response.headers["Content-Encoding"] = "gzip"
        wire = encode_response(response, date="D")
        assert f"Content-Length: {len(response.encoded_body)}".encode() in wire
        assert wire.endswith(response.encoded_body)

    def test_close_connection_header(self):
        wire = encode_response(HttpResponse(body="x"), keep_alive=False,
                               date="D")
        assert b"Connection: close" in wire

    def test_chunked_head(self):
        wire = encode_response(HttpResponse(body=""), date="D", chunked=True)
        assert b"Transfer-Encoding: chunked" in wire
        assert b"Content-Length" not in wire
        assert wire.endswith(b"\r\n\r\n")

    def test_chunk_framing(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_encode_simple(self):
        wire = encode_simple(400, "bad", date="D")
        assert wire.startswith(b"HTTP/1.1 400 Bad Request\r\n")
        assert b"Connection: close" in wire
        assert wire.endswith(b"bad")


# -- the connection state machine --------------------------------------------


def _request(version="HTTP/1.1", connection=None, session=None,
             cookie=None) -> HttpRequest:
    headers = {}
    if connection:
        headers["Connection"] = connection
    if cookie:
        headers["Cookie"] = f"repro_session={cookie}"
    return HttpRequest(path="/x", headers=headers, http_version=version,
                       session_id=session)


class TestHttpConnection:
    @pytest.mark.parametrize("version,connection,expect_keep", [
        ("HTTP/1.1", None, True),
        ("HTTP/1.1", "keep-alive", True),
        ("HTTP/1.1", "close", False),
        ("HTTP/1.0", None, False),
        ("HTTP/1.0", "keep-alive", True),
        ("HTTP/1.0", "close", False),
    ])
    def test_keep_alive_matrix(self, version, connection, expect_keep):
        request = _request(version, connection)
        assert HttpConnection.keep_alive_after(request) is expect_keep

    def test_close_latches(self):
        conn = HttpConnection()
        wire = conn.send_response(_request(connection="close"),
                                  HttpResponse(body="x"), date="D")
        assert b"Connection: close" in wire
        assert conn.should_close
        # pipelined input after a close-marked response is discarded
        assert conn.receive_bytes(b"GET /y HTTP/1.1\r\nHost: x\r\n\r\n") == []

    def test_keep_alive_persists(self):
        conn = HttpConnection()
        conn.send_response(_request(), HttpResponse(body="x"), date="D")
        assert not conn.should_close
        assert conn.requests_handled == 1

    def test_new_session_sets_cookie(self):
        conn = HttpConnection()
        request = _request(session="s9")  # app assigned s9, none presented
        response = HttpResponse(body="x")
        conn.send_response(request, response, date="D")
        assert response.headers["Set-Cookie"] == "repro_session=s9; Path=/"

    def test_presented_session_sets_no_cookie(self):
        conn = HttpConnection()
        request = _request(session="s9", cookie="s9")
        response = HttpResponse(body="x")
        conn.send_response(request, response, date="D")
        assert "Set-Cookie" not in response.headers


# -- the delivery policy ------------------------------------------------------


class TestDeliveryPolicy:
    def test_etag_matches(self):
        assert etag_matches('"a"', '"a"')
        assert etag_matches('"a", "b"', '"b"')
        assert etag_matches("*", '"anything"')
        assert not etag_matches('"a"', '"b"')
        assert not etag_matches(None, '"a"')

    def test_accepts_gzip(self):
        assert accepts_gzip(HttpRequest(
            path="/", headers={"Accept-Encoding": "gzip, deflate"}
        ))
        assert not accepts_gzip(HttpRequest(path="/"))

    def test_cache_control(self):
        assert cache_control_for(False, None) == "public, no-cache"
        assert cache_control_for(True, None) == "private, no-cache"
        assert cache_control_for(False, 30.0) == "public, max-age=30"

    def test_entry_response_roundtrip(self):
        cache = PageCache()
        body = "<html>" + "x" * GZIP_MIN_BYTES + "</html>"
        entry = cache.make_entry(body)
        plain = entry_response(entry, HttpRequest(path="/"), "public, no-cache")
        assert plain.status == 200 and plain.body == body
        assert plain.headers["ETag"] == content_etag(body)
        gzipped = entry_response(
            entry, HttpRequest(path="/", headers={"Accept-Encoding": "gzip"}),
            "public, no-cache",
        )
        assert gzipped.encoded_body == entry.gzip_body
        assert gzipped.headers["Vary"] == "Accept-Encoding"
        revalidated = entry_response(
            entry, HttpRequest(path="/", headers={"If-None-Match": entry.etag}),
            "public, no-cache",
        )
        assert revalidated.status == 304 and revalidated.body == ""

    def test_finalize_digests_fresh_render(self):
        request = HttpRequest(path="/")
        response = finalize_delivery(request, HttpResponse(body="<p>x</p>"))
        assert response.headers["ETag"] == content_etag("<p>x</p>")
        assert response.headers["Cache-Control"] == "no-cache"

    def test_finalize_leaves_non_html_alone(self):
        response = HttpResponse(body="text", content_type="text/plain")
        assert "ETag" not in finalize_delivery(
            HttpRequest(path="/"), response
        ).headers


# -- page-cache flight helpers (the streaming contract) -----------------------


class TestFlightHelpers:
    def test_leader_and_followers(self):
        cache = PageCache()
        assert cache.begin_flight("k")
        assert not cache.begin_flight("k")
        cache.finish_flight("k")
        assert cache.begin_flight("k")
        cache.finish_flight("k")

    def test_put_if_current_respects_generation(self):
        cache = PageCache()
        generation = cache.generation
        entry = cache.make_entry("body", entities=["Volume"])
        cache.invalidate_writes(entities=["Volume"])
        assert not cache.put_if_current("k", entry, generation)
        assert cache.put_if_current("k", entry, cache.generation)
        assert cache.peek("k") is entry

    def test_peek_counts_no_miss(self):
        cache = PageCache()
        assert cache.peek("absent") is None
        assert cache.stats.misses == 0
        cache.put("k", cache.make_entry("body"))
        assert cache.peek("k") is not None
        assert cache.stats.hits == 1
