"""Tests for the presentation layer: tag renderers, the template engine,
XSLT-style rules, CSS modularization, layouts, device adaptation, and
the renderer in both §5 modes."""

import pytest

from repro.app import Browser, WebApplication
from repro.codegen import generate_project
from repro.errors import PresentationError, RuleError, TemplateRenderError
from repro.presentation import (
    CssStylesheet,
    DeviceProfile,
    DeviceRegistry,
    PageTemplate,
    PresentationRenderer,
    Stylesheet,
    UnitRule,
)
from repro.presentation.css import default_css, unit_module
from repro.presentation.devices import compact_device_stylesheet
from repro.presentation.layouts import rule_for_category
from repro.presentation.renderer import default_stylesheet
from repro.presentation.xslt import PageRule
from repro.xmlkit import parse_xml

from tests.conftest import build_acm_webml, seed_acm


@pytest.fixture
def styled_app():
    model = build_acm_webml()
    project = generate_project(model)
    renderer = PresentationRenderer(
        project.skeletons, default_stylesheet("ACM DL")
    )
    app = WebApplication(model, view_renderer=renderer)
    seed_acm(app)
    return app


class TestRules:
    def test_unit_rule_sets_attributes(self):
        rule = UnitRule(pattern="webml:indexUnit",
                        set_attrs={"render-as": "list"})
        tree = parse_xml("<page><webml:indexUnit unit='u1'/></page>")
        target = tree.element_children()[0]
        assert rule.matches(target)
        rule.apply(target)
        assert target.get("render-as") == "list"

    def test_page_rule_wraps_grid(self):
        rule = rule_for_category("one-column", "My Site")
        tree = parse_xml(
            "<html><body><table class='page-grid'><tr/></table></body></html>"
        )
        grid = tree.descendants("table")[0]
        assert rule.matches(grid)
        rule.apply(grid)
        banners = [e for e in tree.iter() if e.get("class") == "site-banner"]
        assert len(banners) == 1
        assert "layout-one-column" in grid.get("class")

    def test_wrapper_requires_placeholder(self):
        with pytest.raises(RuleError, match="placeholder"):
            PageRule(pattern="table", wrapper_html="<div/>")
        with pytest.raises(RuleError, match="placeholder"):
            UnitRule(pattern="webml:dataUnit", box_html="<div/>")

    def test_stylesheet_specificity_wins(self):
        generic = UnitRule(pattern="*", set_attrs={"who": "generic"})
        specific = UnitRule(pattern="webml:dataUnit",
                            set_attrs={"who": "specific"})
        sheet = Stylesheet("s", unit_rules=[generic, specific])
        styled = sheet.apply("<page><webml:dataUnit unit='u'/></page>")
        assert 'who="specific"' in styled

    def test_stylesheet_attaches_css(self):
        sheet = Stylesheet("s", css="body { color: red; }")
        styled = sheet.apply("<html><head/><body/></html>")
        assert "<style" in styled and "color: red" in styled

    def test_coverage_metrics(self):
        sheet = Stylesheet(
            "s",
            page_rules=[rule_for_category("one-column", "X")],
            unit_rules=[UnitRule(pattern="webml:dataUnit")],
        )
        skeleton = (
            "<html><body><table class='page-grid'><tr><td>"
            "<webml:dataUnit unit='a'/><webml:indexUnit unit='b'/>"
            "</td></tr></table></body></html>"
        )
        coverage = sheet.coverage(skeleton)
        assert coverage == {"unit_tags": 2, "styled_unit_tags": 1,
                            "page_styled": True}


class TestCss:
    def test_unit_module_covers_declared_elements(self):
        sheet = unit_module("index", {"accent": "#123456"})
        assert ".index-row a" in sheet.rules
        assert sheet.rules[".index-row a"]["color"] == "#123456"

    def test_render_and_merge(self):
        sheet = CssStylesheet("x").set(".a", color="red", font_size="12px")
        other = CssStylesheet("y").set(".a", color="blue").set(".b", margin="0")
        sheet.merge(other)
        text = sheet.render()
        assert ".a { color: blue; font-size: 12px; }" in text
        assert ".b" in text

    def test_default_css_has_all_kinds(self):
        text = default_css()
        for marker in (".unit-data", ".index-rows", ".scroller-nav a",
                       ".entry-form button", ".hierarchy-level"):
            assert marker in text


class TestTemplateEngine:
    def test_static_markup_preserved(self, acm_app):
        from repro.services import GenericPageService
        from repro.presentation.jsp import RenderContext

        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        template = PageTemplate.from_xml(
            page.id,
            f"<html><body><p class='static'>hello</p>"
            f"<webml:indexUnit unit='{page.units[0].id}'/></body></html>",
        )
        result = GenericPageService(acm_app.ctx).compute_page(
            acm_app.registry.page(page.id), {}
        )
        html = template.render(RenderContext(result, acm_app.controller))
        assert "<p class=\"static\">hello</p>" in html
        assert "unit-index" in html

    def test_missing_bean_raises(self, acm_app):
        from repro.services.page_service import PageResult
        from repro.presentation.jsp import RenderContext

        template = PageTemplate.from_xml(
            "p", "<html><webml:dataUnit unit='ghost'/></html>"
        )
        with pytest.raises(TemplateRenderError, match="no unit bean"):
            template.render(
                RenderContext(PageResult("p", "P"), acm_app.controller)
            )

    def test_tag_without_unit_attr_raises(self, acm_app):
        from repro.services.page_service import PageResult
        from repro.presentation.jsp import RenderContext

        template = PageTemplate.from_xml("p", "<html><webml:dataUnit/></html>")
        with pytest.raises(TemplateRenderError, match="unit attribute"):
            template.render(
                RenderContext(PageResult("p", "P"), acm_app.controller)
            )

    def test_unknown_tag_raises(self, acm_app):
        from repro.services.page_service import PageResult
        from repro.presentation.jsp import RenderContext

        result = PageResult("p", "P")
        from repro.services import UnitBean

        result.beans["u"] = UnitBean("u", "U", "martian")
        template = PageTemplate.from_xml(
            "p", "<html><webml:martianUnit unit='u'/></html>"
        )
        with pytest.raises(TemplateRenderError, match="no renderer"):
            template.render(RenderContext(result, acm_app.controller))


class TestRenderedPages:
    def test_index_rows_render_anchors(self, styled_app):
        browser = Browser(styled_app)
        browser.get("/")
        assert browser.status == 200
        volume_links = [l for l in browser.links() if "oid=" in l]
        assert len(volume_links) == 2  # two volumes
        # plus the landmark navigation menu
        assert '<ul class="site-menu">' in browser.body
        assert "2002" in browser.body and "2003" in browser.body

    def test_master_detail_navigation(self, styled_app):
        browser = Browser(styled_app)
        browser.get("/")
        browser.click(next(l for l in browser.links() if "oid=" in l))
        assert "TODS Volume 27" in browser.body
        assert "hierarchy-level" in browser.body
        assert "Query Optimization Revisited" in browser.body

    def test_hierarchy_leaves_link_to_paper_page(self, styled_app, acm_oids):
        browser = Browser(styled_app)
        browser.get("/")
        browser.click(next(l for l in browser.links() if "oid=" in l))
        # paper 3 ("Data-Intensive Web Models") is the one with authors
        authored = acm_oids["papers"][2]
        paper_link = next(
            l for l in browser.links() if l.endswith(f".oid={authored}")
        )
        browser.get(paper_link)
        assert "unit-data" in browser.body
        assert "S. Ceri" in browser.body  # authors via transport link

    def test_entry_form_renders_with_target_params(self, styled_app):
        browser = Browser(styled_app)
        browser.get("/")
        browser.click(next(l for l in browser.links() if "oid=" in l))
        assert "<form" in browser.body
        assert "keyword" in browser.body

    def test_scroller_navigation(self, styled_app):
        url = styled_app.page_url("public", "Browse papers")
        browser = Browser(styled_app)
        browser.get(url)
        assert "block 1/2" in browser.body
        next_link = next(l for l in browser.links() if "block=2" in l)
        browser.get(next_link.replace("&amp;", "&"))
        assert "block 2/2" in browser.body

    def test_empty_unit_shows_placeholder(self, styled_app):
        url = styled_app.page_url("public", "Volume Page")  # no oid param
        browser = Browser(styled_app)
        browser.get(url)
        assert "No content" in browser.body


class TestDeviceAdaptation:
    def test_profile_matching(self):
        registry = DeviceRegistry()
        assert registry.profile_for("Mozilla/5.0").name == "html"
        assert registry.profile_for("Nokia7110/1.0 WAP").name == "wap"
        assert registry.profile_for("weird-agent").name == "html"

    def test_stylesheet_selection_with_fallback(self):
        registry = DeviceRegistry()
        html_sheet = default_stylesheet("X")
        registry.register_stylesheet(html_sheet)
        assert registry.stylesheet_for("Mozilla/5.0") is html_sheet
        # no wap sheet yet: falls back to html
        assert registry.stylesheet_for("Nokia WAP") is html_sheet
        wap = compact_device_stylesheet()
        registry.register_stylesheet(wap)
        assert registry.stylesheet_for("Nokia WAP") is wap

    def test_no_stylesheet_raises(self):
        registry = DeviceRegistry()
        with pytest.raises(PresentationError, match="no stylesheet"):
            registry.stylesheet_for("Mozilla/5.0")

    def test_runtime_mode_adapts_to_device(self):
        model = build_acm_webml()
        project = generate_project(model)
        registry = DeviceRegistry()
        registry.register_stylesheet(default_stylesheet("ACM"))
        registry.register_stylesheet(compact_device_stylesheet())
        renderer = PresentationRenderer(
            project.skeletons, mode="runtime", device_registry=registry
        )
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)

        desktop = Browser(app, user_agent="Mozilla/5.0")
        desktop.get("/")
        assert '<table class="index-rows">' in desktop.body

        phone = Browser(app, user_agent="Nokia7110 WAP")
        phone.get("/")
        # the wap rule forces list rendition
        assert "<ul class=\"index-rows\">" in phone.body


class TestRendererModes:
    def test_compile_time_transforms_once(self):
        model = build_acm_webml()
        project = generate_project(model)
        renderer = PresentationRenderer(
            project.skeletons, default_stylesheet("ACM")
        )
        assert renderer.templates_compiled == len(project.skeletons)
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        browser = Browser(app)
        browser.get("/")
        browser.get("/")
        assert renderer.runtime_transformations == 0

    def test_runtime_transforms_per_request(self):
        model = build_acm_webml()
        project = generate_project(model)
        renderer = PresentationRenderer(
            project.skeletons, default_stylesheet("ACM"), mode="runtime"
        )
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        browser = Browser(app)
        browser.get("/")
        browser.get("/")
        assert renderer.runtime_transformations == 2

    def test_mode_validation(self):
        with pytest.raises(PresentationError, match="unknown presentation mode"):
            PresentationRenderer({}, default_stylesheet("X"), mode="psychic")
        with pytest.raises(PresentationError, match="needs a stylesheet"):
            PresentationRenderer({}, mode="compile-time")


class TestSiteMenu:
    """WebML landmark pages become the site view's navigation menu."""

    def test_menu_tag_in_skeleton(self):
        model = build_acm_webml()
        project = generate_project(model)
        view = model.find_site_view("public")
        volume_page = view.find_page("Volume Page")
        skeleton = project.skeletons[volume_page.id]
        assert "webml:siteMenu" in skeleton
        assert skeleton.count("<menuItem") == 2  # Volumes + Browse papers

    def test_menu_renders_with_current_highlight(self, styled_app):
        browser = Browser(styled_app)
        browser.get("/")
        assert '<ul class="site-menu">' in browser.body
        # the current page's entry carries the marker class
        assert 'class="current">Volumes</a>' in browser.body
        assert ">Browse papers</a>" in browser.body

    def test_menu_navigates(self, styled_app):
        browser = Browser(styled_app)
        browser.get("/")
        browser.click("Browse papers" if False else next(
            l for l in browser.links()
            if l.endswith(styled_app.model.find_site_view("public")
                          .find_page("Browse papers").id)
        ))
        assert "scroller-rows" in browser.body

    def test_view_without_landmarks_has_no_menu(self, styled_app):
        browser = Browser(styled_app)
        browser.get(styled_app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        # admin has no landmark pages, so no menu markup (the CSS class
        # definition is still in the stylesheet text)
        assert '<ul class="site-menu">' not in browser.body

    def test_landmark_roundtrips_through_xml(self):
        from repro.webml import webml_from_xml, webml_to_xml
        from repro.workloads.acm import build_acm_data_model

        model = build_acm_webml()
        loaded = webml_from_xml(webml_to_xml(model), build_acm_data_model())
        view = loaded.find_site_view("public")
        assert [p.name for p in view.landmark_pages()] == \
            ["Volumes", "Browse papers"]


class TestCompiledTemplateOracle:
    """The compiled segment/slot program against the tree-walking
    renderer: byte-identical output on every workload page, with and
    without the fragment cache."""

    def _styled_app(self, build_model, seed, fragment_cache=None):
        model = build_model()
        for unit in model.all_units():
            if unit.kind != "entry":
                unit.cacheable = True
        project = generate_project(model)
        stylesheet = default_stylesheet("Oracle")
        if fragment_cache is not None:
            for rule in stylesheet.unit_rules:
                rule.set_attrs["fragment"] = "cache"
        renderer = PresentationRenderer(
            project.skeletons, stylesheet, fragment_cache=fragment_cache
        )
        app = WebApplication(model, view_renderer=renderer)
        seed(app)
        return app, renderer

    def _page_results(self, app):
        """Every page of every site view, each with an empty selection
        and — when the page has a data unit — a selected object."""
        from repro.services import GenericPageService

        service = GenericPageService(app.ctx)
        for view in app.model.site_views:
            for page in view.all_pages():
                descriptor = app.registry.page(page.id)
                param_sets = [{}]
                data_units = [u for u in page.units if u.kind == "data"]
                if data_units:
                    param_sets.append({f"{data_units[0].id}.oid": "1"})
                for params in param_sets:
                    yield page.id, service.compute_page(descriptor, params)

    def _assert_oracle(self, build_model, seed, fragment_cache):
        from repro.presentation.jsp import RenderContext

        app, renderer = self._styled_app(build_model, seed, fragment_cache)
        compared = 0
        # two passes: the second hits warm fragments (the splice path)
        for _ in range(2 if fragment_cache is not None else 1):
            for page_id, result in self._page_results(app):
                template = renderer.template_for(page_id)
                compiled = template.render(RenderContext(
                    result, app.controller, fragment_cache=fragment_cache
                ))
                oracle = template.render_tree(RenderContext(
                    result, app.controller, fragment_cache=fragment_cache
                ))
                assert compiled == oracle, f"divergence on page {page_id}"
                compared += 1
        assert compared >= 8

    def test_acm_pages_match_oracle(self):
        self._assert_oracle(build_acm_webml, seed_acm, None)

    def test_acm_pages_match_oracle_with_fragments(self):
        from repro.caching import FragmentCache

        self._assert_oracle(build_acm_webml, seed_acm, FragmentCache())

    def test_bookstore_pages_match_oracle(self):
        from repro.caching import FragmentCache
        from repro.workloads.bookstore import (
            build_bookstore_model,
            seed_bookstore,
        )

        self._assert_oracle(build_bookstore_model, seed_bookstore, None)
        self._assert_oracle(build_bookstore_model, seed_bookstore,
                            FragmentCache())

    def test_fragment_hit_render_never_parses_or_serializes(self, monkeypatch):
        """The compiled fast path: once fragments are warm, a full page
        render is pure string assembly — zero parse_xml / serialize."""
        import repro.presentation.jsp as jsp
        from repro.caching import FragmentCache
        from repro.presentation.jsp import RenderContext

        fragment_cache = FragmentCache()
        app, renderer = self._styled_app(build_acm_webml, seed_acm,
                                         fragment_cache)
        browser = Browser(app)
        browser.get("/")  # warm: fragments stored, menu memoized
        warm_body = browser.body

        calls = {"serialize": 0, "parse_xml": 0}
        real_serialize, real_parse = jsp.serialize, jsp.parse_xml

        def counting_serialize(*args, **kwargs):
            calls["serialize"] += 1
            return real_serialize(*args, **kwargs)

        def counting_parse(*args, **kwargs):
            calls["parse_xml"] += 1
            return real_parse(*args, **kwargs)

        monkeypatch.setattr(jsp, "serialize", counting_serialize)
        monkeypatch.setattr(jsp, "parse_xml", counting_parse)
        assert browser.get("/").body == warm_body
        assert calls == {"serialize": 0, "parse_xml": 0}


class TestFragmentCachingInTemplates:
    """Direct template-level checks of the §6 fragment path."""

    def _render_twice(self, bean_rows):
        from repro.caching import FragmentCache
        from repro.presentation.jsp import PageTemplate, RenderContext
        from repro.services import UnitBean
        from repro.services.page_service import PageResult
        from repro.mvc import Controller
        from repro.codegen import generate_controller_config

        model = build_acm_webml()
        controller = Controller.from_config(
            generate_controller_config(model)
        )
        template = PageTemplate.from_xml(
            "p",
            "<html><body>"
            "<webml:indexUnit unit='u1' fragment='cache'/>"
            "</body></html>",
        )
        cache = FragmentCache()
        outputs = []
        for rows in bean_rows:
            result = PageResult("p", "P")
            result.beans["u1"] = UnitBean("u1", "U", "index", rows=rows)
            outputs.append(template.render(
                RenderContext(result, controller, fragment_cache=cache)
            ))
        return outputs, cache

    def test_identical_beans_hit_the_fragment(self):
        rows = [{"oid": 1, "title": "A"}]
        outputs, cache = self._render_twice([rows, rows])
        assert outputs[0] == outputs[1]
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_changed_bean_misses_and_rerenders(self):
        outputs, cache = self._render_twice([
            [{"oid": 1, "title": "A"}],
            [{"oid": 1, "title": "B"}],  # different content → new digest
        ])
        assert outputs[0] != outputs[1]
        assert cache.stats.hits == 0
        assert cache.stats.puts == 2
        assert "B" in outputs[1]

    def test_untagged_unit_bypasses_cache(self):
        from repro.caching import FragmentCache
        from repro.presentation.jsp import PageTemplate, RenderContext
        from repro.services import UnitBean
        from repro.services.page_service import PageResult
        from repro.mvc import Controller
        from repro.codegen import generate_controller_config

        model = build_acm_webml()
        controller = Controller.from_config(generate_controller_config(model))
        template = PageTemplate.from_xml(
            "p", "<html><webml:indexUnit unit='u1'/></html>"
        )
        cache = FragmentCache()
        result = PageResult("p", "P")
        result.beans["u1"] = UnitBean("u1", "U", "index",
                                      rows=[{"oid": 1, "title": "A"}])
        template.render(RenderContext(result, controller,
                                      fragment_cache=cache))
        assert cache.stats.lookups == 0 and cache.stats.puts == 0
