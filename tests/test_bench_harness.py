"""Tests for the experiment reporting harness."""

import os

from repro.bench import ExperimentReport, report_path, save_report


class TestExperimentReport:
    def test_render_aligns_columns(self):
        report = ExperimentReport("EX", "a title", "§9")
        report.add("metric one", 10, 10)
        report.add("a much longer metric name", "> 3000", 3262, note="ok")
        text = report.render()
        lines = text.splitlines()
        assert lines[0] == "EX: a title   [§9]"
        assert "metric" in lines[2] and "paper" in lines[2]
        assert "3262" in text and "> 3000" in text and "ok" in text

    def test_float_formatting(self):
        report = ExperimentReport("EX", "t", "s")
        report.add("big", 1234.5678, 1234.5678)
        report.add("mid", 3.14159, 3.14159)
        report.add("small", 0.00123, 0.00123)
        text = report.render()
        assert "1235" in text
        assert "3.14" in text
        assert "0.0012" in text

    def test_save_report_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPORT_DIR", str(tmp_path))
        report = ExperimentReport("EX", "saved", "§0")
        report.add("m", 1, 1)
        text = save_report(report, echo=False)
        path = report_path("EX")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == text
