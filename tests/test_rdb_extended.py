"""Extended relational-engine coverage: trickier SQL shapes, planner
behaviour, and property-based tests tying the codegen layer to the
engine (every generated query must parse, plan, and run)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, SqlSyntaxError
from repro.rdb import Database
from repro.rdb.executor import SortKey
from repro.rdb.planner import SelectPlan
from repro.rdb.sqlparser import parse_select


@pytest.fixture
def shop() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE item (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(40) NOT NULL, price FLOAT, bucket INTEGER,"
        " PRIMARY KEY (oid))"
    )
    rows = [
        ("alpha", 10.0, 1), ("beta", 20.0, 1), ("gamma", 30.0, 2),
        ("delta", None, 2), ("epsilon", 50.0, None),
    ]
    for name, price, bucket in rows:
        db.insert_row("item", {"name": name, "price": price, "bucket": bucket})
    db.stats.reset()
    return db


class TestSqlShapes:
    def test_expression_projection(self, shop):
        rows = shop.query(
            "SELECT name, price * 2 AS doubled, UPPER(name) AS loud"
            " FROM item WHERE price IS NOT NULL ORDER BY oid LIMIT 1"
        )
        assert rows.first() == {"name": "alpha", "doubled": 20.0,
                                "loud": "ALPHA"}

    def test_where_on_null_bucket_excluded(self, shop):
        rows = shop.query("SELECT name FROM item WHERE bucket = 2")
        assert {r["name"] for r in rows} == {"gamma", "delta"}

    def test_is_null_filter(self, shop):
        rows = shop.query("SELECT name FROM item WHERE bucket IS NULL")
        assert rows.as_tuples() == [("epsilon",)]

    def test_group_by_expression(self, shop):
        rows = shop.query(
            "SELECT bucket, AVG(price) AS mean FROM item"
            " WHERE bucket IS NOT NULL GROUP BY bucket ORDER BY bucket"
        )
        assert rows.as_tuples() == [(1, 15.0), (2, 30.0)]

    def test_having_with_aggregate_expression(self, shop):
        rows = shop.query(
            "SELECT bucket FROM item GROUP BY bucket"
            " HAVING COUNT(*) + 0 >= 2 AND bucket IS NOT NULL"
        )
        assert {r["bucket"] for r in rows} == {1, 2}

    def test_aggregate_in_arithmetic(self, shop):
        total = shop.query(
            "SELECT SUM(price) / COUNT(price) AS manual_avg FROM item"
        ).scalar()
        assert total == pytest.approx(27.5)

    def test_order_by_aggregate(self, shop):
        rows = shop.query(
            "SELECT bucket, COUNT(*) AS n FROM item GROUP BY bucket"
            " ORDER BY COUNT(*) DESC, bucket"
        )
        assert rows.rows[0]["n"] == 2

    def test_between_and_in_combined(self, shop):
        rows = shop.query(
            "SELECT name FROM item WHERE price BETWEEN 15 AND 35"
            " AND bucket IN (1, 2)"
        )
        assert {r["name"] for r in rows} == {"beta", "gamma"}

    def test_not_predicates_honour_three_valued_logic(self, shop):
        # epsilon has bucket NULL: NOT (NULL = 1) is UNKNOWN, so the row
        # is excluded — standard SQL, and what the engine must do.
        rows = shop.query(
            "SELECT name FROM item WHERE NOT (bucket = 1) AND price IS NOT NULL"
        )
        assert {r["name"] for r in rows} == {"gamma"}
        rows = shop.query(
            "SELECT name FROM item WHERE (NOT (bucket = 1) OR bucket IS NULL)"
            " AND price IS NOT NULL"
        )
        assert {r["name"] for r in rows} == {"gamma", "epsilon"}

    def test_concat_projection(self, shop):
        row = shop.query(
            "SELECT name || '-' || bucket AS tag FROM item WHERE oid = 1"
        ).first()
        assert row["tag"] == "alpha-1"

    def test_distinct_with_order(self, shop):
        shop.insert_row("item", {"name": "alpha", "price": 10.0, "bucket": 3})
        rows = shop.query("SELECT DISTINCT name FROM item ORDER BY name")
        names = [r["name"] for r in rows]
        assert names == sorted(set(names))

    def test_self_join_with_aliases(self, shop):
        rows = shop.query(
            "SELECT a.name, b.name AS cheaper FROM item a"
            " JOIN item b ON b.price < a.price"
            " WHERE a.name = 'gamma' ORDER BY b.oid"
        )
        assert [r["cheaper"] for r in rows] == ["alpha", "beta"]

    def test_left_join_with_residual_condition(self, shop):
        shop.execute(
            "CREATE TABLE tag (oid INTEGER NOT NULL AUTOINCREMENT,"
            " item_oid INTEGER, label VARCHAR(20), PRIMARY KEY (oid))"
        )
        shop.insert_row("tag", {"item_oid": 1, "label": "hot"})
        shop.insert_row("tag", {"item_oid": 1, "label": "cold"})
        rows = shop.query(
            "SELECT i.name, t.label FROM item i"
            " LEFT JOIN tag t ON t.item_oid = i.oid AND t.label = 'hot'"
            " WHERE i.oid IN (1, 2) ORDER BY i.oid"
        )
        assert rows.as_tuples() == [("alpha", "hot"), ("beta", None)]

    def test_multi_row_insert_statement(self, shop):
        affected = shop.execute(
            "INSERT INTO item (name, bucket) VALUES ('x', 9), ('y', 9)"
        )
        assert affected == 2
        assert shop.query(
            "SELECT COUNT(*) AS n FROM item WHERE bucket = 9"
        ).scalar() == 2

    def test_update_without_where_touches_all(self, shop):
        affected = shop.execute("UPDATE item SET bucket = 0")
        assert affected == 5

    def test_limit_zero(self, shop):
        assert len(shop.query("SELECT * FROM item LIMIT 0")) == 0

    def test_offset_beyond_end(self, shop):
        assert len(shop.query(
            "SELECT * FROM item ORDER BY oid LIMIT 10 OFFSET 99"
        )) == 0

    def test_scalar_on_empty_result(self, shop):
        assert shop.query("SELECT name FROM item WHERE oid = 999").scalar() \
            is None


class TestPlannerBehaviour:
    def test_index_lookup_chosen_for_pk(self, shop):
        select = parse_select("SELECT name FROM item WHERE oid = 3")
        plan = SelectPlan(select, shop.tables)
        from repro.rdb.executor import ScanOp

        assert isinstance(plan.root, ScanOp)
        assert plan.root.eq_columns == ("oid",)
        assert plan.root.predicate is not None

    def test_full_scan_without_index(self, shop):
        select = parse_select("SELECT name FROM item WHERE bucket = 1")
        plan = SelectPlan(select, shop.tables)
        assert plan.root.eq_columns == ()
        assert plan.root.access.kind == "seq"

    def test_secondary_index_used_after_creation(self, shop):
        shop.execute("CREATE INDEX ix_bucket ON item (bucket)")
        select = parse_select("SELECT name FROM item WHERE bucket = 1")
        plan = SelectPlan(select, shop.tables)
        assert plan.root.eq_columns == ("bucket",)

    def test_hash_join_selected_for_equi_condition(self, shop):
        select = parse_select(
            "SELECT * FROM item a JOIN item b ON a.oid = b.oid"
        )
        plan = SelectPlan(select, shop.tables)
        from repro.rdb.executor import HashJoinOp

        assert isinstance(plan.root, HashJoinOp)

    def test_nested_loop_for_inequality(self, shop):
        select = parse_select(
            "SELECT * FROM item a JOIN item b ON a.price < b.price"
        )
        plan = SelectPlan(select, shop.tables)
        from repro.rdb.executor import NestedLoopJoinOp

        assert isinstance(plan.root, NestedLoopJoinOp)

    def test_duplicate_alias_rejected(self, shop):
        select = parse_select("SELECT * FROM item a JOIN item a ON a.oid = a.oid")
        with pytest.raises(QueryError, match="duplicate table binding"):
            SelectPlan(select, shop.tables)

    def test_null_key_never_index_matches(self, shop):
        rows = shop.query("SELECT name FROM item WHERE oid = :v", {"v": None})
        assert len(rows) == 0


class TestSortKey:
    def test_null_sorts_first(self):
        values = [SortKey(3), SortKey(None), SortKey(1)]
        assert [k.value for k in sorted(values)] == [None, 1, 3]

    def test_mixed_numeric(self):
        assert SortKey(1) < SortKey(1.5)
        assert SortKey(2.0) == SortKey(2)

    def test_strings(self):
        assert SortKey("a") < SortKey("b")


class TestParserRobustness:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t ORDER BY",
        "SELECT a FROM t LIMIT x",
        "INSERT INTO t VALUES (1)",
        "UPDATE t",
        "DELETE t",
        "CREATE VIEW v",
        "SELECT a FROM t JOIN",
        "SELECT a FROM t WHERE a IN ()",
        "SELECT a b c FROM t",
    ])
    def test_malformed_sql_rejected(self, bad):
        from repro.rdb.sqlparser import parse_sql

        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)

    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text_never_crashes_the_parser(self, text):
        from repro.rdb.sqlparser import parse_sql

        try:
            parse_sql(text)
        except SqlSyntaxError:
            pass  # rejection is the expected failure mode


# ---------------------------------------------------------------------------
# Property: whatever the model says, the generated SQL runs.
# ---------------------------------------------------------------------------

_ATTRS = [("name", "VARCHAR(40)"), ("rank", "INTEGER"), ("score", "FLOAT")]


@st.composite
def _unit_specs(draw):
    kind = draw(st.sampled_from(["index", "multidata", "scroller", "data"]))
    conditions = []
    if kind == "data":
        conditions.append(("key",))
    for _ in range(draw(st.integers(0, 2))):
        attr, _type = draw(st.sampled_from(_ATTRS))
        operator = draw(st.sampled_from(["=", "<", ">", "like"]))
        if operator == "like" and attr != "name":
            attr = "name"
        use_param = draw(st.booleans())
        conditions.append(("attr", attr, operator, use_param))
    use_role = draw(st.booleans())
    order = draw(st.lists(st.sampled_from(["name", "rank"]), max_size=2,
                          unique=True))
    return kind, conditions, use_role, order


class TestGeneratedSqlAlwaysRuns:
    @given(_unit_specs())
    @settings(max_examples=60, deadline=None)
    def test_generated_query_parses_plans_and_runs(self, spec):
        kind, conditions, use_role, order = spec
        from repro.er import ERModel, map_to_relational
        from repro.webml import (
            AttributeCondition,
            KeyCondition,
            RelationshipCondition,
            Selector,
            WebMLModel,
        )
        from repro.codegen.sqlgen import unit_queries
        from repro.webml.units import (
            DataUnit, IndexUnit, MultidataUnit, ScrollerUnit,
        )

        data_model = ERModel(name="prop")
        data_model.entity("Thing", [(n, t) for n, t in _ATTRS])
        data_model.entity("Owner", [("name", "VARCHAR(40)")])
        data_model.relate("OwnerToThing", "Owner", "Thing", "1:N")
        mapping = map_to_relational(data_model)

        parsed_conditions = []
        params = {}
        for position, condition in enumerate(conditions):
            if condition[0] == "key":
                parsed_conditions.append(KeyCondition())
                params["oid"] = 1
            else:
                _tag, attr, operator, use_param = condition
                if use_param:
                    slot = f"p{position}"
                    parsed_conditions.append(
                        AttributeCondition(attr, operator, parameter=slot)
                    )
                    params[slot] = "x" if attr == "name" else 1
                else:
                    value = "x" if attr == "name" else 1
                    parsed_conditions.append(
                        AttributeCondition(attr, operator, value=value)
                    )
        if use_role:
            parsed_conditions.append(RelationshipCondition("OwnerToThing"))
            params["owner_to_thing"] = 1

        classes = {"index": IndexUnit, "multidata": MultidataUnit,
                   "scroller": ScrollerUnit, "data": DataUnit}
        unit = classes[kind](
            "u1", "Unit", entity="Thing",
            selector=Selector(parsed_conditions) if parsed_conditions else None,
            order_by=[(a, False) for a in order] if kind != "data" else [],
        ) if kind != "data" else DataUnit(
            "u1", "Unit", entity="Thing",
            selector=Selector(parsed_conditions),
        )

        generated = unit_queries(unit, mapping)

        db = Database()
        for schema in mapping.schemas:
            if schema.name == "owner":
                db.create_table(schema)
        for schema in mapping.schemas:
            if schema.name != "owner":
                db.create_table(schema)
        db.insert_row("owner", {"name": "o"})
        db.insert_row("thing", {"name": "x", "rank": 1, "score": 2.0,
                                "owner_to_thing_oid": 1})

        result = db.query(generated["query"], params)
        assert result.columns[0] == "oid"
        if generated["count_query"]:
            total = db.query(generated["count_query"], params).scalar()
            assert isinstance(total, int)


class TestTransactions:
    def _db(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
            " v VARCHAR(20), n INTEGER, PRIMARY KEY (oid))"
        )
        db.insert_row("t", {"v": "keep", "n": 1})
        return db

    def test_commit_preserves_changes(self):
        db = self._db()
        with db.transaction():
            db.insert_row("t", {"v": "new", "n": 2})
        assert db.row_count("t") == 2

    def test_rollback_undoes_insert(self):
        db = self._db()
        db.begin()
        db.insert_row("t", {"v": "temp", "n": 2})
        db.rollback()
        assert db.row_count("t") == 1
        assert db.query("SELECT v FROM t").scalar() == "keep"

    def test_rollback_undoes_update(self):
        db = self._db()
        db.begin()
        db.execute("UPDATE t SET v = 'changed' WHERE oid = 1")
        db.rollback()
        assert db.query("SELECT v FROM t WHERE oid = 1").scalar() == "keep"

    def test_rollback_undoes_delete_with_original_id(self):
        db = self._db()
        db.begin()
        db.execute("DELETE FROM t WHERE oid = 1")
        db.rollback()
        row = db.query("SELECT oid, v FROM t").first()
        assert row == {"oid": 1, "v": "keep"}

    def test_rollback_undoes_cascade(self):
        db = Database()
        db.execute("CREATE TABLE p (oid INTEGER NOT NULL, PRIMARY KEY (oid))")
        db.execute(
            "CREATE TABLE c (oid INTEGER NOT NULL, p_oid INTEGER,"
            " PRIMARY KEY (oid),"
            " FOREIGN KEY (p_oid) REFERENCES p (oid) ON DELETE CASCADE)"
        )
        db.insert_row("p", {"oid": 1})
        db.insert_row("c", {"oid": 10, "p_oid": 1})
        db.begin()
        db.execute("DELETE FROM p WHERE oid = 1")
        assert db.row_count("c") == 0
        db.rollback()
        assert db.row_count("p") == 1
        assert db.row_count("c") == 1
        # indexes were restored too: the FK lookup still works
        assert db.table("c").find_by_key(("p_oid",), (1,))

    def test_transaction_context_rolls_back_on_error(self):
        db = self._db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert_row("t", {"v": "doomed", "n": 9})
                raise RuntimeError("boom")
        assert db.row_count("t") == 1

    def test_mixed_operations_rollback_in_order(self):
        db = self._db()
        db.begin()
        db.insert_row("t", {"v": "a", "n": 2})
        db.execute("UPDATE t SET n = 99 WHERE v = 'a'")
        db.execute("DELETE FROM t WHERE v = 'keep'")
        db.rollback()
        rows = db.query("SELECT v, n FROM t ORDER BY oid").as_tuples()
        assert rows == [("keep", 1)]

    def test_nested_begin_rejected(self):
        db = self._db()
        db.begin()
        with pytest.raises(QueryError, match="already active"):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self):
        db = self._db()
        with pytest.raises(QueryError, match="no active transaction"):
            db.commit()
        with pytest.raises(QueryError, match="no active transaction"):
            db.rollback()

    def test_auto_increment_does_not_roll_back(self):
        # like real sequences: ids burned in a rolled-back txn stay burned
        db = self._db()
        db.begin()
        db.insert_row("t", {"v": "x", "n": 1})
        db.rollback()
        row = db.insert_row("t", {"v": "y", "n": 1})
        assert row["oid"] == 3

    @given(st.lists(st.sampled_from(["insert", "update", "delete"]),
                    min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_rollback_always_restores_snapshot(self, actions):
        db = self._db()
        db.insert_row("t", {"v": "b", "n": 2})
        snapshot = sorted(
            (r["oid"], r["v"], r["n"]) for r in db.query("SELECT * FROM t")
        )
        db.begin()
        for position, action in enumerate(actions):
            if action == "insert":
                db.insert_row("t", {"v": f"x{position}", "n": position})
            elif action == "update":
                db.execute("UPDATE t SET n = n + 1")
            else:
                db.execute("DELETE FROM t WHERE oid = "
                           "(SELECT MIN(oid) AS m FROM t)"
                           if False else "DELETE FROM t WHERE n >= 0")
        db.rollback()
        restored = sorted(
            (r["oid"], r["v"], r["n"]) for r in db.query("SELECT * FROM t")
        )
        assert restored == snapshot


class TestExplain:
    def test_explain_shows_index_lookup(self, shop):
        text = shop.explain("SELECT name FROM item WHERE oid = 1")
        assert "IndexLookup(item AS item ON oid)" in text
        assert "rows~" in text and "cost~" in text

    def test_explain_shows_join_strategy(self, shop):
        text = shop.explain(
            "SELECT a.name FROM item a JOIN item b ON a.oid = b.oid"
            " WHERE b.name = 'alpha'"
        )
        # The cost-based planner starts from the filtered binding (b) and
        # hash-joins the unfiltered one (a) on the equi-condition.
        assert "HashJoin(inner item AS a ON oid)" in text
        assert "SeqScan(item AS b)" in text

    def test_explain_post_processing_steps(self, shop):
        text = shop.explain(
            "SELECT DISTINCT bucket, COUNT(*) AS n FROM item"
            " GROUP BY bucket ORDER BY n LIMIT 2 OFFSET 1"
        )
        lines = text.splitlines()
        assert lines[0].startswith("Limit")
        assert "Sort" in lines[1]
        assert "Distinct" in lines[2]
        assert "GroupAggregate" in lines[3]

    def test_explain_rejects_dml(self, shop):
        with pytest.raises(QueryError):
            shop.explain("DELETE FROM item")
