"""The two socket edges over real connections.

The sans-IO protocol matrix lives in ``test_httpcore.py``; here the
threaded and async edges are driven through actual sockets with the
:class:`~repro.httpcore.client.WireClient`:

- keep-alive semantics on the wire (the seed's threaded server had no
  wire tier at all, so ``Connection: close`` / HTTP/1.0 behaviour is a
  regression surface now);
- the async edge's triage: inline page-cache hits, worker-pool
  dispatch, chunked streaming;
- byte-identity between the edges (the E19 oracle, asserted here on a
  small probe set);
- failure modes: a trickle-reading client must not stall other
  connections, and a mid-stream disconnect must leak neither a worker
  slot nor the page-cache single-flight slot.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.app import WebApplication
from repro.appserver import AsyncAppServer, ThreadedAppServer
from repro.caching import FragmentCache, PageCache, UnitBeanCache
from repro.codegen import generate_project
from repro.httpcore.client import WireClient, WireError
from repro.presentation import PresentationRenderer
from repro.presentation.jsp import PageTemplate, RenderContext
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data


def build_full_stack_app() -> WebApplication:
    """The ACM application with presentation, fragments and page cache
    — the full delivery stack both edges front."""
    model = build_acm_model()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    renderer = PresentationRenderer(
        project.skeletons, default_stylesheet("ACM"),
        fragment_cache=FragmentCache(),
    )
    app = WebApplication(
        model, view_renderer=renderer, bean_cache=UnitBeanCache(),
        page_cache=PageCache(),
    )
    seed_acm_data(app, volumes=3, issues_per_volume=2, papers_per_issue=2)
    return app


def volume_url(app: WebApplication, oid: int = 1) -> str:
    view = app.model.find_site_view("public")
    unit = view.find_page("Volume Page").unit("Volume data")
    return app.page_url("public", "Volume Page", {f"{unit.id}.oid": oid})


@pytest.fixture(scope="module")
def app() -> WebApplication:
    return build_full_stack_app()


@pytest.fixture(scope="module")
def threaded_addr(app):
    server = ThreadedAppServer(app, workers=2)
    address = server.listen()
    yield address
    server.stop()


@pytest.fixture(scope="module")
def async_edge(app):
    edge = AsyncAppServer(app, workers=2)
    edge.listen()
    yield edge
    edge.stop()


# -- the threaded socket front ------------------------------------------------


class TestThreadedSocketFront:
    def test_keep_alive_reuses_connection(self, app, threaded_addr):
        url = volume_url(app)
        with WireClient(threaded_addr, cookies=True) as client:
            first = client.request(url)
            second = client.request(url)
        assert first.status == second.status == 200
        assert first.headers["Connection"] == "keep-alive"
        assert first.body == second.body

    def test_connection_close_honored(self, app, threaded_addr):
        with WireClient(threaded_addr) as client:
            response = client.request(
                volume_url(app), headers={"Connection": "close"}
            )
            assert response.headers["Connection"] == "close"
            # the server actually closes: the next read sees EOF
            client._sock.settimeout(5)
            assert client._sock.recv(1) == b""

    def test_http10_closes_by_default(self, app, threaded_addr):
        with WireClient(threaded_addr) as client:
            response = client.request(
                volume_url(app), http_version="HTTP/1.0"
            )
            assert response.headers["Connection"] == "close"
            client._sock.settimeout(5)
            assert client._sock.recv(1) == b""

    def test_http10_keep_alive_persists(self, app, threaded_addr):
        with WireClient(threaded_addr) as client:
            first = client.request(
                volume_url(app), http_version="HTTP/1.0",
                headers={"Connection": "keep-alive"},
            )
            assert first.headers["Connection"] == "keep-alive"
            second = client.request(
                volume_url(app), http_version="HTTP/1.0",
                headers={"Connection": "keep-alive"},
            )
            assert second.status == 200

    def test_malformed_request_gets_400_and_close(self, threaded_addr):
        with WireClient(threaded_addr) as client:
            client.send_raw(b"BROKEN\r\n\r\n")
            response = client.read_response()
            assert response.status == 400
            with pytest.raises(WireError):
                client.request("/anything")

    def test_session_cookie_over_the_wire(self, app, threaded_addr):
        with WireClient(threaded_addr, cookies=True) as client:
            client.request(volume_url(app))
            assert client.session_id is not None
            again = client.request(volume_url(app))
            # presented cookie is honored: no new assignment
            assert "Set-Cookie" not in again.headers


# -- the async edge -----------------------------------------------------------


class TestAsyncEdge:
    def test_conditional_get_inline(self, app, async_edge):
        url = volume_url(app)
        with WireClient(async_edge.address, cookies=True) as client:
            first = client.request(url)
            assert first.status == 200
            etag = first.headers["ETag"]
            revalidated = client.request(
                url, headers={"If-None-Match": etag}
            )
            assert revalidated.status == 304
            assert revalidated.body == b""
        assert async_edge.metrics.counter("edge.inline_304s").value >= 1

    def test_second_request_served_inline(self, app, async_edge):
        url = volume_url(app, oid=2)
        with WireClient(async_edge.address, cookies=True) as client:
            first = client.request(url)
            hits_before = async_edge.metrics.counter("edge.inline_hits").value
            second = client.request(url)
            assert async_edge.metrics.counter(
                "edge.inline_hits"
            ).value == hits_before + 1
        assert first.body == second.body
        # the inline hit never dispatched to a worker
        assert second.headers.get("Transfer-Encoding") is None

    def test_streamed_miss_matches_buffered(self, app, async_edge):
        url = volume_url(app, oid=3)
        app.page_cache.flush()
        with WireClient(async_edge.address, cookies=True) as client:
            streamed = client.request(url)
            assert streamed.headers.get("Transfer-Encoding") == "chunked"
            cached = client.request(url)
        assert streamed.body == cached.body
        assert streamed.text == app.get(url).body

    def test_operation_takes_worker_path(self, app, async_edge):
        home = f"/{app.model.find_site_view('public').id}"
        with WireClient(async_edge.address, cookies=True) as client:
            response = client.request(home)
            assert response.status == 302

    def test_open_connection_gauge(self, app, async_edge):
        with WireClient(async_edge.address) as client:
            client.request(volume_url(app))
            assert async_edge.metrics.gauge(
                "edge.open_connections"
            ).value >= 1


# -- byte identity between the edges ------------------------------------------


def _strip_date(raw: bytes) -> bytes:
    return b"\r\n".join(
        line for line in raw.split(b"\r\n")
        if not line.startswith(b"Date: ")
    )


class TestByteIdentity:
    def test_edges_emit_identical_bytes(self):
        """Same requests, same order → same wire bytes (modulo Date).

        Streaming is off on the async side: a streamed first visit is
        chunk-framed, deliberately different framing for the same body.
        Everything else — hits, 304s, gzip, redirects, 404s — must be
        byte-identical, because both edges share one protocol machine.
        """
        app_a = build_full_stack_app()
        app_b = build_full_stack_app()
        threaded = ThreadedAppServer(app_a, workers=2)
        edge = AsyncAppServer(app_b, workers=2, stream=False)
        addr_a = threaded.listen()
        addr_b = edge.listen()
        url = volume_url(app_a)
        home = f"/{app_a.model.find_site_view('public').id}"
        probes = [
            (url, {}),
            (url, {}),                                    # page-cache hit
            (url, {"Accept-Encoding": "gzip"}),           # precomputed gzip
            (home, {}),                                   # home redirect
            ("/nope/nothing", {}),                        # 404
        ]
        try:
            with WireClient(addr_a, cookies=True) as ca, \
                    WireClient(addr_b, cookies=True) as cb:
                for target, headers in probes:
                    ra = ca.request(target, headers=dict(headers))
                    rb = cb.request(target, headers=dict(headers))
                    assert _strip_date(ra.raw) == _strip_date(rb.raw), target
                # conditional revisit with the matching validator
                etag = ca.request(url).headers["ETag"]
                ra = ca.request(url, headers={"If-None-Match": etag})
                cb.request(url)
                rb = cb.request(url, headers={"If-None-Match": etag})
                assert ra.status == rb.status == 304
                assert _strip_date(ra.raw) == _strip_date(rb.raw)
        finally:
            threaded.stop()
            edge.stop()


# -- handler failures ---------------------------------------------------------


class _ExplodingApp:
    """An application whose handler has a bug: every request raises."""

    def handle(self, request):
        raise RuntimeError("handler bug")


class TestHandlerFailures:
    """A handler exception is a 500 and a hang-up on both edges — never
    a silently dropped connection."""

    def test_threaded_front_answers_500_and_closes(self):
        server = ThreadedAppServer(_ExplodingApp(), workers=1)
        address = server.listen()
        try:
            with WireClient(address) as client:
                response = client.request("/anything")
                assert response.status == 500
                assert response.headers["Connection"] == "close"
                client._sock.settimeout(5)
                assert client._sock.recv(1) == b""
            assert server.failures == 1
        finally:
            server.stop()

    def test_async_edge_answers_500_and_closes(self):
        edge = AsyncAppServer(_ExplodingApp(), workers=1)
        address = edge.listen()
        try:
            with WireClient(address) as client:
                response = client.request("/anything")
                assert response.status == 500
                assert response.headers["Connection"] == "close"
                client._sock.settimeout(5)
                assert client._sock.recv(1) == b""
            assert edge.metrics.counter("edge.handler_failures").value == 1
        finally:
            edge.stop()


# -- pathological clients -----------------------------------------------------


class TestSlowAndDisconnectingClients:
    def test_trickle_reader_does_not_stall_others(self, app, async_edge):
        """One client reading a few bytes at a time must not delay the
        event loop's service of everyone else."""
        url = volume_url(app)
        with WireClient(async_edge.address) as warm:
            warm.request(url)  # ensure a cached entry exists

        trickler = WireClient(async_edge.address).connect()
        trickler.send_raw(trickler.build_request(url))

        latencies = []
        with WireClient(async_edge.address) as fast:
            for _ in range(20):
                started = time.perf_counter()
                assert fast.request(url).status == 200
                latencies.append(time.perf_counter() - started)
        trickler.trickle_read(total_timeout=2.0)
        trickler.close()
        latencies.sort()
        assert latencies[-1] < 1.0, (
            f"fast client stalled behind the trickler: {latencies[-1]:.3f}s"
        )

    def test_midstream_disconnect_leaks_nothing(self):
        """A client dropping mid-stream must release the page-cache
        single-flight slot and its worker-pool slot."""
        app = build_full_stack_app()
        gate = threading.Event()
        app.front.view_renderer = _GatedRenderer(
            app.front.view_renderer, gate
        )
        edge = AsyncAppServer(app, workers=2)
        address = edge.listen()
        url = volume_url(app)
        try:
            victim = WireClient(address).connect()
            victim.send_raw(victim.build_request(url))
            # read only the head, then vanish mid-body
            victim._read_until(b"\r\n\r\n", bytearray())
            victim.close()
            gate.set()  # let the gated stream finish rendering

            deadline = time.monotonic() + 5
            while app.page_cache._in_flight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not app.page_cache._in_flight, "single-flight slot leaked"

            # every worker slot still serves: more sequential requests
            # than pool slots, all fine
            with WireClient(address, cookies=True) as client:
                for _ in range(4):
                    assert client.request(url).status == 200
        finally:
            edge.stop()


class _GatedRenderer:
    """Wraps the real renderer; the stream's first dynamic chunk parks
    on a gate so the test can disconnect the client mid-stream."""

    def __init__(self, inner, gate):
        self.inner = inner
        self.fragment_cache = inner.fragment_cache
        self.gate = gate

    def __call__(self, *args, **kwargs):
        return self.inner(*args, **kwargs)

    def stream_chunks(self, page_id, request, controller,
                      page_result_factory):
        chunks = self.inner.stream_chunks(
            page_id, request, controller, page_result_factory
        )

        def gated():
            try:
                gated_once = False
                for chunk in chunks:
                    yield chunk
                    if not gated_once:
                        gated_once = True
                        self.gate.wait(timeout=10)
            finally:
                chunks.close()

        return gated()


# -- the streaming render mode ------------------------------------------------


class TestRenderChunks:
    def test_join_equals_render(self, app):
        """The chunk iterator's concatenation is the buffered render."""
        renderer = app.front.view_renderer
        url = volume_url(app)
        response = app.get(url)
        from repro.mvc.http import HttpRequest

        request = HttpRequest.from_url(url)
        session = app.front.sessions.get_or_create(None)
        request.session_id = session.id
        mapping = app.controller.resolve(request.path)
        outcome = app.front.page_action.perform(mapping, request, session)
        chunks = list(renderer.stream_chunks(
            mapping.page_id, request, app.controller,
            lambda: outcome.page_result,
        ))
        assert len(chunks) > 1
        assert "".join(chunks) == response.body

    def test_static_prefix_streams_before_model_runs(self):
        """Everything before the first dynamic slot leaves the template
        without touching the page result factory."""
        template = PageTemplate.from_xml("p1", (
            "<html><head><title>t</title></head><body>"
            '<webml:dataUnit unit="u1"/></body></html>'
        ))
        calls = []

        def factory():
            calls.append(1)
            raise RuntimeError("stop here")

        chunks = template.render_chunks(factory)
        prefix = next(chunks)
        assert "<title>t</title>" in prefix
        assert calls == [], "context was built before the first slot"
        with pytest.raises(RuntimeError):
            next(chunks)

    def test_pipeline_stage_names(self, app):
        assert app.front.PIPELINE == (
            "route", "protect", "execute", "deliver"
        )
