"""The process-per-core fleet: supervisor, workers, and the LSN gate.

These tests spawn real worker subprocesses (the same path production
takes), so they are the slowest in the suite — one fleet is shared
across the read/write/status assertions to keep that cost paid once.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

import pytest

from repro.app import WebApplication
from repro.appserver.fleet import (
    LSN_HEADER,
    MIN_LSN_HEADER,
    FleetClient,
    FleetSupervisor,
    PrimaryLsnStamp,
    ReplicaGate,
)
from repro.errors import ContainerError
from repro.mvc.http import HttpRequest, HttpResponse
from repro.rdb import Database
from repro.workloads.bookstore import (
    bean_content_renderer,
    build_bookstore_model,
    seed_bookstore,
)

FACTORY = "repro.workloads.bookstore:build_bookstore_replica"


@pytest.fixture(scope="module")
def fleet():
    """One seeded bookstore primary with a 2-worker fleet around it."""
    base = tempfile.mkdtemp(prefix="fleet-")
    db = Database.open(os.path.join(base, "primary"))
    app = WebApplication(build_bookstore_model(),
                         view_renderer=bean_content_renderer, database=db)
    oids = seed_bookstore(app)
    app.enable_commit_invalidation()
    supervisor = FleetSupervisor(app, FACTORY, workers=2, worker_threads=2,
                                 start_timeout=60.0)
    supervisor.start()
    try:
        yield supervisor, app, oids
    finally:
        supervisor.stop()
        app.close()
        shutil.rmtree(base, ignore_errors=True)


def _detail_url(app, oid: int) -> str:
    page = app.model.find_site_view("shop").find_page("Book Page")
    return app.page_url("shop", "Book Page",
                        {f"{page.units[0].id}.oid": oid})


class TestFleetLifecycle:
    def test_workers_come_up_with_distinct_addresses(self, fleet):
        supervisor, _app, _oids = fleet
        addresses = supervisor.worker_addresses
        assert len(addresses) == 2
        assert len(set(addresses)) == 2
        assert all(handle.alive for handle in supervisor.handles)

    def test_rejects_zero_workers(self):
        with pytest.raises(ContainerError, match="at least one"):
            FleetSupervisor(object(), FACTORY, workers=0)


class TestFleetRouting:
    def test_reads_are_served_by_replicas(self, fleet):
        supervisor, app, _oids = fleet
        client = FleetClient(supervisor)
        response = client.read(app.page_url("shop", "Home"))
        assert response.status == 200
        assert LSN_HEADER in response.headers

    def test_write_token_rides_the_response(self, fleet):
        supervisor, app, oids = fleet
        client = FleetClient(supervisor)
        login = client.write(app.operation_url(
            "backoffice", "Login",
            {"username": "clerk", "password": "books"}))
        assert login.status in (200, 302)
        assert client.last_write_token == app.database.last_lsn

    def test_read_your_writes_on_every_worker(self, fleet):
        supervisor, app, oids = fleet
        client = FleetClient(supervisor)
        client.write(app.operation_url(
            "backoffice", "Login",
            {"username": "clerk", "password": "books"}))
        book = oids["books"][0]
        for step, address in enumerate(supervisor.worker_addresses):
            price = 321.0 + step
            write = client.write(app.operation_url(
                "backoffice", "Reprice", {"oid": book, "price": price}))
            assert write.status in (200, 302)
            read = client.read(_detail_url(app, book), worker=address)
            assert read.status == 200
            served = json.loads(read.body)["Book"]["current"]
            assert float(served["price"]) == price

    def test_explicit_min_lsn_gates_the_read(self, fleet):
        supervisor, app, _oids = fleet
        client = FleetClient(supervisor, read_your_writes=False)
        token = supervisor.write_token()
        response = client.read(app.page_url("shop", "Home"), min_lsn=token)
        assert response.status == 200
        assert int(response.headers[LSN_HEADER]) >= token


class TestFleetObservability:
    def test_worker_status_reports_replication(self, fleet):
        supervisor, _app, _oids = fleet
        client = FleetClient(supervisor)
        response = client.read("/_status?format=json",
                               worker=supervisor.worker_addresses[0])
        external = json.loads(response.body)["metrics"]["external"]
        replication = external["replication"]
        assert replication["role"] == "replica"
        assert replication["connected"] is True
        assert replication["bootstraps"] >= 1
        assert set(external["replication.gate"]) == {
            "lsn_waits", "lsn_timeouts"}

    def test_primary_status_reports_per_worker_lag(self, fleet):
        supervisor, app, _oids = fleet
        status = supervisor.status()
        assert status["workers_alive"] == 2
        replication = status["replication"]
        assert replication["role"] == "primary"
        assert len(replication["workers"]) == 2
        names = {worker["name"] for worker in replication["workers"]}
        assert names == {"worker-0", "worker-1"}
        # and the same document is served over the wire at /_status
        from repro.httpcore.client import WireClient
        with WireClient(supervisor.primary_address) as wire:
            body = wire.request("/_status?format=json").body
        served = json.loads(body)["metrics"]["external"]["replication"]
        assert served["role"] == "primary"


class TestGateUnits:
    """The wrapper classes in isolation — no sockets, no subprocesses."""

    class _StubApp:
        def __init__(self, lsn=5):
            self.database = type("Db", (), {"last_lsn": lsn})()
            self.handled = []

        def handle(self, request):
            self.handled.append(request)
            return HttpResponse(status=200, body="ok")

    class _StubClient:
        def __init__(self, outcome=True):
            self.outcome = outcome
            self.waits = []

        def wait_for_lsn(self, lsn, timeout):
            self.waits.append((lsn, timeout))
            return self.outcome

    def test_primary_stamp_adds_lsn_header(self):
        app = self._StubApp(lsn=42)
        response = PrimaryLsnStamp(app).handle(
            HttpRequest.from_url("/x"))
        assert response.headers[LSN_HEADER] == "42"

    def test_gate_waits_only_when_header_present(self):
        app, client = self._StubApp(), self._StubClient()
        gate = ReplicaGate(app, client)
        gate.handle(HttpRequest.from_url("/x"))
        assert client.waits == []
        request = HttpRequest.from_url("/x")
        request.headers[MIN_LSN_HEADER] = "9"
        response = gate.handle(request)
        assert client.waits == [(9, gate.wait_timeout)]
        assert response.status == 200
        assert gate.stats() == {"lsn_waits": 1, "lsn_timeouts": 0}

    def test_gate_times_out_to_503(self):
        app = self._StubApp()
        gate = ReplicaGate(app, self._StubClient(outcome=False),
                           wait_timeout=0.01)
        request = HttpRequest.from_url("/x")
        request.headers[MIN_LSN_HEADER] = "9"
        response = gate.handle(request)
        assert response.status == 503
        assert response.headers["Retry-After"] == "1"
        assert app.handled == []  # the stale read never ran
        assert gate.stats()["lsn_timeouts"] == 1
