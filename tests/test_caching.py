"""Tests for the two-level cache (§6): policies, fragment cache, unit-bean
cache with model-driven invalidation, and the end-to-end behaviour that
operations invalidate exactly the dependent beans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app import Browser, WebApplication
from repro.caching import (
    CacheStats,
    FragmentCache,
    UnitBeanCache,
    parse_policy,
)
from repro.errors import CacheError
from repro.services import UnitBean
from repro.util import VirtualClock

from tests.conftest import build_acm_webml, seed_acm


class TestPolicies:
    def test_model_driven(self):
        policy = parse_policy("model-driven")
        assert policy.ttl_seconds is None
        assert policy.expires_at(100.0) is None

    def test_ttl(self):
        policy = parse_policy("ttl:30")
        assert policy.expires_at(100.0) == 130.0

    def test_bad_policies(self):
        for bad in ("ttl:abc", "ttl:0", "ttl:-5", "forever"):
            with pytest.raises(CacheError):
                parse_policy(bad)


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        stats.reset()
        assert stats.hit_rate == 0.0


class TestFragmentCache:
    def test_put_get(self):
        cache = FragmentCache()
        cache.put(("u1", "abc"), "<div>html</div>")
        assert cache.get(("u1", "abc")) == "<div>html</div>"
        assert cache.get(("u1", "other")) is None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FragmentCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a
        cache.put("c", "3")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.stats.evictions == 1

    def test_ttl_expiry(self):
        clock = VirtualClock()
        cache = FragmentCache(ttl_seconds=10, clock=clock)
        cache.put("k", "html")
        assert cache.get("k") == "html"
        clock.advance(11)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_flush(self):
        cache = FragmentCache()
        cache.put("a", "1")
        assert cache.flush() == 1
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            FragmentCache(max_entries=0)

    def test_scoped_invalidation_drops_only_dependents(self):
        cache = FragmentCache()
        cache.put("papers", "<div/>", entities=["Paper"])
        cache.put("volumes", "<div/>", entities=["Volume"])
        cache.put("authors", "<div/>", roles=["Authorship"])
        assert cache.invalidate_writes(entities=["Paper"]) == 1
        assert cache.get("papers") is None
        assert cache.get("volumes") is not None
        assert cache.invalidate_writes(roles=["Authorship"]) == 1
        assert cache.get("authors") is None
        assert cache.dependents_of(entity="Paper") == 0
        assert cache.dependents_of(role="Authorship") == 0

    def test_unscoped_mode_flushes_on_any_write(self):
        cache = FragmentCache(scoped=False)
        cache.put("papers", "<div/>", entities=["Paper"])
        cache.put("volumes", "<div/>", entities=["Volume"])
        assert cache.invalidate_writes(entities=["Author"]) == 2
        assert len(cache) == 0
        # ...but an operation with an empty write set drops nothing
        cache.put("papers", "<div/>", entities=["Paper"])
        assert cache.invalidate_writes() == 0
        assert len(cache) == 1

    def test_eviction_cleans_dependency_indexes(self):
        cache = FragmentCache(max_entries=2)
        cache.put("a", "1", entities=["Paper"])
        cache.put("b", "2", entities=["Paper"])
        cache.put("c", "3", entities=["Paper"])  # evicts a
        assert cache.dependents_of(entity="Paper") == 2


class TestFragmentSingleFlight:
    def test_renders_missing_fragment_once_across_threads(self):
        import threading

        cache = FragmentCache()
        renders = []
        gate = threading.Event()

        def render():
            gate.wait(2.0)
            renders.append(1)
            return "<div>once</div>"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                cache.get_or_render("k", render)
            ))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()
        assert len(renders) == 1
        assert results == ["<div>once</div>"] * 6
        assert cache.stats.coalesced >= 1

    def test_failed_render_leaves_no_stuck_flight(self):
        cache = FragmentCache()

        def explode():
            raise RuntimeError("render failed")

        with pytest.raises(RuntimeError):
            cache.get_or_render("k", explode)
        # the in-flight marker was cleaned up: the next caller is not
        # stuck waiting on a leader that will never publish
        assert not cache._in_flight
        assert cache.get_or_render("k", lambda: "<ok/>") == "<ok/>"

    def test_waiter_retries_after_leader_failure(self):
        import threading

        cache = FragmentCache()
        leader_entered = threading.Event()
        release_leader = threading.Event()

        def failing_render():
            leader_entered.set()
            release_leader.wait(2.0)
            raise RuntimeError("leader died")

        errors, results = [], []

        def leader():
            try:
                cache.get_or_render("k", failing_render)
            except RuntimeError as exc:
                errors.append(exc)

        def waiter():
            leader_entered.wait(2.0)
            results.append(cache.get_or_render("k", lambda: "<recovered/>"))

        threads = [threading.Thread(target=leader),
                   threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        leader_entered.wait(2.0)
        release_leader.set()
        for thread in threads:
            thread.join()
        assert len(errors) == 1  # the leader's failure surfaced to it
        assert results == ["<recovered/>"]  # the waiter retried and won
        assert not cache._in_flight

    def test_invalidation_during_render_discards_result(self):
        cache = FragmentCache()

        def render():
            cache.invalidate_writes(entities=["Paper"])
            return "<stale/>"

        html = cache.get_or_render("k", render, entities=["Paper"])
        assert html == "<stale/>"  # the caller still gets markup
        assert cache.get("k") is None  # but it was never cached


def _bean(unit_id="u1") -> UnitBean:
    return UnitBean(unit_id, "Unit", "index", rows=[{"oid": 1}])


class TestUnitBeanCache:
    def test_put_get_marks_from_cache(self):
        cache = UnitBeanCache()
        cache.put("k", _bean(), entities=["Paper"])
        hit = cache.get("k")
        assert hit is not None and hit.from_cache

    def test_model_driven_invalidation_by_entity(self):
        cache = UnitBeanCache()
        cache.put("papers", _bean(), entities=["Paper"])
        cache.put("volumes", _bean("u2"), entities=["Volume"])
        dropped = cache.invalidate_writes(entities=["Paper"])
        assert dropped == 1
        assert cache.get("papers") is None
        assert cache.get("volumes") is not None

    def test_invalidation_by_role(self):
        cache = UnitBeanCache()
        cache.put("authors", _bean(), entities=["Author"],
                  roles=["Authorship"])
        assert cache.invalidate_writes(roles=["Authorship"]) == 1
        assert cache.get("authors") is None

    def test_invalidation_touches_only_dependents(self):
        cache = UnitBeanCache()
        for i in range(10):
            entity = "Paper" if i % 2 else "Volume"
            cache.put(f"k{i}", _bean(f"u{i}"), entities=[entity])
        dropped = cache.invalidate_writes(entities=["Paper"])
        assert dropped == 5
        assert len(cache) == 5

    def test_ttl_policy(self):
        clock = VirtualClock()
        cache = UnitBeanCache(clock=clock)
        cache.put("k", _bean(), entities=["Paper"], policy="ttl:5")
        assert cache.get("k") is not None
        clock.advance(6)
        assert cache.get("k") is None

    def test_lru_eviction_cleans_indexes(self):
        cache = UnitBeanCache(max_entries=2)
        cache.put("a", _bean("a"), entities=["Paper"])
        cache.put("b", _bean("b"), entities=["Paper"])
        cache.put("c", _bean("c"), entities=["Paper"])
        assert len(cache) == 2
        assert cache.dependents_of(entity="Paper") == 2
        assert cache.stats.evictions == 1

    def test_overwrite_same_key(self):
        cache = UnitBeanCache()
        cache.put("k", _bean(), entities=["Paper"])
        cache.put("k", _bean(), entities=["Volume"])
        assert cache.dependents_of(entity="Paper") == 0
        assert cache.dependents_of(entity="Volume") == 1

    def test_flush(self):
        cache = UnitBeanCache()
        cache.put("k", _bean(), entities=["Paper"])
        assert cache.flush() == 1
        assert cache.dependents_of(entity="Paper") == 0

    @given(st.lists(st.sampled_from(["Paper", "Volume", "Issue"]),
                    min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_invalidation_never_leaves_stale_dependents(self, entities):
        cache = UnitBeanCache()
        for position, entity in enumerate(entities):
            cache.put(f"k{position}", _bean(f"u{position}"), entities=[entity])
        for entity in set(entities):
            cache.invalidate_writes(entities=[entity])
            assert cache.dependents_of(entity=entity) == 0
        assert len(cache) == 0


# -- property-style oracle test ---------------------------------------------

_KEYS = ("k0", "k1", "k2", "k3", "k4", "k5")
_ENTITIES = ("Paper", "Volume", "Issue")

_OPS = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(_KEYS),
              st.sampled_from(_ENTITIES),
              st.sampled_from(("model-driven", "ttl:10"))),
    st.tuples(st.just("get"), st.sampled_from(_KEYS)),
    st.tuples(st.just("invalidate"), st.sampled_from(_ENTITIES)),
    st.tuples(st.just("advance"), st.integers(min_value=1, max_value=15)),
)


class _CacheOracle:
    """A deliberately naive model of the §6 bean cache: a dict plus a
    recency list, replayed operation by operation."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.now = 0.0
        # key → (serial, entity, expires_at); insertion order = LRU order
        self.entries: dict[str, tuple[int, str, float | None]] = {}

    def put(self, key, serial, entity, policy):
        expires = self.now + 10.0 if policy.startswith("ttl") else None
        self.entries.pop(key, None)
        self.entries[key] = (serial, entity, expires)
        while len(self.entries) > self.capacity:
            self.entries.pop(next(iter(self.entries)))

    def get(self, key):
        entry = self.entries.get(key)
        if entry is None:
            return None
        serial, entity, expires = entry
        if expires is not None and self.now >= expires:
            del self.entries[key]
            return None
        # refresh recency
        del self.entries[key]
        self.entries[key] = (serial, entity, expires)
        return serial

    def invalidate(self, entity):
        self.entries = {
            k: v for k, v in self.entries.items() if v[1] != entity
        }


class TestBeanCacheProperties:
    """Hypothesis-driven oracle test: arbitrary interleavings of put,
    get, invalidate and clock advances must match a naive model — this
    pins down TTL expiry, LRU eviction and dependency invalidation at
    once."""

    @given(st.lists(_OPS, min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_cache_matches_oracle(self, operations):
        clock = VirtualClock()
        capacity = 3
        cache = UnitBeanCache(max_entries=capacity, clock=clock)
        oracle = _CacheOracle(capacity)
        serial = 0
        for operation in operations:
            if operation[0] == "put":
                _, key, entity, policy = operation
                serial += 1
                bean = UnitBean(key, f"bean-{serial}", "data")
                bean.serial = serial
                cache.put(key, bean, entities=[entity], policy=policy)
                oracle.put(key, serial, entity, policy)
            elif operation[0] == "get":
                _, key = operation
                got = cache.get(key)
                expected = oracle.get(key)
                if expected is None:
                    assert got is None
                else:
                    assert got is not None and got.serial == expected
            elif operation[0] == "invalidate":
                _, entity = operation
                cache.invalidate_writes(entities=[entity])
                oracle.invalidate(entity)
            else:  # advance
                _, seconds = operation
                clock.advance(seconds)
                oracle.now += seconds
            assert len(cache) == len(oracle.entries)
        # final sweep: every key agrees between cache and oracle
        for key in _KEYS:
            expected = oracle.get(key)
            got = cache.get(key)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.serial == expected


class TestEndToEndCaching:
    """The §6 claims, exercised on the real application."""

    def _cached_app(self):
        model = build_acm_webml()
        # tag the volume index as cached with model-driven invalidation
        volumes_page = model.find_site_view("public").find_page("Volumes")
        volumes_page.unit("All volumes").cacheable = True
        cache = UnitBeanCache()
        app = WebApplication(model, bean_cache=cache)
        seed_acm(app)
        app.ctx.stats.reset()
        app.database.stats.reset()
        return app, cache

    def test_bean_cache_spares_queries(self):
        app, cache = self._cached_app()
        browser = Browser(app)
        browser.get("/")
        first_queries = app.ctx.stats.queries_executed
        assert first_queries == 1
        browser.get("/")
        browser.get("/")
        assert app.ctx.stats.queries_executed == first_queries  # spared!
        assert cache.stats.hits == 2

    def test_operation_invalidates_dependent_bean(self):
        app, cache = self._cached_app()
        browser = Browser(app)
        browser.get("/")
        assert len(cache) == 1

        # add a create-volume operation and run it
        model = app.model
        admin = model.find_site_view("admin")
        volumes_page = model.find_site_view("public").find_page("Volumes")
        from repro.webml import LinkKind

        create_volume = admin.create_op("CreateVolume", "Volume",
                                        ["number", "year", "title"])
        model.link(create_volume, volumes_page, kind=LinkKind.OK)
        model.link(create_volume, volumes_page, kind=LinkKind.KO)
        from repro.codegen import generate_project

        project = generate_project(model, validate=False)
        project.deploy(app.registry)
        app.controller.load_config(project.controller_config)

        login = Browser(app)
        login.get(app.operation_url("admin", "Login",
                                    {"username": "admin",
                                     "password": "secret"}))
        response = login.get(app.operation_url("admin", "CreateVolume", {
            "number": "29", "year": "2004", "title": "TODS 29",
        }))
        assert response.status == 200
        # the cached volume-index bean was invalidated by the write...
        assert cache.stats.invalidations == 1
        # ...so the next rendering shows the new volume (no stale serve)
        browser.get("/")
        assert "3 row(s)" in browser.body

    def test_unrelated_write_keeps_cache(self):
        app, cache = self._cached_app()
        browser = Browser(app)
        browser.get("/")
        login = Browser(app)
        login.get(app.operation_url("admin", "Login",
                                    {"username": "admin",
                                     "password": "secret"}))
        login.get(app.operation_url("admin", "CreatePaper",
                                    {"title": "Unrelated", "pages": "1"}))
        # papers don't feed the volume index: bean survives
        assert cache.stats.invalidations == 0
        assert len(cache) == 1

    def test_fragment_cache_does_not_spare_queries(self):
        """§6's central observation, measured."""
        from repro.caching import FragmentCache
        from repro.presentation import PresentationRenderer, UnitRule
        from repro.presentation.renderer import default_stylesheet
        from repro.codegen import generate_project

        model = build_acm_webml()
        project = generate_project(model)
        stylesheet = default_stylesheet("ACM")
        # mark index fragments cacheable (one rule applies per tag, so
        # extend the existing index rule rather than adding a second one)
        index_rule = next(r for r in stylesheet.unit_rules
                          if r.name == "style-index")
        index_rule.set_attrs["fragment"] = "cache"
        fragment_cache = FragmentCache()
        renderer = PresentationRenderer(
            project.skeletons, stylesheet, fragment_cache=fragment_cache
        )
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        app.ctx.stats.reset()

        browser = Browser(app)
        browser.get("/")
        browser.get("/")
        assert fragment_cache.stats.hits == 1  # markup generation spared
        assert app.ctx.stats.queries_executed == 2  # queries NOT spared
