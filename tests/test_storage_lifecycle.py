"""Lifecycle of the storage engine across the stack, and the
commit-driven invalidation bridge.

Satellites of the storage-engine refactor: ``Database`` is a context
manager with an idempotent ``close()``; the runtime context, the
application and the app server all shut the engine down
deterministically; and when commit-driven invalidation is enabled,
entity invalidations ride the engine's commit stream (translated from
tables back to ER entities) while role invalidations keep riding the
descriptor path.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.app import WebApplication
from repro.appserver import ThreadedAppServer
from repro.descriptors import DescriptorRegistry
from repro.rdb import Database
from repro.services import RuntimeContext
from repro.services.operations import ModifyOperationService
from repro.workloads.acm import build_acm_model


class _RecordingCache:
    """Duck-typed cache level that records every invalidation."""

    def __init__(self):
        self.calls: list[tuple[tuple, tuple]] = []

    def get(self, key):
        return None

    def put(self, key, bean, entities, roles, policy=None):
        pass

    def invalidate_writes(self, entities, roles) -> int:
        self.calls.append((tuple(entities), tuple(roles)))
        return 0

    def flush(self) -> int:
        return 0


class TestDatabaseLifecycle:
    def test_context_manager_and_idempotent_close(self):
        with Database() as db:
            db.execute(
                "CREATE TABLE t (oid INTEGER NOT NULL, PRIMARY KEY (oid))"
            )
            assert not db.closed
        assert db.closed
        db.close()  # double close is defined: a no-op
        assert db.closed

    def test_durable_close_is_idempotent(self):
        base = tempfile.mkdtemp(prefix="db-close-")
        try:
            db = Database.open(os.path.join(base, "data"))
            db.execute(
                "CREATE TABLE t (oid INTEGER NOT NULL, PRIMARY KEY (oid))"
            )
            db.close()
            db.close()
            assert db.closed
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_runtime_context_close_closes_database(self):
        db = Database()
        ctx = RuntimeContext(db, DescriptorRegistry())
        ctx.close()
        assert db.closed
        ctx.close()  # idempotent through the context too


class TestApplicationLifecycle:
    def test_app_close_and_context_manager(self):
        with WebApplication(build_acm_model()) as app:
            app.seed_entity("Volume", [
                {"number": 1, "year": 2002, "title": "V1"},
            ])
            assert not app.database.closed
        assert app.database.closed
        app.close()  # idempotent

    def test_appserver_stop_default_leaves_app_open(self):
        app = WebApplication(build_acm_model())
        with ThreadedAppServer(app, workers=2) as server:
            assert server.running
        assert not app.database.closed
        app.close()

    def test_appserver_stop_can_close_app(self):
        app = WebApplication(build_acm_model())
        server = ThreadedAppServer(app, workers=2).start()
        server.stop(close_app=True)
        assert not server.running
        assert app.database.closed
        server.stop(close_app=True)  # both halves idempotent

    def test_durable_app_flushes_on_close(self):
        base = tempfile.mkdtemp(prefix="app-durable-")
        try:
            data_dir = os.path.join(base, "data")
            app = WebApplication(
                build_acm_model(),
                database=Database.open(data_dir, group_commit_window=60.0),
            )
            oids = app.seed_entity("Volume", [
                {"number": 27, "year": 2002, "title": "TODS 27"},
            ])
            app.close()
            # despite the wide group-commit window, close() flushed:
            # a reopened database sees the seeded row
            with Database.open(data_dir) as recovered:
                rows = recovered.query(
                    "SELECT title FROM volume WHERE oid = :oid",
                    {"oid": oids[0]},
                )
                assert [r["title"] for r in rows] == ["TODS 27"]
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_durable_engine_surfaces_in_observability(self):
        base = tempfile.mkdtemp(prefix="app-obs-")
        try:
            app = WebApplication(
                build_acm_model(),
                database=Database.open(os.path.join(base, "data")),
            )
            app.seed_entity("Author", [{"name": "S. Ceri"}])
            snapshot = app.ctx.obs.metrics.snapshot()
            storage = snapshot["external"]["rdb.storage"]
            assert storage["engine"] == "durable"
            assert storage["wal_records"] > 0
            assert storage["wal_fsyncs"] > 0
            assert storage["recovery"]["recovered_lsn"] == 0
            histogram = app.ctx.obs.metrics.histogram(
                "rdb.wal_fsync_seconds"
            )
            assert histogram.count > 0
            app.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_memory_engine_surfaces_in_observability(self):
        app = WebApplication(build_acm_model())
        storage = app.ctx.obs.metrics.snapshot()["external"]["rdb.storage"]
        assert storage["engine"] == "memory"
        assert storage["commits"] > 0  # schema install committed
        app.close()


class TestCommitDrivenInvalidation:
    def _app(self):
        cache = _RecordingCache()
        app = WebApplication(build_acm_model(), bean_cache=cache)
        return app, cache

    def test_disabled_by_default(self):
        app, cache = self._app()
        before = len(cache.calls)
        app.seed_entity("Author", [{"name": "P. Fraternali"}])
        # seed-path writes bypass the bus entirely unless enabled
        assert len(cache.calls) == before
        assert app.ctx.commit_invalidations == 0
        app.close()

    def test_entity_tables_translate_to_entities(self):
        app, cache = self._app()
        app.enable_commit_invalidation()
        cache.calls.clear()
        app.seed_entity("Author", [{"name": "S. Ceri"}])
        assert cache.calls == [(("Author",), ())]
        assert app.ctx.commit_invalidations == 1
        app.close()

    def test_bridge_table_invalidates_both_endpoints(self):
        app, cache = self._app()
        papers = app.seed_entity(
            "Paper", [{"title": "WebML", "pages": 20}]
        )
        authors = app.seed_entity("Author", [{"name": "S. Ceri"}])
        app.enable_commit_invalidation()
        cache.calls.clear()
        app.connect_instances("Authorship", papers[0], authors[0])
        assert cache.calls == [(("Author", "Paper"), ())]
        app.close()

    def test_enable_twice_subscribes_once(self):
        app, cache = self._app()
        app.enable_commit_invalidation()
        app.enable_commit_invalidation()
        cache.calls.clear()
        app.seed_entity("Author", [{"name": "once"}])
        assert len(cache.calls) == 1
        app.close()

    def test_direct_sql_writes_also_invalidate(self):
        """The point of the bridge: writes that never pass through an
        operation service (admin scripts, direct SQL) now invalidate."""
        app, cache = self._app()
        oids = app.seed_entity("Author", [{"name": "stale"}])
        app.enable_commit_invalidation()
        cache.calls.clear()
        app.database.execute(
            "UPDATE author SET name = :n WHERE oid = :oid",
            {"n": "fresh", "oid": oids[0]},
        )
        assert cache.calls == [(("Author",), ())]
        app.close()

    def test_operation_services_only_publish_roles(self):
        db = Database()
        ctx = RuntimeContext(db, DescriptorRegistry())
        published = []
        ctx.invalidation_bus.invalidate_writes = (
            lambda entities, roles: published.append(
                (tuple(entities), tuple(roles))
            )
        )

        class _Descriptor:
            operation_id = "op1"
            writes_entities = ("Paper",)
            writes_roles = ("Authorship",)

        service = ModifyOperationService()
        service._after_success(_Descriptor(), ctx)
        assert published == [(("Paper",), ("Authorship",))]

        published.clear()
        ctx.commit_invalidation_enabled = True
        service._after_success(_Descriptor(), ctx)
        # entities already rode the commit stream; only roles go out
        assert published == [((), ("Authorship",))]

        published.clear()
        _Descriptor.writes_roles = ()
        service._after_success(_Descriptor(), ctx)
        assert published == []
        ctx.close()
