"""Run the doctest examples embedded in library docstrings."""

import doctest

import pytest

import repro.util.identifiers
import repro.xmlkit.node

MODULES = [
    repro.util.identifiers,
    repro.xmlkit.node,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module should carry runnable examples"
