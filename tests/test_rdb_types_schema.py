"""Tests for the SQL type system and table schema metadata."""

import datetime

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.rdb import (
    BooleanType,
    Column,
    DateType,
    FloatType,
    ForeignKey,
    Index,
    IntegerType,
    TableSchema,
    TextType,
    VarcharType,
    type_from_name,
)


class TestTypes:
    def test_integer_accepts_int(self):
        assert IntegerType().coerce(42) == 42

    def test_integer_accepts_integral_float(self):
        assert IntegerType().coerce(3.0) == 3

    def test_integer_accepts_numeric_string(self):
        assert IntegerType().coerce("17") == 17

    def test_integer_rejects_fraction(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().coerce(3.5)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            IntegerType().coerce(True)

    def test_float_widens_int(self):
        value = FloatType().coerce(2)
        assert value == 2.0 and isinstance(value, float)

    def test_float_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            FloatType().coerce("not a number")

    def test_varchar_enforces_length(self):
        assert VarcharType(5).coerce("abcde") == "abcde"
        with pytest.raises(TypeMismatchError):
            VarcharType(5).coerce("abcdef")

    def test_varchar_stringifies(self):
        assert VarcharType(10).coerce(42) == "42"

    def test_varchar_rejects_nonpositive_length(self):
        with pytest.raises(SchemaError):
            VarcharType(0)

    def test_text_accepts_anything_stringable(self):
        assert TextType().coerce(3.5) == "3.5"

    def test_boolean_accepts_variants(self):
        assert BooleanType().coerce(True) is True
        assert BooleanType().coerce(0) is False
        assert BooleanType().coerce("TRUE") is True

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            BooleanType().coerce(2)

    def test_date_accepts_iso_string(self):
        assert DateType().coerce("2003-01-05") == datetime.date(2003, 1, 5)

    def test_date_accepts_datetime(self):
        stamp = datetime.datetime(2003, 1, 5, 10, 30)
        assert DateType().coerce(stamp) == datetime.date(2003, 1, 5)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            DateType().coerce("Jan 5 2003")

    def test_null_passes_every_type(self):
        for sql_type in (IntegerType(), FloatType(), VarcharType(3), TextType(),
                         BooleanType(), DateType()):
            assert sql_type.coerce(None) is None

    def test_type_from_name(self):
        assert type_from_name("INTEGER") == IntegerType()
        assert type_from_name("varchar(12)") == VarcharType(12)
        assert type_from_name("BOOL") == BooleanType()
        assert type_from_name("REAL") == FloatType()

    def test_type_from_name_unknown(self):
        with pytest.raises(SchemaError):
            type_from_name("GEOMETRY")

    def test_type_equality_includes_length(self):
        assert VarcharType(5) != VarcharType(6)
        assert VarcharType(5) == VarcharType(5)


def _volume_schema() -> TableSchema:
    return TableSchema(
        name="volume",
        columns=[
            Column("oid", IntegerType(), nullable=False, auto_increment=True),
            Column("title", VarcharType(80), nullable=False),
            Column("year", IntegerType()),
        ],
        primary_key=("oid",),
    )


class TestSchema:
    def test_column_names(self):
        assert _volume_schema().column_names == ["oid", "title", "year"]

    def test_column_lookup(self):
        schema = _volume_schema()
        assert schema.column("title").sql_type == VarcharType(80)
        with pytest.raises(SchemaError):
            schema.column("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError, match="duplicate column"):
            TableSchema("t", [Column("a", IntegerType()), Column("a", TextType())])

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError, match="primary key column"):
            TableSchema("t", [Column("a", IntegerType())], primary_key=("b",))

    def test_fk_columns_must_exist(self):
        with pytest.raises(SchemaError, match="foreign key column"):
            TableSchema(
                "t",
                [Column("a", IntegerType())],
                foreign_keys=[ForeignKey(("b",), "other", ("oid",))],
            )

    def test_fk_arity_mismatch(self):
        with pytest.raises(SchemaError, match="column count mismatch"):
            ForeignKey(("a", "b"), "other", ("oid",))

    def test_fk_bad_action(self):
        with pytest.raises(SchemaError, match="on_delete"):
            ForeignKey(("a",), "other", ("oid",), on_delete="explode")

    def test_auto_increment_requires_single_pk(self):
        with pytest.raises(SchemaError, match="auto-increment"):
            TableSchema(
                "t",
                [Column("a", IntegerType(), auto_increment=True),
                 Column("b", IntegerType())],
                primary_key=("a", "b"),
            )

    def test_index_columns_must_exist(self):
        with pytest.raises(SchemaError, match="index"):
            TableSchema(
                "t",
                [Column("a", IntegerType())],
                indexes=[Index("ix", ("missing",))],
            )

    def test_to_ddl_roundtrips_through_parser(self):
        from repro.rdb.sqlparser import parse_sql, CreateTable

        schema = TableSchema(
            name="issue",
            columns=[
                Column("oid", IntegerType(), nullable=False, auto_increment=True),
                Column("volume_oid", IntegerType(), nullable=False),
                Column("label", VarcharType(40)),
            ],
            primary_key=("oid",),
            foreign_keys=[
                ForeignKey(("volume_oid",), "volume", ("oid",), on_delete="cascade")
            ],
            unique_constraints=[("volume_oid", "label")],
        )
        parsed = parse_sql(schema.to_ddl())
        assert isinstance(parsed, CreateTable)
        reparsed = parsed.schema
        assert reparsed.name == "issue"
        assert reparsed.column_names == ["oid", "volume_oid", "label"]
        assert reparsed.primary_key == ("oid",)
        assert reparsed.foreign_keys[0].on_delete == "cascade"
        assert reparsed.unique_constraints == [("volume_oid", "label")]
        assert reparsed.column("oid").auto_increment
