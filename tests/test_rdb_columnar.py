"""Columnar batch execution: storage sync, layout choice, statistics.

The four-way *semantic* identity lives in the oracle suite
(``tests/test_rdb_compile_oracle.py``); this file covers the machinery
around it — the column store's lazy build and incremental sync, the
write-burst drop and tombstone compaction, recovery, the cost model's
row-vs-columnar decision, EXPLAIN/plan-cache/observability surfaces,
and the single-pass columnar ANALYZE path.
"""

from __future__ import annotations

import os
import tempfile

from repro.rdb import Database
from repro.rdb import columnar as columnar_mod
from repro.rdb.statistics import collect_statistics


def _seeded(rows: int = 200) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE item (oid INTEGER NOT NULL AUTOINCREMENT,"
        " label VARCHAR(40), kind VARCHAR(12), price FLOAT, n INTEGER,"
        " PRIMARY KEY (oid))"
    )
    kinds = ["alpha", "beta", "gamma", None]
    for i in range(rows):
        db.insert_row("item", {
            "label": f"item-{i:04d}",
            "kind": kinds[i % 4],
            "price": None if i % 11 == 7 else float(i % 50) + 0.5,
            "n": i % 9,
        })
    return db


SCAN = "SELECT label, price FROM item WHERE n > 4 ORDER BY oid"
AGG = ("SELECT kind, COUNT(*) AS c, SUM(n) AS s FROM item"
       " GROUP BY kind ORDER BY c DESC, kind")


class TestColumnStoreLifecycle:
    def test_lazy_build_and_incremental_sync(self):
        db = _seeded()
        store = db.table("item")
        assert not store.column_store.built  # no columnar scan yet
        plan = db.prepare(SCAN, columnar=True)
        want = plan.execute().as_tuples()
        assert store.column_store.built
        assert store.column_store.counters["builds"] == 1
        # point writes land as pending ops, drained by the next scan
        db.insert_row("item", {"label": "item-new", "kind": "alpha",
                               "price": 1.5, "n": 8})
        db.execute("UPDATE item SET n = 0 WHERE label = 'item-0005'")
        db.execute("DELETE FROM item WHERE label = 'item-0013'")
        assert store.column_store.pending_ops() == 3
        got = plan.execute().as_tuples()
        assert store.column_store.pending_ops() == 0
        assert store.column_store.counters["builds"] == 1  # no rebuild
        row_path = db.prepare(SCAN, columnar=False).execute().as_tuples()
        assert got == row_path
        assert got != want

    def test_write_burst_drops_the_store(self):
        db = _seeded(40)
        store = db.table("item")
        db.prepare(SCAN, columnar=True).execute()
        assert store.column_store.built
        # a burst larger than the pending cap abandons chasing and
        # rebuilds lazily at the next scan
        for i in range(columnar_mod.MAX_PENDING_OPS + 10):
            db.insert_row("item", {"label": f"burst-{i}", "kind": "beta",
                                   "price": 2.0, "n": i % 9})
        assert not store.column_store.built
        assert store.column_store.counters["dropped_rebuilds"] == 1
        got = db.prepare(SCAN, columnar=True).execute().as_tuples()
        assert got == db.prepare(SCAN, columnar=False).execute().as_tuples()
        assert store.column_store.built

    def test_tombstone_compaction(self):
        db = _seeded(300)
        store = db.table("item")
        plan = db.prepare(SCAN, columnar=True)
        plan.execute()
        db.delete_where("item", lambda row: row["n"] != 4)  # kill most rows
        got = plan.execute().as_tuples()
        assert got == db.prepare(SCAN, columnar=False).execute().as_tuples()
        # dead positions dominated, so the sync compacted them away
        assert store.column_store.tombstones == 0
        assert store.column_store.counters["rebuilds"] >= 1

    def test_recovery_rebuilds_on_first_use(self):
        with tempfile.TemporaryDirectory() as path:
            directory = os.path.join(path, "db")
            with Database.open(directory) as db:
                db.execute(
                    "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
                    " v INTEGER, s VARCHAR(10), PRIMARY KEY (oid))"
                )
                for i in range(120):
                    db.insert_row("t", {"v": i, "s": f"s{i % 3}"})
                want = db.prepare(
                    "SELECT s, SUM(v) AS sv FROM t GROUP BY s ORDER BY s",
                    columnar=True,
                ).execute().as_tuples()
            with Database.open(directory) as db:
                # recovery replays through the normal mutators; the
                # column store simply rebuilds on first columnar scan
                assert not db.table("t").column_store.built
                got = db.prepare(
                    "SELECT s, SUM(v) AS sv FROM t GROUP BY s ORDER BY s",
                    columnar=True,
                ).execute().as_tuples()
                assert got == want
                assert db.table("t").column_store.built


class TestLayoutChoice:
    def test_cost_model_picks_columnar_for_wide_scans(self):
        db = _seeded(500)
        plan = db.prepare(SCAN)
        assert plan.exec_mode == "columnar"
        assert db.prepare(AGG).exec_mode == "columnar"

    def test_small_tables_stay_on_the_row_path(self):
        db = _seeded(30)
        assert db.prepare(SCAN).exec_mode == "compiled"

    def test_point_lookups_stay_on_the_row_path(self):
        db = _seeded(500)
        db.execute("CREATE INDEX ix_item_label ON item (label)")
        plan = db.prepare("SELECT price FROM item WHERE label = 'item-0007'")
        assert plan.exec_mode != "columnar"
        assert "IndexLookup" in plan.explain()

    def test_forced_columnar_on_ineligible_shape_stays_row(self):
        db = _seeded(500)
        db.execute(
            "CREATE TABLE other (oid INTEGER NOT NULL AUTOINCREMENT,"
            " n INTEGER, PRIMARY KEY (oid))"
        )
        plan = db.prepare(
            "SELECT i.label FROM item i JOIN other o ON o.n = i.n",
            columnar=True,
        )
        assert plan.columnar_pipeline is None
        assert plan.exec_mode in ("compiled", "mixed")

    def test_explain_annotates_exec_columnar(self):
        db = _seeded(500)
        assert "exec=columnar" in db.explain(SCAN)

    def test_plan_cache_stores_the_columnar_plan(self):
        db = _seeded(500)
        first = db.prepare(SCAN)
        assert first.exec_mode == "columnar"
        assert db.prepare(SCAN) is first  # cache hit, pipeline included
        db.query(SCAN)
        assert db.stats.selects_columnar == 1


class TestColumnarObservability:
    def test_status_counters(self):
        db = _seeded(500)
        db.query(SCAN)
        db.query(AGG)
        stats = db.observability_stats()
        assert stats["selects_columnar"] == 2
        assert stats["plans_columnar"] == 2
        section = stats["columnar"]
        assert section["tables_built"] == 1
        assert section["scans"] == 2
        assert section["batches_scanned"] >= 2
        assert 0.0 <= section["dict_hit_ratio"] <= 1.0
        db.insert_row("item", {"label": "x", "kind": "beta",
                               "price": 1.0, "n": 1})
        assert db.observability_stats()["columnar"]["pending_ops"] == 1


class TestColumnarStatistics:
    def test_analyze_matches_row_path(self):
        db = _seeded(400)
        store = db.table("item")
        row_stats = collect_statistics(store)  # store not built yet
        db.prepare(SCAN, columnar=True).execute()
        assert store.column_store.built
        column_stats = collect_statistics(store)
        assert column_stats == row_stats

    def test_analyze_matches_after_writes_and_deletes(self):
        db = _seeded(400)
        store = db.table("item")
        db.prepare(SCAN, columnar=True).execute()
        db.execute("UPDATE item SET kind = NULL WHERE n = 3")
        db.execute("DELETE FROM item WHERE n = 7")
        db.insert_row("item", {"label": "late", "kind": "delta",
                               "price": 9.0, "n": 2})
        column_stats = collect_statistics(store)
        # force the row path by reading a fresh unbuilt clone of the data
        clone = _seeded(0).table("item")
        for row in store.rows.values():
            clone.insert_prepared(dict(row))
        row_stats = collect_statistics(clone)
        assert column_stats.row_count == row_stats.row_count
        assert column_stats.columns == row_stats.columns

    def test_analyze_statement_uses_columnar_store(self):
        db = _seeded(400)
        store = db.table("item")
        db.prepare(SCAN, columnar=True).execute()
        db.execute("ANALYZE item")
        assert store.statistics is not None
        assert store.statistics.row_count == len(store.rows)
        assert store.statistics.column("kind").distinct == 3
        assert store.statistics.column("kind").null_count == 100
