"""The grand tour: every subsystem in one application.

A scaled-down Acer portal served with the full stack at once — styled
presentation (compile-time rules + CSS + menus), the two-level cache,
the business tier deployed in the component container (Figure 6), and
zipfian traffic over every public page — asserting the global invariants
that the individual suites check piecewise.
"""

import pytest

from repro.app import Browser, WebApplication
from repro.appserver import ComponentContainer, deploy_business_tier
from repro.caching import FragmentCache, UnitBeanCache
from repro.codegen import generate_project
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.util import VirtualClock
from repro.workloads.acer import AcerScale, build_acer_model, seed_acer_data
from repro.workloads.traffic import TrafficGenerator, page_url_pool


@pytest.fixture(scope="module")
def portal():
    scale = AcerScale(site_views=3, pages=12, units=62)
    model = build_acer_model(scale)
    model.validate()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model, validate=False)

    stylesheet = default_stylesheet("Grand Tour Portal")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    fragment_cache = FragmentCache()
    bean_cache = UnitBeanCache()
    renderer = PresentationRenderer(project.skeletons, stylesheet,
                                    fragment_cache=fragment_cache)
    app = WebApplication(model, view_renderer=renderer,
                         bean_cache=bean_cache)
    seed_acer_data(app, rows_per_entity=6)
    clock = VirtualClock()
    container = deploy_business_tier(app, ComponentContainer(clock=clock))
    app.ctx.stats.reset()
    return app, container, clock, fragment_cache, bean_cache


class TestGrandTour:
    def test_all_public_pages_serve(self, portal):
        app, *_ = portal
        public_views = [v for v in app.model.site_views
                        if not v.requires_login]
        browser = Browser(app)
        for view in public_views:
            for url in page_url_pool(app, view.name):
                response = browser.get(url)
                assert response.status == 200, url
                assert "<html>" in response.body

    def test_traffic_hits_the_caches(self, portal):
        app, container, _clock, fragment_cache, bean_cache = portal
        view = next(v for v in app.model.site_views if not v.requires_login)
        traffic = TrafficGenerator(app, page_url_pool(app, view.name),
                                   seed=42)
        report = traffic.run(requests=60, sessions=3)
        assert report.errors == 0
        assert bean_cache.stats.hits > 0
        assert fragment_cache.stats.hits > 0
        # the bean cache must collapse repeated queries well below 1/page
        assert report.queries_executed < report.requests

    def test_business_tier_lives_in_the_container(self, portal):
        app, container, clock, *_ = portal
        Browser(app).get("/")
        assert container.invocations > 0
        assert container.resident_instances() >= 1
        clock.advance(120)
        container.sweep()
        assert container.resident_instances() == 0

    def test_cm_write_invalidates_and_refreshes(self, portal):
        app, _container, _clock, _fragment_cache, bean_cache = portal
        cm_view = next(v for v in app.model.site_views if v.requires_login)
        editor = Browser(app)
        editor.get(app.operation_url(cm_view.name, "Login", {
            "username": "editor", "password": "acer",
        }))
        create = next(o for o in cm_view.operations if o.kind == "create")
        table = app.project.mapping.table_for(create.entity)

        # warm a cached page that lists the entity, then write
        home = editor.get(f"/{cm_view.id}/{cm_view.home_page_id}")
        assert home.status == 200
        invalidations_before = bean_cache.stats.invalidations
        before = app.database.row_count(table)
        editor.get(app.operation_url(cm_view.name, create.name,
                                     {"name": "Tour entry"}))
        assert app.database.row_count(table) == before + 1
        assert bean_cache.stats.invalidations > invalidations_before

    def test_menus_everywhere_pages_are_landmark_free(self, portal):
        app, *_ = portal
        # the acer generator flags no landmarks: no menu markup anywhere
        browser = Browser(app)
        browser.get("/")
        assert '<ul class="site-menu">' not in browser.body
