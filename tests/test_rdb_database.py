"""Integration tests for the Database facade: DDL, DML, constraints,
query execution (joins, grouping, ordering), pooled connections, and
property-based invariants on storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DatabaseError,
    IntegrityError,
    QueryError,
    SchemaError,
)
from repro.rdb import Connection, ConnectionPool, Database


@pytest.fixture
def library() -> Database:
    """The ACM-DL-flavoured schema from the paper's Figure 1."""
    db = Database()
    db.execute(
        "CREATE TABLE volume ("
        " oid INTEGER NOT NULL AUTOINCREMENT, number INTEGER NOT NULL,"
        " year INTEGER, title VARCHAR(80), PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE issue ("
        " oid INTEGER NOT NULL AUTOINCREMENT, volume_oid INTEGER NOT NULL,"
        " number INTEGER, PRIMARY KEY (oid),"
        " FOREIGN KEY (volume_oid) REFERENCES volume (oid) ON DELETE CASCADE)"
    )
    db.execute(
        "CREATE TABLE paper ("
        " oid INTEGER NOT NULL AUTOINCREMENT, issue_oid INTEGER,"
        " title VARCHAR(200) NOT NULL, pages INTEGER, PRIMARY KEY (oid),"
        " FOREIGN KEY (issue_oid) REFERENCES issue (oid) ON DELETE SET NULL)"
    )
    for number in (1, 2, 3):
        db.insert_row(
            "volume", {"number": number, "year": 2000 + number,
                       "title": f"TODS Volume {number}"}
        )
    for oid, (vol, num) in enumerate([(1, 1), (1, 2), (2, 1), (3, 1)], start=1):
        db.insert_row("issue", {"volume_oid": vol, "number": num})
    titles = [
        (1, "Query Optimization"), (1, "Views Revisited"),
        (2, "Index Structures"), (3, "Cache Coherence"), (4, "Web Models"),
    ]
    for issue_oid, title in titles:
        db.insert_row("paper", {"issue_oid": issue_oid, "title": title, "pages": 20})
    db.stats.reset()
    return db


class TestDdl:
    def test_duplicate_table_rejected(self, library):
        with pytest.raises(SchemaError, match="already exists"):
            library.execute("CREATE TABLE volume (oid INTEGER)")

    def test_fk_to_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(SchemaError, match="unknown table"):
            db.execute(
                "CREATE TABLE a (x INTEGER, FOREIGN KEY (x) REFERENCES nope (y))"
            )

    def test_drop_referenced_table_rejected(self, library):
        with pytest.raises(SchemaError, match="referenced by"):
            library.drop_table("volume")

    def test_drop_if_exists(self, library):
        library.execute("DROP TABLE IF EXISTS ghost")  # no error
        with pytest.raises(SchemaError):
            library.execute("DROP TABLE ghost")

    def test_create_index_then_unique_violation(self, library):
        library.execute("CREATE INDEX ix_paper_issue ON paper (issue_oid)")
        with pytest.raises(IntegrityError, match="duplicate values"):
            library.execute("CREATE UNIQUE INDEX ux_paper_issue ON paper (issue_oid)")

    def test_self_referencing_fk(self):
        db = Database()
        db.execute(
            "CREATE TABLE area (oid INTEGER NOT NULL, parent_oid INTEGER,"
            " PRIMARY KEY (oid),"
            " FOREIGN KEY (parent_oid) REFERENCES area (oid))"
        )
        db.insert_row("area", {"oid": 1, "parent_oid": None})
        db.insert_row("area", {"oid": 2, "parent_oid": 1})
        with pytest.raises(IntegrityError):
            db.insert_row("area", {"oid": 3, "parent_oid": 99})


class TestConstraints:
    def test_auto_increment_assigns_sequential_ids(self, library):
        row = library.insert_row("volume", {"number": 9, "title": "V9"})
        assert row["oid"] == 4

    def test_auto_increment_respects_explicit_ids(self, library):
        library.insert_row("volume", {"oid": 100, "number": 9, "title": "V"})
        row = library.insert_row("volume", {"number": 10, "title": "W"})
        assert row["oid"] == 101

    def test_primary_key_uniqueness(self, library):
        with pytest.raises(IntegrityError, match="primary key"):
            library.insert_row("volume", {"oid": 1, "number": 7, "title": "dup"})

    def test_not_null_enforced(self, library):
        with pytest.raises(IntegrityError, match="NOT NULL"):
            library.insert_row("volume", {"title": None, "number": None})

    def test_unknown_column_rejected(self, library):
        with pytest.raises(SchemaError, match="no column"):
            library.insert_row("volume", {"nope": 1})

    def test_fk_insert_enforced(self, library):
        with pytest.raises(IntegrityError, match="foreign key violation"):
            library.insert_row("issue", {"volume_oid": 999, "number": 1})

    def test_fk_null_allowed(self, library):
        row = library.insert_row("paper", {"issue_oid": None, "title": "Orphan"})
        assert row["issue_oid"] is None

    def test_delete_cascade(self, library):
        library.execute("DELETE FROM volume WHERE oid = 1")
        remaining = library.query("SELECT volume_oid FROM issue")
        assert all(r["volume_oid"] != 1 for r in remaining)
        # papers of the cascaded issues had SET NULL
        orphans = library.query(
            "SELECT COUNT(*) AS n FROM paper WHERE issue_oid IS NULL"
        ).scalar()
        assert orphans == 3  # papers 1,2 (issue 1) and 3 (issue 2)

    def test_delete_restrict(self):
        db = Database()
        db.execute("CREATE TABLE a (oid INTEGER NOT NULL, PRIMARY KEY (oid))")
        db.execute(
            "CREATE TABLE b (oid INTEGER NOT NULL, a_oid INTEGER,"
            " PRIMARY KEY (oid), FOREIGN KEY (a_oid) REFERENCES a (oid))"
        )
        db.insert_row("a", {"oid": 1})
        db.insert_row("b", {"oid": 1, "a_oid": 1})
        with pytest.raises(IntegrityError, match="referenced by"):
            db.execute("DELETE FROM a WHERE oid = 1")

    def test_update_fk_enforced(self, library):
        with pytest.raises(IntegrityError, match="foreign key violation"):
            library.execute("UPDATE issue SET volume_oid = 999 WHERE oid = 1")
        # failed update must roll back the row
        assert library.query(
            "SELECT volume_oid FROM issue WHERE oid = 1"
        ).scalar() == 1

    def test_update_referenced_key_restricted(self, library):
        with pytest.raises(IntegrityError, match="still referenced"):
            library.execute("UPDATE volume SET oid = 50 WHERE oid = 1")

    def test_unique_constraint(self):
        db = Database()
        db.execute(
            "CREATE TABLE u (oid INTEGER NOT NULL, email VARCHAR(50),"
            " PRIMARY KEY (oid), UNIQUE (email))"
        )
        db.insert_row("u", {"oid": 1, "email": "a@acer.com"})
        with pytest.raises(IntegrityError, match="unique constraint"):
            db.insert_row("u", {"oid": 2, "email": "a@acer.com"})
        # NULLs do not collide
        db.insert_row("u", {"oid": 3, "email": None})
        db.insert_row("u", {"oid": 4, "email": None})


class TestQueries:
    def test_where_with_named_param(self, library):
        rows = library.query(
            "SELECT title FROM volume WHERE year > :y", {"y": 2001}
        )
        assert len(rows) == 2

    def test_where_with_positional_param_via_connection(self, library):
        connection = Connection(library)
        cursor = connection.execute(
            "SELECT title FROM volume WHERE oid = ?", [2]
        )
        assert cursor.fetchone()["title"] == "TODS Volume 2"

    def test_inner_join(self, library):
        rows = library.query(
            "SELECT v.title, i.number FROM volume v"
            " JOIN issue i ON i.volume_oid = v.oid ORDER BY v.oid, i.number"
        )
        assert rows.as_tuples()[0] == ("TODS Volume 1", 1)
        assert len(rows) == 4

    def test_left_join_pads_nulls(self, library):
        library.insert_row("volume", {"number": 9, "title": "Empty Volume"})
        rows = library.query(
            "SELECT v.title, i.oid AS issue_oid FROM volume v"
            " LEFT JOIN issue i ON i.volume_oid = v.oid"
            " WHERE v.title = 'Empty Volume'"
        )
        assert rows.as_tuples() == [("Empty Volume", None)]

    def test_three_way_join(self, library):
        rows = library.query(
            "SELECT v.number, i.number, p.title FROM volume v"
            " JOIN issue i ON i.volume_oid = v.oid"
            " JOIN paper p ON p.issue_oid = i.oid"
            " ORDER BY p.title"
        )
        assert len(rows) == 5

    def test_group_by_with_having(self, library):
        rows = library.query(
            "SELECT i.oid AS issue, COUNT(*) AS papers FROM issue i"
            " JOIN paper p ON p.issue_oid = i.oid"
            " GROUP BY i.oid HAVING COUNT(*) > 1"
        )
        assert rows.as_tuples() == [(1, 2)]

    def test_aggregates_over_all_rows(self, library):
        row = library.query(
            "SELECT COUNT(*) AS n, SUM(pages) AS total, AVG(pages) AS mean,"
            " MIN(pages) AS low, MAX(pages) AS high FROM paper"
        ).first()
        assert row == {"n": 5, "total": 100, "mean": 20.0, "low": 20, "high": 20}

    def test_aggregate_on_empty_table_yields_row(self, library):
        library.execute("DELETE FROM paper")
        row = library.query(
            "SELECT COUNT(*) AS n, SUM(pages) AS total FROM paper"
        ).first()
        assert row == {"n": 0, "total": None}

    def test_count_distinct(self, library):
        n = library.query(
            "SELECT COUNT(DISTINCT volume_oid) AS n FROM issue"
        ).scalar()
        assert n == 3

    def test_order_by_desc_and_nulls_first(self, library):
        library.insert_row("paper", {"issue_oid": None, "title": "A", "pages": None})
        rows = library.query("SELECT title FROM paper ORDER BY pages, title")
        assert rows.rows[0]["title"] == "A"  # NULL pages sorts first

    def test_order_by_alias(self, library):
        rows = library.query(
            "SELECT title, pages * 2 AS doubled FROM paper ORDER BY doubled DESC, title"
        )
        assert rows.rows[0]["doubled"] == 40

    def test_limit_offset(self, library):
        rows = library.query(
            "SELECT oid FROM paper ORDER BY oid LIMIT 2 OFFSET 1"
        )
        assert [r["oid"] for r in rows] == [2, 3]

    def test_distinct(self, library):
        rows = library.query("SELECT DISTINCT pages FROM paper")
        assert rows.as_tuples() == [(20,)]

    def test_star_expansion_with_join_qualifies_collisions(self, library):
        rows = library.query(
            "SELECT * FROM volume v JOIN issue i ON i.volume_oid = v.oid LIMIT 1"
        )
        # both tables have oid and number; later ones must be disambiguated
        assert "oid" in rows.columns
        assert any(c.startswith("i.") for c in rows.columns)

    def test_like_and_functions_in_where(self, library):
        rows = library.query(
            "SELECT title FROM paper WHERE UPPER(title) LIKE '%WEB%'"
        )
        assert rows.as_tuples() == [("Web Models",)]

    def test_ambiguous_column_rejected(self, library):
        with pytest.raises(QueryError, match="ambiguous"):
            library.query(
                "SELECT number FROM volume v JOIN issue i ON i.volume_oid = v.oid"
            )

    def test_unknown_table_rejected(self, library):
        with pytest.raises(QueryError, match="unknown table"):
            library.query("SELECT * FROM ghost")

    def test_unknown_column_rejected(self, library):
        with pytest.raises(QueryError, match="unknown column"):
            library.query("SELECT ghost FROM volume")

    def test_index_scan_equals_full_scan_results(self, library):
        library.execute("CREATE INDEX ix_issue_volume ON issue (volume_oid)")
        indexed = library.query(
            "SELECT oid FROM issue WHERE volume_oid = 1 ORDER BY oid"
        )
        assert [r["oid"] for r in indexed] == [1, 2]

    def test_plan_cache_reused_and_invalidated(self, library):
        sql = "SELECT COUNT(*) AS n FROM paper"
        library.query(sql)
        assert sql in library._plan_cache
        # DDL on unrelated tables leaves the plan warm (scoped
        # invalidation) ...
        library.execute("CREATE TABLE extra (oid INTEGER)")
        assert sql in library._plan_cache
        library.execute("CREATE INDEX ix_extra_oid ON extra (oid)")
        assert sql in library._plan_cache
        # ... while DDL/ANALYZE touching the plan's own table evicts it.
        library.execute("CREATE INDEX ix_paper_pages ON paper (pages)")
        assert sql not in library._plan_cache
        library.query(sql)
        assert sql in library._plan_cache
        library.execute("ANALYZE paper")
        assert sql not in library._plan_cache

    def test_prepare_rejects_non_select(self, library):
        with pytest.raises(QueryError):
            library.prepare("DELETE FROM paper")

    def test_prepared_plan_reexecution(self, library):
        plan = library.prepare("SELECT COUNT(*) AS n FROM paper")
        before = plan.execute({}).scalar()
        library.insert_row("paper", {"title": "New", "issue_oid": 1})
        after = plan.execute({}).scalar()
        assert (before, after) == (5, 6)

    def test_non_equi_join_nested_loop(self, library):
        rows = library.query(
            "SELECT v.number, i.number FROM volume v"
            " JOIN issue i ON i.volume_oid < v.oid"
        )
        # issues with volume_oid < v.oid: purely nested-loop territory
        assert len(rows) > 0

    def test_update_with_expression(self, library):
        library.execute("UPDATE paper SET pages = pages + 5 WHERE issue_oid = 1")
        pages = library.query(
            "SELECT pages FROM paper WHERE issue_oid = 1"
        ).as_tuples()
        assert pages == [(25,), (25,)]

    def test_stats_counters(self, library):
        library.query("SELECT * FROM volume")
        library.execute("INSERT INTO paper (title) VALUES ('X')")
        library.execute("UPDATE paper SET pages = 1 WHERE title = 'X'")
        library.execute("DELETE FROM paper WHERE title = 'X'")
        assert library.stats.selects == 1
        assert library.stats.inserts == 1
        assert library.stats.updates == 1
        assert library.stats.deletes == 1


class TestConnections:
    def test_cursor_fetch_interface(self, library):
        connection = Connection(library)
        cursor = connection.execute("SELECT oid FROM volume ORDER BY oid")
        assert cursor.fetchone() == {"oid": 1}
        assert cursor.fetchmany(1) == [{"oid": 2}]
        assert cursor.fetchall() == [{"oid": 3}]
        assert cursor.fetchone() is None

    def test_cursor_description(self, library):
        cursor = Connection(library).execute("SELECT oid, title FROM volume")
        assert [d[0] for d in cursor.description] == ["oid", "title"]

    def test_lastrowid(self, library):
        cursor = Connection(library).execute(
            "INSERT INTO volume (number, title) VALUES (7, 'New')"
        )
        assert cursor.lastrowid == 4

    def test_closed_connection_rejected(self, library):
        connection = Connection(library)
        connection.close()
        with pytest.raises(DatabaseError, match="closed"):
            connection.cursor()

    def test_pool_acquire_release(self, library):
        pool = ConnectionPool(library, size=2)
        first = pool.acquire()
        second = pool.acquire()
        assert pool.in_use == 2
        # fail-fast exhaustion (the E7 experiments watch this signal)
        with pytest.raises(DatabaseError, match="exhausted"):
            pool.acquire(block=False)
        # a bounded blocking acquire times out when nothing is released
        with pytest.raises(DatabaseError, match="exhausted"):
            pool.acquire(timeout=0.01)
        assert pool.wait_count == 1
        assert pool.exhausted_failures == 2
        first.close()  # returns to pool
        assert pool.in_use == 1
        third = pool.acquire()
        assert third is first
        second.close()
        third.close()
        assert pool.peak_in_use == 2

    def test_pool_release_is_idempotent(self, library):
        pool = ConnectionPool(library, size=1)
        connection = pool.acquire()
        connection.close()
        connection.close()  # double close: a no-op, not an error
        assert pool.in_use == 0
        assert pool.acquire(block=False) is connection

    def test_stale_cursor_fails_loudly(self, library):
        pool = ConnectionPool(library, size=1)
        connection = pool.acquire()
        cursor = connection.cursor()
        cursor.execute("SELECT * FROM volume")
        connection.close()
        with pytest.raises(DatabaseError, match="stale"):
            cursor.execute("SELECT * FROM volume")
        with pytest.raises(DatabaseError, match="idle in its pool"):
            connection.cursor()
        # re-acquiring grants a fresh lease with working cursors
        again = pool.acquire()
        assert again.execute("SELECT * FROM volume").rowcount == 3
        again.close()

    def test_pool_rejects_foreign_release(self, library):
        pool = ConnectionPool(library, size=1)
        stranger = Connection(library)
        with pytest.raises(DatabaseError, match="not acquired"):
            pool.release(stranger)

    def test_pool_size_validation(self, library):
        with pytest.raises(DatabaseError):
            ConnectionPool(library, size=0)

    def test_connection_context_manager(self, library):
        pool = ConnectionPool(library, size=1)
        with pool.acquire() as connection:
            connection.execute("SELECT * FROM volume")
        assert pool.in_use == 0


class TestStorageProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.text(max_size=8)),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pk_uniqueness_invariant(self, pairs):
        db = Database()
        db.execute(
            "CREATE TABLE t (k INTEGER NOT NULL, v VARCHAR(20), PRIMARY KEY (k))"
        )
        inserted: set[int] = set()
        for key, value in pairs:
            if key in inserted:
                with pytest.raises(IntegrityError):
                    db.insert_row("t", {"k": key, "v": value})
            else:
                db.insert_row("t", {"k": key, "v": value})
                inserted.add(key)
        assert db.row_count("t") == len(inserted)
        keys = {r["k"] for r in db.query("SELECT k FROM t")}
        assert keys == inserted

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_order_by_matches_sorted(self, values):
        db = Database()
        db.execute("CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
                   " v INTEGER, PRIMARY KEY (oid))")
        for value in values:
            db.insert_row("t", {"v": value})
        rows = db.query("SELECT v FROM t ORDER BY v")
        assert [r["v"] for r in rows] == sorted(values)
        rows = db.query("SELECT v FROM t ORDER BY v DESC")
        assert [r["v"] for r in rows] == sorted(values, reverse=True)

    @given(st.lists(st.integers(0, 10), min_size=0, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_group_count_totals(self, values):
        db = Database()
        db.execute("CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
                   " bucket INTEGER, PRIMARY KEY (oid))")
        for value in values:
            db.insert_row("t", {"bucket": value})
        rows = db.query("SELECT bucket, COUNT(*) AS n FROM t GROUP BY bucket")
        assert sum(r["n"] for r in rows) == len(values)
        assert len(rows) == len(set(values))

    @given(
        st.lists(st.integers(1, 5), min_size=0, max_size=20),
        st.lists(st.integers(1, 5), min_size=0, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_hash_join_matches_cartesian_filter(self, lefts, rights):
        db = Database()
        db.execute("CREATE TABLE l (oid INTEGER NOT NULL AUTOINCREMENT,"
                   " k INTEGER, PRIMARY KEY (oid))")
        db.execute("CREATE TABLE r (oid INTEGER NOT NULL AUTOINCREMENT,"
                   " k INTEGER, PRIMARY KEY (oid))")
        for k in lefts:
            db.insert_row("l", {"k": k})
        for k in rights:
            db.insert_row("r", {"k": k})
        joined = db.query(
            "SELECT l.oid AS lo, r.oid AS ro FROM l JOIN r ON l.k = r.k"
        )
        expected = sum(
            1 for lk in lefts for rk in rights if lk == rk
        )
        assert len(joined) == expected
