"""Cost-based planner coverage: ANALYZE statistics, access-path choice
(exact / range / IN-list index scans), greedy join reordering, pushdown,
EXPLAIN annotations, and a property-based oracle checking that the
optimized plan always returns exactly what the naive full-scan plan
returns."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdb import Database
from repro.rdb.executor import HashJoinOp, ScanOp
from repro.rdb.planner import SelectPlan
from repro.rdb.sqlparser import parse_select


def _library() -> Database:
    """authors (small) / books (larger, skewed) with secondary indexes
    the way the er mapping lays out FK columns."""
    db = Database()
    db.execute(
        "CREATE TABLE author (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(40) NOT NULL, PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " author_oid INTEGER, year INTEGER, price FLOAT,"
        " title VARCHAR(80), PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_author ON book (author_oid)")
    db.execute("CREATE INDEX ix_book_year ON book (year)")
    for i in range(4):
        db.insert_row("author", {"name": f"author-{i}"})
    for i in range(40):
        db.insert_row("book", {
            "author_oid": (i % 4) + 1,
            "year": 1990 + (i % 20),
            "price": None if i % 10 == 9 else 5.0 + i,
            "title": f"book-{i:02d}",
        })
    db.stats.reset()
    return db


@pytest.fixture
def library() -> Database:
    return _library()


class TestAnalyze:
    def test_analyze_populates_statistics(self, library):
        library.execute("ANALYZE book")
        stats = library.statistics_for("book")
        assert stats.row_count == 40
        year = stats.column("year")
        assert year.distinct == 20
        assert (year.minimum, year.maximum) == (1990, 2009)
        price = stats.column("price")
        assert price.null_count == 4

    def test_analyze_all_tables(self, library):
        library.analyze()
        assert library.statistics_for("author") is not None
        assert library.statistics_for("book") is not None
        assert library.stats.analyzes == 1

    def test_analyze_unknown_table_fails(self, library):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            library.execute("ANALYZE nothere")

    def test_analyze_invalidates_only_its_table(self, library):
        library.query("SELECT title FROM book WHERE oid = 1")
        library.query("SELECT name FROM author WHERE oid = 1")
        assert library.cached_plan_count() == 2
        library.execute("ANALYZE book")
        assert library.cached_plan_count() == 1


class TestAccessPaths:
    def _root_scan(self, library, sql) -> ScanOp:
        plan = SelectPlan(parse_select(sql), library.tables)
        assert isinstance(plan.root, ScanOp)
        return plan.root

    def test_equality_uses_index(self, library):
        scan = self._root_scan(
            library, "SELECT title FROM book WHERE author_oid = 2"
        )
        assert scan.access.kind == "eq"
        assert scan.eq_columns == ("author_oid",)

    def test_between_uses_range_scan(self, library):
        scan = self._root_scan(
            library,
            "SELECT title FROM book WHERE year BETWEEN 1995 AND 1997",
        )
        assert scan.access.kind == "range"

    def test_inequalities_use_range_scan(self, library):
        scan = self._root_scan(
            library, "SELECT title FROM book WHERE year >= 2005"
        )
        assert scan.access.kind == "range"

    def test_in_list_uses_index_probes(self, library):
        scan = self._root_scan(
            library, "SELECT title FROM book WHERE author_oid IN (1, 3)"
        )
        assert scan.access.kind == "in"

    def test_unindexed_column_scans(self, library):
        scan = self._root_scan(
            library, "SELECT title FROM book WHERE price > 20"
        )
        assert scan.access.kind == "seq"

    @pytest.mark.parametrize("sql", [
        "SELECT title FROM book WHERE author_oid = 2",
        "SELECT title FROM book WHERE year BETWEEN 1995 AND 1997",
        "SELECT title FROM book WHERE year >= 2005",
        "SELECT title FROM book WHERE author_oid IN (1, 3)",
        "SELECT title FROM book WHERE year < 1993 OR author_oid = 4",
    ])
    def test_index_paths_match_full_scan(self, library, sql):
        optimized = library.prepare(sql).execute({})
        naive = library.prepare(sql, optimize=False).execute({})
        assert Counter(optimized.as_tuples()) == Counter(naive.as_tuples())

    def test_null_parameter_matches_nothing(self, library):
        rows = library.query(
            "SELECT title FROM book WHERE author_oid = :a", {"a": None}
        )
        assert len(rows) == 0

    def test_range_scan_skips_nulls(self, library):
        # price has NULLs and no index; year has an index: both agree
        # with three-valued logic (NULL never satisfies a range).
        rows = library.query("SELECT COUNT(*) AS n FROM book WHERE year > 0")
        assert rows.scalar() == 40


class TestJoinReorderAndPushdown:
    def test_filtered_table_becomes_base(self, library):
        library.analyze()
        text = library.explain(
            "SELECT b.title FROM author a JOIN book b ON b.author_oid = a.oid"
            " WHERE b.year = 1999"
        )
        lines = text.splitlines()
        # The filtered book binding is scanned first (innermost line).
        assert "book AS b" in lines[-1]
        assert "HashJoin" in lines[0]

    def test_reordered_join_matches_declared_order(self, library):
        sql = (
            "SELECT a.name, b.title FROM author a"
            " JOIN book b ON b.author_oid = a.oid WHERE b.year < 1995"
        )
        optimized = library.prepare(sql).execute({})
        naive = library.prepare(sql, optimize=False).execute({})
        assert Counter(optimized.as_tuples()) == Counter(naive.as_tuples())

    def test_left_join_not_reordered(self, library):
        sql = (
            "SELECT a.name, b.title FROM author a"
            " LEFT JOIN book b ON b.author_oid = a.oid AND b.year = 1990"
        )
        plan = SelectPlan(parse_select(sql), library.tables)
        optimized = plan.execute({})
        naive = library.prepare(sql, optimize=False).execute({})
        assert Counter(optimized.as_tuples()) == Counter(naive.as_tuples())

    def test_explain_annotates_rows_cost_and_columns(self, library):
        library.analyze()
        text = library.explain(
            "SELECT title FROM book WHERE author_oid = 2"
        )
        assert "rows~" in text and "cost~" in text
        assert "cols=" in text
        # projection pushdown: only the referenced columns are needed
        assert "cols=author_oid,title" in text

    def test_plan_records_tables_read(self, library):
        plan = SelectPlan(parse_select(
            "SELECT b.title FROM author a JOIN book b ON b.author_oid = a.oid"
        ), library.tables)
        assert plan.tables == frozenset({"author", "book"})


class TestStatisticsImproveEstimates:
    def test_estimates_tighten_after_analyze(self, library):
        sql = "SELECT title FROM book WHERE year = 1990"
        before = SelectPlan(parse_select(sql), library.tables).root.est_rows
        library.analyze()
        after = SelectPlan(parse_select(sql), library.tables).root.est_rows
        # 40 rows, 20 distinct years → 2 expected; the default guess is
        # 10% of the table (4).
        assert after == pytest.approx(2.0)
        assert before != after


# -- property-based oracle ----------------------------------------------------

_PREDICATES = [
    "b.year = 1999",
    "b.year BETWEEN 1993 AND 2001",
    "b.year >= 2004",
    "b.year < 1992",
    "b.author_oid = 2",
    "b.author_oid IN (1, 4)",
    "b.price > 25",
    "b.price IS NULL",
    "b.title LIKE 'book-1%'",
    "b.year = 1991 OR b.author_oid = 3",
    "NOT (b.author_oid = 1)",
    "b.oid IN (3, 5, 7, 9)",
]

_JOIN_PREDICATES = [
    "a.name = 'author-2'",
    "a.oid > 1",
    "a.name LIKE 'author%'",
]


@st.composite
def _select_sql(draw) -> str:
    join = draw(st.booleans())
    menu = _PREDICATES + (_JOIN_PREDICATES if join else [])
    conjuncts = draw(st.lists(st.sampled_from(menu), max_size=3))
    if join:
        sql = ("SELECT a.name, b.title, b.year FROM author a"
               " JOIN book b ON b.author_oid = a.oid")
    else:
        sql = "SELECT b.title, b.year, b.price FROM book b"
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    if draw(st.booleans()):
        sql += " ORDER BY b.oid"
    return sql


class TestOptimizerOracle:
    _db = None
    _analyzed = None

    @classmethod
    def _databases(cls):
        if cls._db is None:
            cls._db = _library()
            cls._analyzed = _library()
            cls._analyzed.analyze()
        return cls._db, cls._analyzed

    @given(sql=_select_sql())
    @settings(max_examples=80, deadline=None)
    def test_optimized_equals_full_scan(self, sql):
        plain, analyzed = self._databases()
        for db in (plain, analyzed):
            optimized = db.prepare(sql).execute({})
            naive = db.prepare(sql, optimize=False).execute({})
            assert optimized.columns == naive.columns
            if " ORDER BY " in sql:
                assert optimized.as_tuples() == naive.as_tuples()
            else:
                assert Counter(optimized.as_tuples()) == Counter(
                    naive.as_tuples()
                )
