"""Tests for the service-tier batch loader: the AST rewrite itself, the
grouped IN-list fetch, hierarchical level batching (O(levels) queries
instead of O(rows)), list-valued unit inputs, and the descriptor flag
that switches batching off."""

import pytest

from repro.rdb.expr import InList, Param
from repro.services import GenericUnitService
from repro.services.batching import (
    MAX_BATCH_SIZE,
    PARENT_COLUMN,
    batch_params,
    batched_select,
    bucket_size,
    load_grouped,
    query_list_param,
    select_params,
)
from repro.rdb.sqlparser import parse_select


def unit_of(app, page_name, unit_name, view="public"):
    return app.model.find_site_view(view).find_page(page_name).unit(unit_name)


class TestRewrite:
    def test_eq_param_becomes_in_list(self):
        select = batched_select(
            "SELECT oid, title FROM paper WHERE issue_to_paper_oid = :parent", "parent", 4
        )
        assert select is not None
        assert isinstance(select.where, InList)
        assert select.where.options == tuple(
            Param(f"parent__{i}") for i in range(4)
        )
        assert select.items[-1].alias == PARENT_COLUMN

    def test_other_conjuncts_kept(self):
        select = batched_select(
            "SELECT oid FROM paper WHERE pages > 10 AND issue_to_paper_oid = :parent",
            "parent", 2,
        )
        assert select is not None
        conjunct_types = {type(select.where.left), type(select.where.right)}
        assert InList in conjunct_types

    def test_order_by_preserved(self):
        select = batched_select(
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent ORDER BY title",
            "parent", 2,
        )
        assert select is not None and select.order_by

    @pytest.mark.parametrize("sql", [
        "SELECT DISTINCT oid FROM paper WHERE issue_to_paper_oid = :parent",
        "SELECT COUNT(*) AS n FROM paper WHERE issue_to_paper_oid = :parent",
        "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent GROUP BY oid",
        "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent LIMIT 3",
        "SELECT oid FROM paper WHERE issue_to_paper_oid > :parent",
        "SELECT oid FROM paper WHERE oid = 1",
        # :parent used twice — substituting one occurrence would change
        # the other's meaning.
        "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent AND oid = :parent",
    ])
    def test_unbatchable_shapes_refused(self, sql):
        assert batched_select(sql, "parent", 2) is None

    def test_select_params_collects_all(self):
        select = parse_select(
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :a AND pages > :b"
        )
        assert select_params(select) == {"a", "b"}


class TestBuckets:
    def test_power_of_two_sizes(self):
        assert [bucket_size(n) for n in (1, 2, 3, 5, 9, 64)] == \
            [1, 2, 4, 8, 16, 64]

    def test_capped_at_max(self):
        assert bucket_size(1000) == MAX_BATCH_SIZE

    def test_padding_repeats_last_value(self):
        params = batch_params("parent", [7, 8, 9], 4)
        assert params == {"parent__0": 7, "parent__1": 8,
                          "parent__2": 9, "parent__3": 9}


class TestLoadGrouped:
    def test_one_query_groups_by_parent(self, acm_app, acm_oids):
        ctx = acm_app.ctx
        grouped = load_grouped(
            ctx,
            "SELECT oid, title, issue_to_paper_oid FROM paper"
            " WHERE issue_to_paper_oid = :parent ORDER BY title",
            "parent",
            acm_oids["issues"],
        )
        assert ctx.stats.batched_queries == 1
        assert set(grouped) == set(acm_oids["issues"])
        first_issue = grouped[acm_oids["issues"][0]]
        assert [r["title"] for r in first_issue] == \
            ["Indexing the Web", "Query Optimization Revisited"]

    def test_parents_without_rows_absent(self, acm_app, acm_oids):
        grouped = load_grouped(
            acm_app.ctx,
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent",
            "parent",
            [99999],
        )
        assert grouped == {}

    def test_none_and_duplicate_parents_ignored(self, acm_app, acm_oids):
        issue = acm_oids["issues"][0]
        grouped = load_grouped(
            acm_app.ctx,
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent",
            "parent",
            [issue, None, issue],
        )
        assert len(grouped[issue]) == 2

    def test_unbatchable_query_returns_none(self, acm_app, acm_oids):
        grouped = load_grouped(
            acm_app.ctx,
            "SELECT DISTINCT oid FROM paper WHERE issue_to_paper_oid = :parent",
            "parent",
            acm_oids["issues"],
        )
        assert grouped is None


class TestHierarchicalBatching:
    def test_one_query_per_level(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Issues&Papers")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id),
            {"volume_to_issue": acm_oids["volumes"][0]},
        )
        # root query + one batched query for the single Paper level
        assert acm_app.ctx.stats.queries_executed == 2
        assert acm_app.ctx.stats.batched_queries == 1
        assert len(bean.rows) == 2
        papers = [child["title"] for row in bean.rows
                  for child in row["_children"]]
        assert "Query Optimization Revisited" in papers

    def test_batched_flag_off_keeps_per_row_queries(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Issues&Papers")
        descriptor = acm_app.registry.unit(unit.id)
        descriptor.batched = False
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            descriptor, {"volume_to_issue": acm_oids["volumes"][0]}
        )
        # root + one query per issue row: the seed's N+1 shape
        assert acm_app.ctx.stats.queries_executed == 1 + len(bean.rows)
        assert acm_app.ctx.stats.batched_queries == 0

    def test_batched_and_per_row_beans_identical(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Issues&Papers")
        descriptor = acm_app.registry.unit(unit.id)
        service = GenericUnitService(acm_app.ctx)
        inputs = {"volume_to_issue": acm_oids["volumes"][0]}
        batched = service.compute(descriptor, inputs)
        descriptor.batched = False
        per_row = service.compute(descriptor, inputs)
        assert batched.rows == per_row.rows


class TestListValuedInputs:
    def test_index_unit_accepts_oid_list(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volumes", "All volumes")
        descriptor = acm_app.registry.unit(unit.id)
        rows = query_list_param(
            acm_app.ctx,
            "SELECT oid, title FROM paper WHERE issue_to_paper_oid = :parent",
            {"parent": acm_oids["issues"][:2]},
        )
        assert rows is not None and len(rows) == 3
        assert acm_app.ctx.stats.batched_queries == 1
        assert descriptor is not None

    def test_scalar_params_fall_through(self, acm_app, acm_oids):
        rows = query_list_param(
            acm_app.ctx,
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent",
            {"parent": acm_oids["issues"][0]},
        )
        assert rows is None

    def test_empty_list_returns_no_rows(self, acm_app):
        rows = query_list_param(
            acm_app.ctx,
            "SELECT oid FROM paper WHERE issue_to_paper_oid = :parent",
            {"parent": []},
        )
        assert rows == []

    def test_unbatchable_falls_back_to_per_value_loop(self, acm_app, acm_oids):
        rows = query_list_param(
            acm_app.ctx,
            "SELECT DISTINCT oid FROM paper WHERE issue_to_paper_oid = :parent",
            {"parent": acm_oids["issues"][:2]},
        )
        assert rows is not None and len(rows) == 3
        assert acm_app.ctx.stats.batched_queries == 0
        assert acm_app.ctx.stats.queries_executed == 2


class TestDescriptorFlag:
    def test_batched_defaults_true_and_round_trips(self):
        from repro.descriptors import UnitDescriptor

        descriptor = UnitDescriptor("u1", "Papers", "index", batched=False)
        restored = UnitDescriptor.from_xml(descriptor.to_xml())
        assert restored.batched is False
        default = UnitDescriptor.from_xml(
            UnitDescriptor("u2", "Papers", "index").to_xml()
        )
        assert default.batched is True
