"""Tests for the business tier: generic unit/operation/page services
against a seeded application (the descriptors are the generated ones)."""

import pytest

from repro.errors import ServiceError
from repro.mvc.http import Session
from repro.services import (
    GenericOperationService,
    GenericPageService,
    GenericUnitService,
    builtin_service_count,
)
from repro.services.base import coerce_value
from repro.services.plugins import PluginUnit, plugin_registry


def unit_of(app, page_name, unit_name, view="public"):
    return app.model.find_site_view(view).find_page(page_name).unit(unit_name)


def operation_of(app, name, view="admin"):
    site_view = app.model.find_site_view(view)
    return next(o for o in site_view.operations if o.name == name)


class TestServiceInventory:
    def test_paper_counts_eleven_basic_services(self):
        counts = builtin_service_count()
        assert counts["paper_basic_services"] == 11
        assert counts["page_services"] == 1

    def test_extensions_present(self):
        counts = builtin_service_count()
        # hierarchical (Figure 1) + login/logout (session personalization)
        assert counts["unit_services"] == 14


class TestCoercion:
    def test_int(self):
        assert coerce_value("42", "int") == 42
        assert coerce_value(42, "int") == 42

    def test_float_bool_auto(self):
        assert coerce_value("2.5", "float") == 2.5
        assert coerce_value("true", "bool") is True
        assert coerce_value("x", "auto") == "x"
        assert coerce_value(None, "int") is None

    def test_unknown_type(self):
        with pytest.raises(ServiceError):
            coerce_value("x", "decimal")


class TestUnitServices:
    def test_data_unit(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Volume data")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id), {"oid": acm_oids["volumes"][0]}
        )
        assert bean.current["number"] == 27
        assert bean.outputs["oid"] == acm_oids["volumes"][0]

    def test_data_unit_string_oid_coerced(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Volume data")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id), {"oid": str(acm_oids["volumes"][0])}
        )
        assert bean.current is not None

    def test_data_unit_missing_input_gives_empty_bean(self, acm_app):
        unit = unit_of(acm_app, "Volume Page", "Volume data")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(acm_app.registry.unit(unit.id), {})
        assert bean.is_empty
        # and no query was wasted on it
        assert acm_app.ctx.stats.queries_executed == 0

    def test_index_unit_ordering(self, acm_app):
        unit = unit_of(acm_app, "Volumes", "All volumes")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(acm_app.registry.unit(unit.id), {})
        assert [row["year"] for row in bean.rows] == [2002, 2003]
        assert bean.outputs["oid"] == bean.rows[0]["oid"]

    def test_index_selection_overrides_default(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volumes", "All volumes")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id),
            {"selected": acm_oids["volumes"][1]},
        )
        assert bean.outputs["oid"] == acm_oids["volumes"][1]

    def test_like_search(self, acm_app):
        unit = unit_of(acm_app, "SearchResults", "Matching papers")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id), {"keyword": "Web"}
        )
        titles = {row["title"] for row in bean.rows}
        assert titles == {"Indexing the Web", "Data-Intensive Web Models"}

    def test_hierarchical_unit_nests(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Issues&Papers")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id),
            {"volume_to_issue": acm_oids["volumes"][0]},
        )
        assert len(bean.rows) == 2  # two issues of volume 27
        papers = [child["title"] for row in bean.rows
                  for child in row["_children"]]
        assert "Query Optimization Revisited" in papers

    def test_bridge_role_unit(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Paper details", "Authors")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id), {"paper": acm_oids["papers"][2]}
        )
        assert {row["name"] for row in bean.rows} == {"S. Ceri", "P. Fraternali"}

    def test_scroller_blocks(self, acm_app):
        unit = unit_of(acm_app, "Browse papers", "Paper scroller")
        service = GenericUnitService(acm_app.ctx)
        descriptor = acm_app.registry.unit(unit.id)
        first = service.compute(descriptor, {})
        assert first.total == 4
        assert first.block == 1
        assert first.block_count == 2
        assert len(first.rows) == 2
        second = service.compute(descriptor, {"block": 2})
        assert len(second.rows) == 2
        assert first.rows[0]["title"] < second.rows[0]["title"]  # ordered

    def test_scroller_block_clamped(self, acm_app):
        unit = unit_of(acm_app, "Browse papers", "Paper scroller")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(acm_app.registry.unit(unit.id), {"block": 99})
        assert bean.block == 2

    def test_entry_unit_fields_and_prefill(self, acm_app):
        unit = unit_of(acm_app, "Volume Page", "Enter keyword")
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(
            acm_app.registry.unit(unit.id), {"keyword": "MVC"}
        )
        assert bean.fields[0]["name"] == "keyword"
        assert bean.fields[0]["value"] == "MVC"
        assert bean.outputs["keyword"] == "MVC"

    def test_custom_service_override(self, acm_app, acm_oids):
        """§6: the business component can be completely overridden."""
        unit = unit_of(acm_app, "Volume Page", "Volume data")
        descriptor = acm_app.registry.unit(unit.id)
        descriptor.custom_service = "tuned"

        class TunedService:
            calls = 0

            def compute(self, descriptor, inputs, ctx):
                TunedService.calls += 1
                from repro.services import UnitBean

                return UnitBean(descriptor.unit_id, descriptor.name,
                                descriptor.kind,
                                current={"oid": inputs["oid"], "title": "tuned"})

        acm_app.ctx.register_custom_service("tuned", TunedService())
        service = GenericUnitService(acm_app.ctx)
        bean = service.compute(descriptor, {"oid": acm_oids["volumes"][0]})
        assert bean.current["title"] == "tuned"
        assert TunedService.calls == 1

    def test_unknown_custom_service_raises(self, acm_app, acm_oids):
        unit = unit_of(acm_app, "Volume Page", "Volume data")
        descriptor = acm_app.registry.unit(unit.id)
        descriptor.custom_service = "ghost"
        service = GenericUnitService(acm_app.ctx)
        with pytest.raises(ServiceError, match="unknown custom service"):
            service.compute(descriptor, {"oid": acm_oids["volumes"][0]})


class TestOperationServices:
    def test_create_captures_oid_and_invalidates(self, acm_app):
        operation = operation_of(acm_app, "CreatePaper")
        service = GenericOperationService(acm_app.ctx)
        result = service.execute(
            acm_app.registry.operation(operation.id),
            {"title": "New Paper", "pages": "12"},
            Session("s1"),
        )
        assert result.ok
        assert isinstance(result.outputs["oid"], int)
        stored = acm_app.database.query(
            "SELECT pages FROM paper WHERE title = 'New Paper'"
        ).scalar()
        assert stored == 12  # string input coerced by the column type

    def test_create_ko_on_constraint_violation(self, acm_app):
        operation = operation_of(acm_app, "CreatePaper")
        service = GenericOperationService(acm_app.ctx)
        result = service.execute(
            acm_app.registry.operation(operation.id),
            {"title": None, "pages": "1"},  # title NOT NULL
            Session("s1"),
        )
        assert not result.ok
        assert "NOT NULL" in result.message

    def test_delete_ko_when_no_rows(self, acm_app):
        operation = operation_of(acm_app, "DeletePaper")
        service = GenericOperationService(acm_app.ctx)
        result = service.execute(
            acm_app.registry.operation(operation.id), {"oid": 9999},
            Session("s1"),
        )
        assert not result.ok
        assert "matched no rows" in result.message

    def test_delete_ok(self, acm_app, acm_oids):
        operation = operation_of(acm_app, "DeletePaper")
        service = GenericOperationService(acm_app.ctx)
        result = service.execute(
            acm_app.registry.operation(operation.id),
            {"oid": str(acm_oids["papers"][3])},
            Session("s1"),
        )
        assert result.ok
        assert acm_app.database.row_count("paper") == 3

    def test_login_success_binds_session(self, acm_app):
        operation = operation_of(acm_app, "Login")
        service = GenericOperationService(acm_app.ctx)
        session = Session("s1")
        result = service.execute(
            acm_app.registry.operation(operation.id),
            {"username": "admin", "password": "secret"}, session,
        )
        assert result.ok
        assert session.is_authenticated
        assert session.username == "admin"

    def test_login_failure(self, acm_app):
        operation = operation_of(acm_app, "Login")
        service = GenericOperationService(acm_app.ctx)
        session = Session("s1")
        result = service.execute(
            acm_app.registry.operation(operation.id),
            {"username": "admin", "password": "wrong"}, session,
        )
        assert not result.ok
        assert not session.is_authenticated

    def test_logout_clears_session(self, acm_app):
        session = Session("s1")
        session.login(1, "admin")
        operation = operation_of(acm_app, "Logout")
        service = GenericOperationService(acm_app.ctx)
        result = service.execute(
            acm_app.registry.operation(operation.id), {}, session
        )
        assert result.ok
        assert not session.is_authenticated


class TestPageService:
    def test_parameter_propagation_master_detail(self, acm_app, acm_oids):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volume Page")
        volume_data = page.unit("Volume data")
        hierarchy = page.unit("Issues&Papers")
        service = GenericPageService(acm_app.ctx)
        result = service.compute_page(
            acm_app.registry.page(page.id),
            {f"{volume_data.id}.oid": str(acm_oids["volumes"][0])},
        )
        assert result.bean(volume_data.id).current["number"] == 27
        # the transport link fed the hierarchy from the data unit's output
        assert len(result.bean(hierarchy.id).rows) == 2

    def test_units_without_inputs_still_compute(self, acm_app):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volume Page")
        service = GenericPageService(acm_app.ctx)
        result = service.compute_page(acm_app.registry.page(page.id), {})
        volume_data = page.unit("Volume data")
        hierarchy = page.unit("Issues&Papers")
        assert result.bean(volume_data.id).is_empty
        assert result.bean(hierarchy.id).is_empty  # fed by the empty data unit

    def test_bean_named_lookup(self, acm_app):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        service = GenericPageService(acm_app.ctx)
        result = service.compute_page(acm_app.registry.page(page.id), {})
        assert result.bean_named("All volumes").rows
        with pytest.raises(KeyError):
            result.bean_named("Ghost")

    def test_page_stats_counted(self, acm_app):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        service = GenericPageService(acm_app.ctx)
        service.compute_page(acm_app.registry.page(page.id), {})
        assert acm_app.ctx.stats.pages_computed == 1
        assert acm_app.ctx.stats.units_computed == 1


class TestPluginUnits:
    def test_plugin_unit_registration_and_dispatch(self, acm_app, acm_oids):
        """§7: plug-in units provide their own service and tag."""
        from repro.services import UnitBean

        class CounterUnitService:
            kind = "counter"

            def compute(self, descriptor, inputs, ctx):
                total = ctx.query(
                    f"SELECT COUNT(*) AS n FROM {descriptor.entity.lower()}",
                    {},
                ).scalar()
                bean = UnitBean(descriptor.unit_id, descriptor.name, "counter")
                bean.current = {"count": total}
                return bean

        plugin = PluginUnit(
            kind="counter", tag_name="webml:counterUnit",
            service=CounterUnitService(),
        )
        plugin_registry.register(plugin)
        try:
            from repro.descriptors import UnitDescriptor

            descriptor = UnitDescriptor(
                unit_id="plug1", name="Paper count", kind="counter",
                entity="Paper",
            )
            service = GenericUnitService(acm_app.ctx)
            bean = service.compute(descriptor, {})
            assert bean.current["count"] == 4
        finally:
            plugin_registry.unregister("counter")

    def test_plugin_kind_collision_rejected(self):
        with pytest.raises(ServiceError, match="collides with a built-in"):
            plugin_registry.register(
                PluginUnit(kind="data", tag_name="webml:x", service=object())
            )

    def test_plugin_requires_service(self):
        with pytest.raises(ServiceError, match="needs a unit or operation"):
            PluginUnit(kind="x", tag_name="webml:x")

    def test_unknown_kind_without_plugin_raises(self, acm_app):
        from repro.descriptors import UnitDescriptor

        service = GenericUnitService(acm_app.ctx)
        with pytest.raises(ServiceError, match="no unit service"):
            service.compute(
                UnitDescriptor(unit_id="u", name="n", kind="martian"), {}
            )


class TestScrollerPaginationProperties:
    """Block scrolling must partition the instance set: the union of all
    blocks is the whole ordered set, blocks are disjoint and in order."""

    def test_blocks_partition_the_set(self, acm_app):
        # seed extra papers so there are several blocks
        for position in range(11):
            acm_app.seed_entity("Paper", [{
                "title": f"Extra {position:02d}", "pages": position,
            }])
        unit = unit_of(acm_app, "Browse papers", "Paper scroller")
        descriptor = acm_app.registry.unit(unit.id)
        service = GenericUnitService(acm_app.ctx)

        bean = service.compute(descriptor, {})
        expected_total = acm_app.database.row_count("paper")
        assert bean.total == expected_total

        seen: list = []
        for block in range(1, bean.block_count + 1):
            page = service.compute(descriptor, {"block": block})
            assert page.block == block
            seen.extend(row["oid"] for row in page.rows)
        assert len(seen) == expected_total
        assert len(set(seen)) == expected_total  # disjoint
        # ordered by title across block boundaries
        titles = [
            r["title"] for block in range(1, bean.block_count + 1)
            for r in service.compute(descriptor, {"block": block}).rows
        ]
        assert titles == sorted(titles)
