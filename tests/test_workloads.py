"""Tests for the reference workloads: the ACM application, the bookstore,
the Acer-Euro-scale generator, and the traffic generator."""

import pytest

from repro.app import Browser
from repro.codegen import generate_project
from repro.errors import CodegenError
from repro.workloads import (
    AcerScale,
    TrafficGenerator,
    acer_statistics,
    build_acer_model,
    build_acm_application,
    build_bookstore_application,
)
from repro.workloads.acer import seed_acer_data
from repro.workloads.traffic import page_url_pool


class TestAcmWorkload:
    def test_application_serves(self):
        app, oids = build_acm_application()
        browser = Browser(app)
        browser.get("/")
        assert browser.status == 200
        assert len(oids["volumes"]) == 2

    def test_scalable_seeding(self):
        app, oids = build_acm_application(volumes=3, issues_per_volume=3,
                                          papers_per_issue=4)
        assert len(oids["volumes"]) == 3
        assert len(oids["issues"]) == 9
        assert len(oids["papers"]) == 36
        assert app.database.row_count("paper") == 36

    def test_volume_page_matches_figure1(self):
        app, oids = build_acm_application()
        view = app.model.find_site_view("public")
        page = view.find_page("Volume Page")
        kinds = [u.kind for u in page.units]
        assert kinds == ["data", "hierarchical", "entry"]


class TestBookstoreWorkload:
    def test_shop_browsing(self):
        app, oids = build_bookstore_application()
        browser = Browser(app)
        browser.get("/")
        assert browser.status == 200

    def test_back_office_protected(self):
        app, oids = build_bookstore_application()
        url = app.page_url("backoffice", "Desk")
        assert app.get(url).status == 403
        browser = Browser(app)
        browser.get(app.operation_url("backoffice", "Login", {
            "username": "clerk", "password": "books",
        }))
        assert browser.get(url).status == 200

    def test_reprice_operation(self):
        app, oids = build_bookstore_application()
        browser = Browser(app)
        browser.get(app.operation_url("backoffice", "Login", {
            "username": "clerk", "password": "books",
        }))
        book = oids["books"][0]
        browser.get(app.operation_url("backoffice", "Reprice", {
            "oid": book, "price": "99.0",
        }))
        assert app.database.query(
            "SELECT price FROM book WHERE oid = :b", {"b": book}
        ).scalar() == 99.0

    def test_model_validates(self):
        from repro.workloads.bookstore import build_bookstore_model

        build_bookstore_model().validate()


class TestAcerScale:
    def test_published_counts_exact(self):
        model = build_acer_model()
        stats = acer_statistics(model)
        assert stats["site_views"] == 22
        assert stats["pages"] == 556
        assert stats["units"] == 3068

    def test_model_validates(self):
        build_acer_model(AcerScale().scaled(0.05)).validate()

    def test_generated_project_exceeds_3000_queries(self):
        project = generate_project(build_acer_model(), validate=False)
        assert project.counts()["sql_statements"] > 3000

    def test_scaled_down_preserves_pattern_bounds(self):
        scale = AcerScale().scaled(0.1)
        model = build_acer_model(scale)
        stats = acer_statistics(model)
        assert stats["site_views"] == scale.site_views
        assert stats["pages"] == scale.pages
        assert stats["units"] == scale.units

    def test_impossible_scale_rejected(self):
        with pytest.raises(CodegenError):
            AcerScale(site_views=1, pages=10, units=10)  # < 5/page

    def test_small_scale_application_serves(self):
        from repro.app import WebApplication

        scale = AcerScale(site_views=2, pages=4, units=18)
        model = build_acer_model(scale)
        app = WebApplication(model)
        seed_acer_data(app, rows_per_entity=5)
        browser = Browser(app)
        browser.get("/")
        assert browser.status == 200
        # a CM view exists and is protected
        cm_views = [v for v in model.site_views if v.requires_login]
        assert cm_views
        home = cm_views[0].home_page
        assert app.get(f"/{cm_views[0].id}/{home.id}").status == 403

    def test_cm_operations_run(self):
        from repro.app import WebApplication

        scale = AcerScale(site_views=2, pages=4, units=18)
        model = build_acer_model(scale)
        app = WebApplication(model)
        seed_acer_data(app, rows_per_entity=3)
        cm_view = next(v for v in model.site_views if v.requires_login)
        browser = Browser(app)
        browser.get(app.operation_url(cm_view.name, "Login", {
            "username": "editor", "password": "acer",
        }))
        create = next(o for o in cm_view.operations
                      if o.kind == "create")
        before = app.database.row_count(
            app.project.mapping.table_for(create.entity)
        )
        browser.get(app.operation_url(cm_view.name, create.name,
                                      {"name": "Brand new"}))
        after = app.database.row_count(
            app.project.mapping.table_for(create.entity)
        )
        assert after == before + 1


class TestTraffic:
    def test_traffic_is_deterministic(self):
        app, oids = build_acm_application()
        pool = page_url_pool(app, "public")
        first = TrafficGenerator(app, pool, seed=7)
        second = TrafficGenerator(app, pool, seed=7)
        assert [first.pick_url() for _ in range(20)] == \
            [second.pick_url() for _ in range(20)]

    def test_zipf_skews_toward_head(self):
        app, oids = build_acm_application()
        pool = page_url_pool(app, "public")
        generator = TrafficGenerator(app, pool, seed=1, zipf_skew=1.2)
        picks = [generator.pick_url() for _ in range(400)]
        head_share = picks.count(pool[0]) / len(picks)
        tail_share = picks.count(pool[-1]) / len(picks)
        assert head_share > tail_share

    def test_run_reports(self):
        app, oids = build_acm_application()
        pool = page_url_pool(app, "public")
        report = TrafficGenerator(app, pool, seed=3).run(requests=30)
        assert report.requests == 30
        assert report.ok_responses == 30
        assert report.queries_executed > 0
        assert report.requests_per_second > 0

    def test_empty_pool_rejected(self):
        app, oids = build_acm_application()
        with pytest.raises(ValueError):
            TrafficGenerator(app, [])
