"""Tests for the MVC web tier: HTTP objects, the controller, the front
controller's routing, operation redirects and chains, and login
enforcement — all against the generated configuration."""

import pytest

from repro.errors import ControllerError
from repro.mvc import Controller, HttpRequest, HttpResponse, Session, SessionStore
from repro.mvc.http import build_url
from repro.app import Browser

from tests.conftest import build_acm_webml, seed_acm


class TestHttpObjects:
    def test_from_url_parses_query(self):
        request = HttpRequest.from_url("/sv1/page2?unit2.oid=5&x=a%20b")
        assert request.path == "/sv1/page2"
        assert request.params == {"unit2.oid": "5", "x": "a b"}

    def test_build_url_roundtrip(self):
        url = build_url("/p", {"a": "1", "b": "x y"})
        request = HttpRequest.from_url(url)
        assert request.params == {"a": "1", "b": "x y"}

    def test_build_url_skips_none(self):
        assert build_url("/p", {"a": None}) == "/p"

    def test_build_url_expands_list_params(self):
        """A multi-select (checkbox group) must emit one pair per value,
        not a stringified Python list."""
        url = build_url("/do/op5", {"op5.oid": ["1", "2"], "b": "x"})
        assert url == "/do/op5?op5.oid=1&op5.oid=2&b=x"
        request = HttpRequest.from_url(url)
        assert request.params == {"op5.oid": ["1", "2"], "b": "x"}

    def test_response_redirect(self):
        response = HttpResponse.redirect("/elsewhere")
        assert response.is_redirect
        assert response.location == "/elsewhere"

    def test_all_redirect_statuses_recognized(self):
        for status in (301, 302, 303, 307, 308):
            response = HttpResponse(status=status,
                                    headers={"Location": "/x"})
            assert response.is_redirect, status
        for status in (200, 304, 404):
            assert not HttpResponse(status=status).is_redirect

    def test_session_lifecycle(self):
        session = Session("s1")
        assert not session.is_authenticated
        session.login(7, "admin")
        session.set("cart", [1, 2])
        assert session.is_authenticated
        session.logout()
        assert not session.is_authenticated
        assert session.get("cart") is None

    def test_session_store_reuses(self):
        store = SessionStore()
        first = store.get_or_create(None)
        again = store.get_or_create(first.id)
        assert again is first
        other = store.get_or_create(None)
        assert other.id != first.id
        store.invalidate(first.id)
        replacement = store.get_or_create(first.id)
        assert replacement is not first


class TestController:
    def test_loads_generated_config(self, acm_app):
        controller = acm_app.controller
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        mapping = controller.resolve(f"/{view.id}/{page.id}")
        assert mapping.action_type == "PageAction"
        assert mapping.page_id == page.id

    def test_unknown_path_raises(self, acm_app):
        with pytest.raises(ControllerError, match="no action mapping"):
            acm_app.controller.resolve("/nope")

    def test_home_for(self, acm_app):
        view = acm_app.model.find_site_view("admin")
        home = acm_app.controller.home_for(view.id)
        assert home.requires_login

    def test_reload_config_swaps_atomically(self, acm_app):
        """§7: re-link the model, regenerate, reload — nothing else changes."""
        from repro.codegen import generate_controller_config

        model = acm_app.model
        view = model.find_site_view("public")
        volumes = view.find_page("Volumes")
        search = view.find_page("SearchResults")
        matching = search.unit("Matching papers")
        # Re-link: search results now also link back to the volume list.
        model.link(matching, volumes, label="back to volumes")
        acm_app.controller.load_config(generate_controller_config(model))
        assert acm_app.controller.resolve(f"/{view.id}/{volumes.id}")

    def test_wrong_config_root_rejected(self):
        with pytest.raises(ControllerError, match="expected <controllerConfig>"):
            Controller.from_config("<web/>")

    def test_duplicate_path_rejected(self):
        config = (
            "<controllerConfig><actionMappings>"
            "<action path='/a' type='PageAction' siteview='sv1' page='p1'/>"
            "<action path='/a' type='PageAction' siteview='sv1' page='p2'/>"
            "</actionMappings></controllerConfig>"
        )
        with pytest.raises(ControllerError, match="duplicate action path"):
            Controller.from_config(config)


class TestFrontController:
    def test_root_redirects_to_first_home(self, acm_app):
        response = acm_app.get("/")
        assert response.is_redirect
        view = acm_app.model.find_site_view("public")
        assert response.location == f"/{view.id}/{view.home_page_id}"

    def test_site_view_path_redirects_home(self, acm_app):
        view = acm_app.model.find_site_view("public")
        response = acm_app.get(f"/{view.id}")
        assert response.is_redirect

    def test_unknown_path_404(self, acm_app):
        assert acm_app.get("/ghost/path").status == 404

    def test_page_renders(self, acm_app):
        response = Browser(acm_app).get("/")
        assert response.status == 200
        assert "Volumes" in response.body

    def test_session_persists_across_requests(self, acm_app):
        browser = Browser(acm_app)
        browser.get("/")
        first_session = browser.session_id
        browser.get("/")
        assert browser.session_id == first_session

    def test_protected_site_view_forbidden_without_login(self, acm_app):
        view = acm_app.model.find_site_view("admin")
        page = view.find_page("Admin Home")
        response = acm_app.get(f"/{view.id}/{page.id}")
        assert response.status == 403

    def test_login_flow_unlocks_admin(self, acm_app):
        browser = Browser(acm_app)
        login_url = acm_app.operation_url(
            "admin", "Login", {"username": "admin", "password": "secret"}
        )
        response = browser.get(login_url)
        assert response.status == 200
        assert "Admin Home" in response.body
        # now the protected pages serve directly
        response = browser.get(acm_app.page_url("admin", "Admin Home"))
        assert response.status == 200

    def test_failed_login_redirects_to_ko_with_message(self, acm_app):
        browser = Browser(acm_app)
        login_url = acm_app.operation_url(
            "admin", "Login", {"username": "admin", "password": "nope"}
        )
        response = browser.get(login_url, follow_redirects=False)
        assert response.is_redirect
        assert "_message=" in response.location
        final = browser.get(login_url)  # follow the KO redirect
        assert final.status == 200
        assert "Login" in final.body

    def test_operation_redirects_to_ok_page(self, acm_app):
        browser = Browser(acm_app)
        browser.get(acm_app.operation_url(
            "admin", "Login", {"username": "admin", "password": "secret"}
        ))
        create_url = acm_app.operation_url(
            "admin", "CreatePaper", {"title": "Chained", "pages": "10"}
        )
        response = browser.get(create_url, follow_redirects=False)
        assert response.is_redirect
        view = acm_app.model.find_site_view("admin")
        assert f"/{view.id}/" in response.location
        assert acm_app.database.query(
            "SELECT COUNT(*) AS n FROM paper WHERE title = 'Chained'"
        ).scalar() == 1

    def test_operation_chain_create_then_connect(self, acm_app, acm_oids):
        """An OK→operation chain: create an issue, then connect it to a
        volume, then land on the volume page."""
        from repro.webml import LinkKind
        from repro.codegen import generate_project

        model = acm_app.model
        admin = model.find_site_view("admin")
        volume_page = model.find_site_view("public").find_page("Volume Page")
        create_issue = admin.create_op("CreateIssue", "Issue",
                                       ["number", "month"])
        attach = admin.connect_op("AttachIssue", "VolumeToIssue")
        model.link(create_issue, attach, kind=LinkKind.OK,
                   params=[("oid", "target_oid")])
        model.link(create_issue, volume_page, kind=LinkKind.KO)
        model.link(attach, volume_page, kind=LinkKind.OK)
        model.link(attach, volume_page, kind=LinkKind.KO)

        # regenerate + redeploy (the §7 cycle)
        project = generate_project(model, validate=False)
        project.deploy(acm_app.registry)
        acm_app.controller.load_config(project.controller_config)

        volume_oid = acm_oids["volumes"][1]
        browser = Browser(acm_app)
        browser.get(acm_app.operation_url(
            "admin", "Login", {"username": "admin", "password": "secret"}
        ))
        url = acm_app.operation_url("admin", "CreateIssue", {
            "number": "2", "month": "June",
        })
        # the connect operation needs the volume: request-scoped input
        url += f"&{attach.id}.source_oid={volume_oid}"
        response = browser.get(url)
        assert response.status == 200
        connected = acm_app.database.query(
            "SELECT COUNT(*) AS n FROM issue WHERE volume_to_issue_oid = :v"
            " AND month = 'June' AND number = 2",
            {"v": volume_oid},
        ).scalar()
        assert connected == 1

    def test_browser_click_follows_rendered_links(self, acm_app):
        browser = Browser(acm_app)
        browser.get("/")
        # the plain renderer has no anchors; use the real page URL flow
        assert browser.status == 200

    def test_requests_counted(self, acm_app):
        browser = Browser(acm_app)
        browser.get("/")
        assert acm_app.front.requests_served >= 2  # redirect + page


class _PermanentlyMovedApp:
    """A stub application whose entry path answers with a configurable
    redirect status — the flavours a reverse proxy or a renamed site
    view produce."""

    def __init__(self, status: int):
        self.status = status

    def handle(self, request):
        if request.path == "/start":
            return HttpResponse(status=self.status,
                                headers={"Location": "/final"})
        return HttpResponse(status=200, body=f"arrived via {self.status}")


class TestBrowserRedirectFollowing:
    @pytest.mark.parametrize("status", [301, 307, 308])
    def test_follows_every_redirect_flavour(self, status):
        browser = Browser(_PermanentlyMovedApp(status))
        response = browser.get("/start")
        assert response.status == 200
        assert response.body == f"arrived via {status}"
        assert browser.history[-1] == "/final"

    @pytest.mark.parametrize("status", [301, 307, 308])
    def test_follow_can_be_disabled(self, status):
        response = Browser(_PermanentlyMovedApp(status)).get(
            "/start", follow_redirects=False
        )
        assert response.status == status
        assert response.location == "/final"


class TestBulkOperations:
    """A multichoice selection drives one operation over many objects."""

    def _bulk_app(self):
        from repro.codegen import generate_project
        from repro.presentation import PresentationRenderer
        from repro.presentation.renderer import default_stylesheet
        from repro.webml import LinkKind
        from repro.app import WebApplication

        model = build_acm_webml()
        admin = model.find_site_view("admin")
        purge_page = admin.page("Purge papers")
        chooser = purge_page.multichoice_unit(
            "Choose papers", "Paper", display_attributes=["title"]
        )
        purge = admin.delete_op("PurgePapers", "Paper")
        model.link(chooser, purge, params=[("oids", "oid")], label="purge")
        model.link(purge, purge_page, kind=LinkKind.OK)
        model.link(purge, purge_page, kind=LinkKind.KO)

        project = generate_project(model)
        renderer = PresentationRenderer(project.skeletons,
                                        default_stylesheet("ACM"))
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        return app, chooser, purge

    def test_checkboxes_target_operation_slot(self):
        app, chooser, purge = self._bulk_app()
        browser = Browser(app)
        browser.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        browser.get(app.page_url("admin", "Purge papers"))
        assert f'name="{purge.id}.oid"' in browser.body
        assert f'action="/do/{purge.id}"' in browser.body

    def test_bulk_delete_removes_all_chosen(self, acm_oids):
        app, chooser, purge = self._bulk_app()
        browser = Browser(app)
        browser.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        chosen = acm_oids["papers"][:2]
        url = (f"/do/{purge.id}?{purge.id}.oid={chosen[0]}"
               f"&{purge.id}.oid={chosen[1]}")
        response = browser.get(url)
        assert response.status == 200
        assert app.database.row_count("paper") == 2

    def test_bulk_with_missing_row_is_ko(self):
        app, chooser, purge = self._bulk_app()
        browser = Browser(app)
        browser.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        url = f"/do/{purge.id}?{purge.id}.oid=1&{purge.id}.oid=999"
        response = browser.get(url, follow_redirects=False)
        assert "_message=" in response.location
        # operations are atomic: the failed bulk rolled back entirely
        assert app.database.row_count("paper") == 4


class TestOperationChainSafety:
    def test_chain_cycle_detected(self, acm_app):
        from repro.descriptors import OperationDescriptor, OutcomeTarget
        from repro.errors import ControllerError
        from repro.mvc.actions import OperationAction
        from repro.mvc.controller import ActionMapping
        from repro.mvc.http import HttpRequest, Session

        # two logout-style operations whose OK links point at each other
        first = OperationDescriptor(
            operation_id="cyc1", name="A", kind="logout",
            ok=OutcomeTarget("operation", "cyc2"),
        )
        second = OperationDescriptor(
            operation_id="cyc2", name="B", kind="logout",
            ok=OutcomeTarget("operation", "cyc1"),
        )
        acm_app.registry.deploy_operation(first)
        acm_app.registry.deploy_operation(second)
        action = OperationAction(acm_app.ctx)
        mapping = ActionMapping(path="/do/cyc1",
                                action_type="OperationAction",
                                site_view_id="sv1", operation_id="cyc1")
        with pytest.raises(ControllerError, match="chain exceeded"):
            action.perform(mapping, HttpRequest(path="/do/cyc1"),
                           Session("s"))

    def test_repeated_params_parse_to_lists(self):
        request = HttpRequest.from_url("/p?a=1&a=2&b=3")
        assert request.params == {"a": ["1", "2"], "b": "3"}


class TestOperationOutcomeEdges:
    def _mapping_for(self, operation_id):
        from repro.mvc.controller import ActionMapping

        return ActionMapping(path=f"/do/{operation_id}",
                             action_type="OperationAction",
                             site_view_id="sv1", operation_id=operation_id)

    def test_success_without_ok_target_is_an_error(self, acm_app):
        from repro.descriptors import OperationDescriptor
        from repro.mvc.actions import OperationAction

        descriptor = OperationDescriptor(
            operation_id="nook", name="NoOk", kind="logout",  # always ok
        )
        acm_app.registry.deploy_operation(descriptor)
        action = OperationAction(acm_app.ctx)
        with pytest.raises(ControllerError, match="no OK target"):
            action.perform(self._mapping_for("nook"),
                           HttpRequest(path="/do/nook"), Session("s"))

    def test_failure_without_ko_falls_back_to_ok(self, acm_app):
        from repro.descriptors import (
            OperationDescriptor,
            OutcomeTarget,
            StatementSpec,
        )
        from repro.mvc.actions import OperationAction

        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        descriptor = OperationDescriptor(
            operation_id="nofail", name="NoKo", kind="delete",
            statements=[StatementSpec(sql="DELETE FROM paper WHERE oid = :oid",
                                      params=[("oid", "oid", "int")])],
            ok=OutcomeTarget("page", page.id, target_page_id=page.id),
        )
        acm_app.registry.deploy_operation(descriptor)
        action = OperationAction(acm_app.ctx)
        outcome = action.perform(
            self._mapping_for("nofail"),
            HttpRequest(path="/do/nofail", params={"nofail.oid": "99999"}),
            Session("s"),
        )
        assert outcome.kind == "redirect"
        assert outcome.redirect_page_id == page.id
        assert "matched no rows" in outcome.message

    def test_failure_without_any_target_is_an_error(self, acm_app):
        from repro.descriptors import OperationDescriptor, StatementSpec
        from repro.mvc.actions import OperationAction

        descriptor = OperationDescriptor(
            operation_id="bare", name="Bare", kind="delete",
            statements=[StatementSpec(sql="DELETE FROM paper WHERE oid = :oid",
                                      params=[("oid", "oid", "int")])],
        )
        acm_app.registry.deploy_operation(descriptor)
        action = OperationAction(acm_app.ctx)
        with pytest.raises(ControllerError, match="no KO target"):
            action.perform(
                self._mapping_for("bare"),
                HttpRequest(path="/do/bare", params={"bare.oid": "99999"}),
                Session("s"),
            )

    def test_unknown_action_type_rejected(self, acm_app):
        from repro.mvc.controller import ActionMapping

        acm_app.controller.mappings["/weird"] = ActionMapping(
            path="/weird", action_type="TeleportAction", site_view_id="sv1"
        )
        response = acm_app.get("/weird")
        assert response.status == 500
        assert "unknown action type" in response.body
