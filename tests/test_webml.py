"""Tests for the WebML model: builders, dataflow contracts, validation,
and XML round-tripping.  The running example is the paper's Figure 1
(the ACM Digital Library volume page)."""

import pytest

from repro.er import ERModel
from repro.errors import ValidationError, WebMLError
from repro.webml import (
    AttributeCondition,
    HierarchyLevel,
    LinkKind,
    RelationshipCondition,
    Selector,
    WebMLModel,
    webml_from_xml,
    webml_to_xml,
)


def acm_data_model() -> ERModel:
    model = ERModel(name="acm")
    model.entity("Volume", [("number", "INTEGER", True), ("year", "INTEGER"),
                            ("title", "VARCHAR(120)")])
    model.entity("Issue", [("number", "INTEGER")])
    model.entity("Paper", [("title", "VARCHAR(200)", True), ("pages", "INTEGER")])
    model.entity("User", [("username", "VARCHAR(40)", True),
                          ("password", "VARCHAR(40)", True)])
    model.relate("VolumeToIssue", "Volume", "Issue", "1:N",
                 inverse_name="IssueToVolume")
    model.relate("IssueToPaper", "Issue", "Paper", "1:N",
                 inverse_name="PaperToIssue")
    return model


def figure1_model() -> WebMLModel:
    """The Volume Page of Figures 1-2 plus the pages it links to."""
    model = WebMLModel(acm_data_model(), name="acm-dl")
    view = model.site_view("public")

    volumes = view.page("Volumes Page", home=True)
    volume_index = volumes.index_unit(
        "All volumes", "Volume", display_attributes=["number", "year"]
    )

    volume_page = view.page("Volume Page")
    volume_data = volume_page.data_unit(
        "Volume data", "Volume", display_attributes=["number", "year", "title"]
    )
    issues_papers = volume_page.hierarchical_index(
        "Issues&Papers",
        levels=[
            HierarchyLevel("Issue", role="VolumeToIssue",
                           display_attributes=["number"]),
            HierarchyLevel("Paper", role="IssueToPaper",
                           display_attributes=["title"]),
        ],
    )
    keyword_entry = volume_page.entry_unit(
        "Enter keyword", fields=[("keyword", "text", True)]
    )

    paper_page = view.page("Paper details page")
    paper_data = paper_page.data_unit("Paper data", "Paper")

    search_page = view.page("SearchResults page")
    results = search_page.index_unit(
        "Matching papers",
        "Paper",
        selector=Selector([
            AttributeCondition("title", "like", parameter="keyword"),
        ]),
        display_attributes=["title"],
    )

    model.link(volume_index, volume_data, params=[("oid", "oid")],
               label="volume details")
    model.link(volume_data, issues_papers, kind=LinkKind.TRANSPORT,
               params=[("oid", "volume_to_issue")])
    model.link(issues_papers, paper_data, params=[("oid", "oid")],
               label="paper details")
    model.link(keyword_entry, results, params=[("keyword", "keyword")],
               label="search")
    model.link(results, paper_data, params=[("oid", "oid")])
    return model


class TestBuilders:
    def test_statistics(self):
        model = figure1_model()
        stats = model.statistics()
        assert stats == {
            "site_views": 1, "pages": 4, "units": 6, "operations": 0, "links": 5,
        }

    def test_home_page_defaults_to_first(self):
        model = figure1_model()
        assert model.site_views[0].home_page.name == "Volumes Page"

    def test_duplicate_page_name_rejected(self):
        model = figure1_model()
        with pytest.raises(WebMLError, match="already has a page"):
            model.site_views[0].page("Volume Page")

    def test_duplicate_unit_name_rejected(self):
        model = figure1_model()
        page = model.site_views[0].find_page("Volume Page")
        with pytest.raises(WebMLError, match="already has a unit"):
            page.data_unit("Volume data", "Volume")

    def test_duplicate_site_view_rejected(self):
        model = figure1_model()
        with pytest.raises(WebMLError, match="duplicate site view"):
            model.site_view("public")

    def test_areas_nest(self):
        model = WebMLModel(acm_data_model())
        view = model.site_view("admin")
        products = view.area("Products")
        archive = products.area("Archive")
        page = archive.page("Old products")
        assert page in view.all_pages()
        assert model.site_view_of_page(page).name == "admin"

    def test_page_of_unit(self):
        model = figure1_model()
        page = model.site_views[0].find_page("Volume Page")
        unit = page.unit("Volume data")
        assert model.page_of_unit(unit).name == "Volume Page"

    def test_link_endpoints_must_exist(self):
        model = figure1_model()
        with pytest.raises(WebMLError, match="not in the model"):
            model.link("ghost1", "ghost2")

    def test_links_from_to(self):
        model = figure1_model()
        page = model.site_views[0].find_page("Volume Page")
        unit = page.unit("Volume data")
        assert len(model.links_from(unit)) == 1
        assert len(model.links_to(unit)) == 1

    def test_data_unit_gets_implicit_key_selector(self):
        model = figure1_model()
        unit = model.site_views[0].find_page("Volume Page").unit("Volume data")
        assert unit.input_slots == ["oid"]

    def test_hierarchical_unit_selector_from_root_role(self):
        model = figure1_model()
        unit = model.site_views[0].find_page("Volume Page").unit("Issues&Papers")
        assert unit.input_slots == ["volume_to_issue"]
        assert unit.entity == "Issue"
        assert set(unit.depends_on_roles) == {"VolumeToIssue", "IssueToPaper"}

    def test_entry_unit_outputs_fields(self):
        model = figure1_model()
        unit = model.site_views[0].find_page("Volume Page").unit("Enter keyword")
        assert unit.output_slots == ["keyword"]
        assert unit.input_slots == []

    def test_scroller_contract(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        scroller = page.scroller_unit("papers", "Paper", block_size=5)
        assert "block" in scroller.input_slots
        assert scroller.output_slots == ["block", "block_count"]

    def test_multichoice_outputs_oids(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        unit = page.multichoice_unit("pick papers", "Paper")
        assert unit.output_slots == ["oids"]

    def test_operation_builders(self):
        model = WebMLModel(acm_data_model())
        view = model.site_view("admin")
        create = view.create_op("NewPaper", "Paper", ["title", "pages"])
        assert create.input_slots == ["title", "pages"]
        assert create.writes_entities == ["Paper"]
        connect = view.connect_op("AttachPaper", "IssueToPaper")
        assert connect.input_slots == ["source_oid", "target_oid"]
        assert connect.writes_roles == ["IssueToPaper"]

    def test_invalid_unit_construction(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        with pytest.raises(WebMLError):
            page.scroller_unit("s", "Paper", block_size=0)
        with pytest.raises(WebMLError):
            page.entry_unit("e", fields=[("x",), ("x",)])
        with pytest.raises(WebMLError):
            page.hierarchical_index("h", levels=[])


class TestValidation:
    def test_figure1_model_is_valid(self):
        figure1_model().validate()

    def test_unknown_entity_reported(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        page.index_unit("ghost index", "Ghost")
        with pytest.raises(ValidationError, match="unknown entity 'Ghost'"):
            model.validate()

    def test_unknown_display_attribute_reported(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        page.index_unit("idx", "Paper", display_attributes=["ghost"])
        with pytest.raises(ValidationError, match="unknown attribute 'ghost'"):
            model.validate()

    def test_selector_role_direction_checked(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        # VolumeToIssue leads to Issue, not Paper
        page.index_unit(
            "bad", "Paper",
            selector=Selector([RelationshipCondition("VolumeToIssue")]),
        )
        model.link(page, page.unit("bad"))  # irrelevant feeder
        with pytest.raises(ValidationError, match="leads to 'Issue'"):
            model.validate()

    def test_hierarchy_chain_checked(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        page.hierarchical_index(
            "bad",
            levels=[
                HierarchyLevel("Volume"),
                HierarchyLevel("Paper", role="VolumeToIssue"),
            ],
        )
        with pytest.raises(ValidationError, match="connects 'Volume'→'Issue'"):
            model.validate()

    def test_unfed_input_reported(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        page.data_unit("lonely", "Paper")  # oid input never fed
        with pytest.raises(ValidationError, match="input 'oid' is never fed"):
            model.validate()

    def test_transport_link_must_stay_in_page(self):
        model = figure1_model()
        view = model.site_views[0]
        volume_data = view.find_page("Volume Page").unit("Volume data")
        paper_data = view.find_page("Paper details page").unit("Paper data")
        model.link(volume_data, paper_data, kind=LinkKind.TRANSPORT)
        with pytest.raises(ValidationError, match="stay within one page"):
            model.validate()

    def test_operation_needs_ok_link(self):
        model = figure1_model()
        view = model.site_views[0]
        delete = view.delete_op("DeletePaper", "Paper")
        results = view.find_page("SearchResults page").unit("Matching papers")
        model.link(results, delete, params=[("oid", "oid")])
        with pytest.raises(ValidationError, match="no OK link"):
            model.validate()

    def test_ok_link_only_from_operations(self):
        model = figure1_model()
        view = model.site_views[0]
        unit = view.find_page("Volume Page").unit("Volume data")
        model.link(unit, view.find_page("Volumes Page"), kind=LinkKind.OK)
        with pytest.raises(ValidationError, match="only operations have OK/KO"):
            model.validate()

    def test_link_parameter_contract_checked(self):
        model = figure1_model()
        view = model.site_views[0]
        entry = view.find_page("Volume Page").unit("Enter keyword")
        results = view.find_page("SearchResults page").unit("Matching papers")
        model.link(entry, results, params=[("nope", "keyword")])
        with pytest.raises(ValidationError, match="no output 'nope'"):
            model.validate()

    def test_empty_site_view_reported(self):
        model = WebMLModel(acm_data_model())
        model.site_view("empty")
        with pytest.raises(ValidationError, match="has no pages"):
            model.validate()

    def test_complete_admin_flow_validates(self):
        model = figure1_model()
        view = model.site_views[0]
        page = view.find_page("Volume Page")
        form = page.entry_unit(
            "New issue", fields=[("number", "text", True)]
        )
        create = view.create_op("CreateIssue", "Issue", ["number"])
        connect = view.connect_op("AttachIssue", "VolumeToIssue")
        model.link(form, create, params=[("number", "number")])
        ok1 = model.link(create, connect, kind=LinkKind.OK,
                         params=[("oid", "target_oid")])
        volume_data = page.unit("Volume data")
        model.link(volume_data, connect, kind=LinkKind.TRANSPORT,
                   params=[("oid", "source_oid")])
        model.link(connect, page, kind=LinkKind.OK)
        model.link(create, page, kind=LinkKind.KO)
        # transport into an operation is rejected (operations are not in pages)
        with pytest.raises(ValidationError, match="transport links connect units"):
            model.validate()
        assert ok1.parameters[0].target_input == "target_oid"


class TestXmlRoundtrip:
    def test_roundtrip_preserves_structure(self):
        model = figure1_model()
        view = model.site_views[0]
        view.create_op("CreatePaper", "Paper", ["title"])
        document = webml_to_xml(model)
        loaded = webml_from_xml(document, acm_data_model())
        assert loaded.statistics() == model.statistics()
        assert loaded.site_views[0].home_page.name == "Volumes Page"
        unit = loaded.site_views[0].find_page("Volume Page").unit("Issues&Papers")
        assert [level.entity for level in unit.levels] == ["Issue", "Paper"]

    def test_roundtrip_preserves_links_and_params(self):
        model = figure1_model()
        loaded = webml_from_xml(webml_to_xml(model), acm_data_model())
        loaded.validate()
        entry = loaded.site_views[0].find_page("Volume Page").unit("Enter keyword")
        outgoing = loaded.links_from(entry)
        assert len(outgoing) == 1
        assert outgoing[0].parameters[0].source_output == "keyword"

    def test_roundtrip_preserves_selectors(self):
        model = figure1_model()
        loaded = webml_from_xml(webml_to_xml(model), acm_data_model())
        results = loaded.site_views[0].find_page("SearchResults page").unit(
            "Matching papers"
        )
        condition = results.selector.conditions[0]
        assert isinstance(condition, AttributeCondition)
        assert condition.operator == "like"
        assert condition.parameter == "keyword"

    def test_roundtrip_preserves_cache_flags(self):
        model = WebMLModel(acm_data_model())
        page = model.site_view("sv").page("p")
        page.index_unit("idx", "Paper", cacheable=True, cache_policy="ttl:30")
        loaded = webml_from_xml(webml_to_xml(model), acm_data_model())
        unit = loaded.site_views[0].find_page("p").unit("idx")
        assert unit.cacheable and unit.cache_policy == "ttl:30"

    def test_wrong_root_rejected(self):
        with pytest.raises(WebMLError, match="expected <webml>"):
            webml_from_xml("<ermodel/>", acm_data_model())

    def test_roundtrip_preserves_areas(self):
        model = WebMLModel(acm_data_model())
        view = model.site_view("admin")
        area = view.area("Content")
        area.page("News")
        loaded = webml_from_xml(webml_to_xml(model), acm_data_model())
        assert loaded.site_views[0].areas[0].name == "Content"
        assert loaded.site_views[0].areas[0].pages[0].name == "News"


class TestXmlRoundtripExtended:
    def test_plugin_unit_roundtrip(self):
        from repro.services.plugins import PluginUnit, plugin_registry

        class _Svc:
            kind = "badge"

            def compute(self, descriptor, inputs, ctx):  # pragma: no cover
                return None

        plugin_registry.register(PluginUnit(
            kind="badge", tag_name="webml:badgeUnit", service=_Svc(),
        ))
        try:
            model = WebMLModel(acm_data_model())
            page = model.site_view("sv").page("p")
            page.plugin_unit("My badge", "badge",
                             extra_inputs=["who"], extra_outputs=["level"])
            loaded = webml_from_xml(webml_to_xml(model), acm_data_model())
            unit = loaded.site_views[0].find_page("p").unit("My badge")
            assert unit.kind == "badge"
            assert unit.extra_inputs == ["who"]
            assert unit.extra_outputs == ["level"]
            assert unit.input_slots == ["who"]
            assert "level" in unit.output_slots
        finally:
            plugin_registry.unregister("badge")

    def test_unknown_kind_still_rejected(self):
        document = (
            "<webml name='x'><siteview id='sv1' name='sv'>"
            "<page id='p1' name='p'>"
            "<unit id='u1' name='u' kind='martian' entity='Paper'/>"
            "</page></siteview></webml>"
        )
        with pytest.raises(WebMLError, match="unknown unit kind"):
            webml_from_xml(document, acm_data_model())

    def test_acer_scale_model_roundtrips(self):
        from repro.workloads.acer import AcerScale, build_acer_model

        model = build_acer_model(AcerScale(site_views=3, pages=9, units=47))
        loaded = webml_from_xml(webml_to_xml(model), model.data_model)
        assert loaded.statistics() == model.statistics()
        loaded.validate()


class TestDiagramExport:
    def test_figure1_diagram_structure(self):
        from repro.webml.diagram import model_to_dot

        dot = model_to_dot(figure1_model())
        assert dot.startswith('digraph "acm-dl" {')
        assert dot.rstrip().endswith("}")
        # pages become clusters, units become labelled nodes
        assert 'label="Volume Page"' in dot
        assert "Issues&Papers" in dot
        # transport links are dashed, like the paper's Figure 1
        assert "style=dashed, tooltip=\"oid→volume_to_issue\"" in dot

    def test_operations_and_outcome_links(self):
        from repro.webml.diagram import model_to_dot

        model = figure1_model()
        view = model.site_views[0]
        page = view.find_page("Volume Page")
        form = page.unit("Enter keyword")
        delete = view.delete_op("DeletePaper", "Paper")
        model.link(form, delete, params=[("keyword", "oid")])
        model.link(delete, page, kind=LinkKind.OK)
        model.link(delete, page, kind=LinkKind.KO)
        dot = model_to_dot(model)
        assert "shape=ellipse" in dot  # operations drawn as ellipses
        assert 'label="OK"' in dot and 'label="KO"' in dot
        assert "lhead=cluster_" in dot  # page-targeted links anchor safely

    def test_site_view_filter(self):
        from repro.webml.diagram import model_to_dot
        from repro.workloads.acer import AcerScale, build_acer_model

        model = build_acer_model(AcerScale(site_views=3, pages=9, units=47))
        full = model_to_dot(model)
        partial = model_to_dot(model, site_view_names=[model.site_views[0].name])
        assert len(partial) < len(full)
        assert model.site_views[0].name in partial
        assert model.site_views[-1].name not in partial

    def test_dot_ids_are_plain_identifiers(self):
        from repro.webml.diagram import model_to_dot
        import re

        dot = model_to_dot(figure1_model())
        for edge in re.findall(r"^  (\S+) -> (\S+) ", dot, re.MULTILINE):
            assert all(re.fullmatch(r"\w+", node) for node in edge)
