"""Tests for repro.obs: span trees and their contextvar propagation,
the metrics registry, the slow-query ring, the ``/_status`` endpoint,
and the end-to-end guarantee that a rendered page's trace matches the
statements and cache probes the request actually performed."""

import json
import threading
import time

import pytest

from repro.app import WebApplication
from repro.caching import FragmentCache, PageCache, UnitBeanCache
from repro.codegen import generate_project
from repro.obs import (
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    attach_span,
    current_span,
    span,
    trace,
)
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet

from tests.conftest import build_acm_webml, seed_acm


class TestTrace:
    def test_span_tree_nesting(self):
        with trace("GET /x", page="p") as t:
            with span("mvc.action", tier="mvc"):
                with span("services.unit", tier="services"):
                    pass
                attach_span("rdb.select", "rdb", 0.0, 0.001, {"rows": 3})
        root = t.root
        assert root.name == "GET /x"
        assert root.duration is not None
        (action,) = root.children
        assert [c.name for c in action.children] == \
            ["services.unit", "rdb.select"]
        assert action.children[1].tags == {"rows": 3}

    def test_current_span_restored_after_trace(self):
        with trace("GET /x"):
            assert current_span() is not None
        assert current_span() is None

    def test_span_without_trace_is_a_noop(self):
        with span("anything", tier="cache") as probe:
            assert probe is None
        assert attach_span("rdb.select", "rdb", 0.0, 0.1) is None

    def test_tier_totals_exclude_the_root(self):
        with trace("GET /x") as t:
            attach_span("rdb.select", "rdb", 0.0, 0.002)
            attach_span("rdb.select", "rdb", 0.0, 0.003)
        count, seconds = t.tier_totals()["rdb"]
        assert count == 2
        assert seconds == pytest.approx(0.005)
        assert "mvc" not in t.tier_totals()  # only the root was mvc

    def test_summary_is_one_line_with_tiers(self):
        with trace("GET /pv/p1") as t:
            attach_span("rdb.select", "rdb", 0.0, 0.002)
        summary = t.summary()
        assert "\n" not in summary
        assert summary.startswith("GET /pv/p1 ")
        assert "rdb=1/2.00ms" in summary

    def test_to_dict_round_trips_through_json(self):
        with trace("GET /x") as t:
            with span("mvc.render", tier="mvc"):
                pass
        doc = json.loads(json.dumps(t.to_dict()))
        assert doc["children"][0]["name"] == "mvc.render"

    def test_new_threads_do_not_inherit_the_span(self):
        seen = []
        with trace("GET /x"):
            worker = threading.Thread(target=lambda: seen.append(current_span()))
            worker.start()
            worker.join()
        assert seen == [None]


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter  # create-once identity
        gauge = registry.gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1
        assert gauge.max_value == 3

    def test_histogram_percentiles_within_bucket_width(self):
        h = Histogram()
        for _ in range(90):
            h.record(0.001)
        for _ in range(10):
            h.record(0.1)
        # log2 buckets promise estimates within a factor of 2
        assert 0.0005 <= h.p50 <= 0.002
        assert 0.05 <= h.p95 <= 0.2
        assert h.count == 100
        assert h.mean == pytest.approx((90 * 0.001 + 10 * 0.1) / 100)
        doc = h.to_dict()
        assert doc["count"] == 100
        assert doc["p99_ms"] >= doc["p50_ms"]

    def test_counters_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("http.status.200").inc()
        registry.counter("http.status.304").inc(2)
        registry.counter("other").inc()
        assert registry.counters("http.status.") == {
            "http.status.200": 1, "http.status.304": 2,
        }

    def test_snapshot_polls_collectors(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.register_collector("pool", lambda: {"in_use": 2})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["external"]["pool"] == {"in_use": 2}

    def test_broken_collector_cannot_break_the_snapshot(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector("bad", broken)
        assert "boom" in snapshot_error(registry)


def snapshot_error(registry) -> str:
    return registry.snapshot()["external"]["bad"]["error"]


class TestSlowQueryLog:
    def test_threshold_filters_fast_statements(self):
        log = SlowQueryLog(threshold_seconds=0.01)
        assert not log.observe("SELECT fast", 0.001)
        assert log.observe("SELECT slow", 0.02, access="index:paper(oid)")
        assert len(log) == 1
        entry = log.entries()[0]
        assert entry.sql == "SELECT slow"
        assert entry.access == "index:paper(oid)"

    def test_ring_drops_the_oldest(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for i in range(3):
            log.observe(f"q{i}", 0.1)
        assert [e.sql for e in log.entries()] == ["q2", "q1"]  # newest first
        stats = log.stats()
        assert stats["recorded_total"] == 3
        assert stats["held"] == 2


class TestTracePropagation:
    """The ISSUE's cross-tier guarantee: a rendered page's trace holds
    exactly one rdb span per executed statement (and no cache spans
    when no cache level is deployed)."""

    def _assert_trace_matches_query_log(self, app, url):
        app.ctx.obs.trace_every = 1  # deterministic: trace every request
        db = app.database
        selects_before = db.stats.selects
        queries_before = app.ctx.stats.queries_executed
        response = app.get(url)
        assert response.status == 200
        t = response.trace
        assert t is not None
        executed = db.stats.selects - selects_before
        assert executed > 0
        assert executed == app.ctx.stats.queries_executed - queries_before
        rdb_spans = t.spans_in("rdb")
        assert len(rdb_spans) == executed
        assert all(s.name == "rdb.select" for s in rdb_spans)
        assert t.spans_in("cache") == []  # no cache levels deployed
        assert len(t.spans_named("services.unit")) >= 1

    def test_volumes_page(self, acm_app):
        self._assert_trace_matches_query_log(
            acm_app, acm_app.page_url("public", "Volumes")
        )

    def test_volume_detail_page(self, acm_app, acm_oids):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volume Page")
        unit = page.unit("Volume data")
        url = (f"/{view.id}/{page.id}"
               f"?{unit.id}.oid={acm_oids['volumes'][0]}")
        self._assert_trace_matches_query_log(acm_app, url)

    def test_batch_loader_savings_counter(self, acm_app, acm_oids):
        from repro.services.batching import load_grouped

        sql = ("SELECT oid, number FROM issue "
               "WHERE volume_to_issue_oid = :parent")
        grouped = load_grouped(
            acm_app.ctx, sql, "parent", acm_oids["volumes"]
        )
        assert grouped is not None and len(grouped) == 2
        counters = acm_app.ctx.obs.metrics.counters("services.batch.")
        # two parents collapsed into one IN-list query: one query saved
        assert counters["services.batch.saved_queries"] == 1


def _cached_app():
    """The ACM application with all three cache levels active."""
    model = build_acm_webml()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    stylesheet = default_stylesheet("ACM")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    fragment_cache = FragmentCache()
    page_cache = PageCache()
    renderer = PresentationRenderer(
        project.skeletons, stylesheet, fragment_cache=fragment_cache
    )
    app = WebApplication(model, view_renderer=renderer,
                         bean_cache=UnitBeanCache(), page_cache=page_cache)
    seed_acm(app)
    app.ctx.stats.reset()
    app.ctx.obs.trace_every = 1  # deterministic: trace every request
    return app, page_cache, fragment_cache, app.ctx.bean_cache


class TestCacheProbeSpans:
    def test_first_request_misses_every_level(self):
        app, page_cache, fragment_cache, bean_cache = _cached_app()
        t = app.get(app.page_url("public", "Volumes")).trace
        (page_probe,) = [s for s in t.spans() if s.name == "cache.page"]
        assert page_probe.tags["hit"] is False
        bean_probes = [s for s in t.spans() if s.name == "cache.bean"]
        frag_probes = [s for s in t.spans() if s.name == "cache.fragment"]
        # one span per probe: the trace and the cache stats must agree
        assert len(bean_probes) == bean_cache.stats.lookups > 0
        assert len(frag_probes) == fragment_cache.stats.lookups > 0
        assert all(s.tags["hit"] is False
                   for s in bean_probes + frag_probes)
        assert len(t.spans_in("rdb")) > 0

    def test_page_hit_short_circuits_the_tree(self):
        app, *_ = _cached_app()
        url = app.page_url("public", "Volumes")
        app.get(url)
        t = app.get(url).trace
        (page_probe,) = [s for s in t.spans() if s.name == "cache.page"]
        assert page_probe.tags["hit"] is True
        assert t.spans_in("rdb") == []
        assert t.spans_in("services") == []

    def test_probe_counts_match_stats_after_page_flush(self):
        app, page_cache, fragment_cache, bean_cache = _cached_app()
        url = app.page_url("public", "Volumes")
        app.get(url)
        page_cache.flush()
        bean_before = bean_cache.stats.lookups
        frag_before = fragment_cache.stats.lookups
        t = app.get(url).trace
        bean_probes = [s for s in t.spans() if s.name == "cache.bean"]
        frag_probes = [s for s in t.spans() if s.name == "cache.fragment"]
        assert len(bean_probes) == bean_cache.stats.lookups - bean_before > 0
        assert len(frag_probes) == \
            fragment_cache.stats.lookups - frag_before > 0
        # lower levels survived the page flush: every probe is a hit,
        # so the rebuild never reaches the data tier
        assert all(s.tags["hit"] is True
                   for s in bean_probes + frag_probes)
        assert t.spans_in("rdb") == []


class TestTraceDelivery:
    def test_response_carries_the_trace(self, acm_app):
        acm_app.ctx.obs.trace_every = 1
        response = acm_app.get(acm_app.page_url("public", "Volumes"))
        assert response.trace is not None
        assert response.trace.root.name.startswith("GET /")
        # the wire header is opt-in
        assert "X-Trace" not in response.headers

    def test_sampling_traces_one_request_in_every_n(self, acm_app):
        from repro.obs import Observability

        obs = acm_app.ctx.obs
        every = Observability.DEFAULT_TRACE_EVERY
        assert obs.trace_every == every  # the shipped default
        url = acm_app.page_url("public", "Volumes")
        traced = [
            acm_app.get(url).trace is not None for _ in range(2 * every)
        ]
        assert traced.count(True) == 2  # ticks 0 and ``every``
        assert traced[0] is True and traced[1] is False

    def test_latency_histogram_rides_the_sampling_draw(self, acm_app):
        # unsampled requests must not pay for clock reads: only the
        # traced requests feed the request-latency histogram
        url = acm_app.page_url("public", "Volumes")
        histogram = acm_app.ctx.obs.metrics.histogram("http.request_seconds")
        for _ in range(acm_app.ctx.obs.trace_every):
            acm_app.get(url)
        assert histogram.count == 1
        # every request still counts: the dispatcher's per-status dict
        # is bumped unsampled, and /_status derives the total from it
        counts = acm_app.front.status_counts
        assert sum(counts.values()) == acm_app.ctx.obs.trace_every

    def test_x_trace_header_bypasses_sampling(self, acm_app):
        url = acm_app.page_url("public", "Volumes")
        acm_app.get(url)  # consume the first sampling slot
        response = acm_app.get(url, headers={"X-Trace": "1"})
        summary = response.headers["X-Trace"]
        assert summary.startswith("GET /")
        assert "rdb=" in summary

    def test_disabled_tracing_leaves_no_trace(self, acm_app):
        acm_app.ctx.obs.disable()
        response = acm_app.get(
            acm_app.page_url("public", "Volumes"),
            headers={"X-Trace": "1"},
        )
        assert response.status == 200
        assert response.trace is None
        assert "X-Trace" not in response.headers


class TestStatusEndpoint:
    def test_text_rendition(self, acm_app):
        acm_app.get(acm_app.page_url("public", "Volumes"))
        response = acm_app.get("/_status")
        assert response.status == 200
        assert response.content_type == "text/plain"
        assert "repro status" in response.body
        assert "http.requests" in response.body
        assert "rdb.statement_seconds" in response.body

    def test_json_rendition(self, acm_app):
        acm_app.get(acm_app.page_url("public", "Volumes"))
        response = acm_app.get("/_status?format=json")
        assert response.content_type == "application/json"
        doc = json.loads(response.body)
        assert doc["requests_served"] >= 1
        counters = doc["metrics"]["counters"]
        assert counters["http.requests"] >= 1
        assert counters["http.status.200"] >= 1
        assert "rdb.statement_seconds" in doc["metrics"]["histograms"]
        assert doc["metrics"]["external"]["rdb.pool"]["size"] == 8
        assert doc["slow_query_log"]["recorded_total"] == 0

    def test_accept_header_negotiates_json(self, acm_app):
        response = acm_app.get(
            "/_status", headers={"Accept": "application/json"}
        )
        assert response.content_type == "application/json"
        json.loads(response.body)

    def test_cache_levels_are_listed(self):
        app, *_ = _cached_app()
        doc = json.loads(app.get("/_status?format=json").body)
        assert doc["cache_levels"] == ["bean", "fragment", "page"]


class TestRdbInstrumentation:
    def test_slow_statements_recorded_with_access_path(self, acm_app):
        acm_app.database.slow_log.threshold_seconds = 0.0
        acm_app.get(acm_app.page_url("public", "Volumes"))
        log = acm_app.database.slow_log
        assert len(log) > 0
        assert all(e.access for e in log.entries())
        status = acm_app.get("/_status").body
        assert "[slow queries]" in status

    def test_statement_histogram_counts_every_statement(self, acm_app):
        hist = acm_app.ctx.obs.metrics.histogram("rdb.statement_seconds")
        before = hist.count
        selects_before = acm_app.database.stats.selects
        acm_app.get(acm_app.page_url("public", "Volumes"))
        assert hist.count - before == \
            acm_app.database.stats.selects - selects_before

    def test_pool_contention_feeds_histogram_and_gauge(self, acm_app):
        pool = acm_app.ctx.pool
        metrics = acm_app.ctx.obs.metrics
        held = [pool.acquire() for _ in range(pool.size)]
        released = threading.Event()

        def waiter():
            connection = pool.acquire(timeout=5)
            released.set()
            connection.close()

        worker = threading.Thread(target=waiter)
        worker.start()
        time.sleep(0.02)
        held.pop().close()
        assert released.wait(5)
        worker.join(5)
        for connection in held:
            connection.close()
        assert metrics.histogram("rdb.pool.wait_seconds").count >= 1
        assert metrics.gauge("rdb.pool.in_use").max_value == pool.size


class TestAppServerRegistryStats:
    def test_counters_live_in_the_registry(self, acm_app):
        from repro.appserver import ThreadedAppServer

        url = acm_app.page_url("public", "Volumes")
        with ThreadedAppServer(acm_app, workers=2) as server:
            first = server.get(url).result(5)
            server.get(url, headers={"If-None-Match": first.etag}).result(5)
        assert server.status_counts == {200: 1, 304: 1}
        assert server.bytes_on_wire == first.wire_length
        by_name = server.metrics.counters("appserver.status.")
        assert by_name == {"appserver.status.200": 1,
                          "appserver.status.304": 1}
        # and the app's /_status sees the server through its collector
        snapshot = acm_app.ctx.obs.metrics.snapshot()
        assert snapshot["external"]["appserver"]["requests_served"] == 2
