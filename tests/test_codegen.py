"""Tests for the code generators: SQL, descriptors, controller config,
skeletons, the project facade, and the conventional baseline."""

import pytest

from repro.codegen import (
    generate_controller_config,
    generate_conventional,
    generate_operation_descriptor,
    generate_page_descriptor,
    generate_page_skeleton,
    generate_project,
    generate_unit_descriptor,
    operation_statements,
    unit_queries,
)
from repro.codegen.sqlgen import sql_literal
from repro.er.mapping import map_to_relational
from repro.rdb.sqlparser import parse_select, parse_sql
from repro.xmlkit import parse_xml


@pytest.fixture
def mapping(acm_webml):
    return map_to_relational(acm_webml.data_model)


def find_unit(model, page_name, unit_name, view_name="public"):
    return model.find_site_view(view_name).find_page(page_name).unit(unit_name)


def find_operation(model, name, view_name="admin"):
    view = model.find_site_view(view_name)
    return next(o for o in view.operations if o.name == name)


class TestSqlLiteral:
    def test_literals(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"
        assert sql_literal(42) == "42"
        assert sql_literal(2.5) == "2.5"
        assert sql_literal("it's") == "'it''s'"


class TestUnitSql:
    def test_data_unit_query(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Volume Page", "Volume data")
        generated = unit_queries(unit, mapping)
        assert generated["query"] == (
            "SELECT t0.oid AS oid, t0.number AS number, t0.year AS year, "
            "t0.title AS title FROM volume t0 WHERE t0.oid = :oid "
            "ORDER BY t0.oid"
        )
        assert [p.slot for p in generated["inputs"]] == ["oid"]
        assert generated["inputs"][0].value_type == "int"
        parse_select(generated["query"])  # must be valid SQL

    def test_index_with_order(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Volumes", "All volumes")
        generated = unit_queries(unit, mapping)
        assert "ORDER BY t0.year ASC" in generated["query"]

    def test_like_selector_marks_contains(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "SearchResults", "Matching papers")
        generated = unit_queries(unit, mapping)
        assert "t0.title LIKE :keyword" in generated["query"]
        assert generated["inputs"][0].match == "contains"

    def test_role_selector_via_bridge(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Paper details", "Authors")
        generated = unit_queries(unit, mapping)
        assert "JOIN authorship r1 ON r1.author_oid = t0.oid" in generated["query"]
        assert "r1.paper_oid = :paper" in generated["query"]
        parse_select(generated["query"])

    def test_inverse_role_selector_joins_back(self, acm_webml, mapping):
        # A unit over Volume selected by IssueToVolume (inverse role).
        page = acm_webml.find_site_view("public").find_page("Volumes")
        from repro.webml import Selector

        unit = page.data_unit(
            "Issue's volume", "Volume",
            selector=Selector.over_role("IssueToVolume", "issue"),
        )
        generated = unit_queries(unit, mapping)
        assert "JOIN issue r1 ON r1.volume_to_issue_oid = t0.oid" \
            in generated["query"]
        assert "r1.oid = :issue" in generated["query"]
        parse_select(generated["query"])

    def test_scroller_has_count_query(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Browse papers", "Paper scroller")
        generated = unit_queries(unit, mapping)
        assert generated["count_query"] == (
            "SELECT COUNT(*) AS total FROM paper t0"
        )
        parse_select(generated["count_query"])

    def test_hierarchical_levels(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Volume Page", "Issues&Papers")
        generated = unit_queries(unit, mapping)
        assert "t0.volume_to_issue_oid = :volume_to_issue" in generated["query"]
        assert len(generated["levels"]) == 1
        level = generated["levels"][0]
        assert level.entity == "Paper"
        assert "t0.issue_to_paper_oid = :parent" in level.query
        parse_select(level.query)

    def test_entry_unit_has_no_query(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Volume Page", "Enter keyword")
        generated = unit_queries(unit, mapping)
        assert generated["query"] is None

    def test_display_attributes_default_to_all(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Paper details", "Paper data")
        generated = unit_queries(unit, mapping)
        for attribute in ("title", "abstract", "pages"):
            assert f"AS {attribute}" in generated["query"]

    def test_literal_value_selector(self, acm_webml, mapping):
        from repro.webml import AttributeCondition, Selector

        page = acm_webml.find_site_view("public").find_page("Volumes")
        unit = page.index_unit(
            "Recent volumes", "Volume",
            selector=Selector([AttributeCondition("year", ">", value=2000)]),
        )
        generated = unit_queries(unit, mapping)
        assert "t0.year > 2000" in generated["query"]
        assert generated["inputs"] == []


class TestOperationSql:
    def test_create_statement(self, acm_webml, mapping):
        operation = find_operation(acm_webml, "CreatePaper")
        generated = operation_statements(operation, mapping)
        statement = generated["statements"][0]
        assert statement.sql == (
            "INSERT INTO paper (title, pages) VALUES (:title, :pages)"
        )
        assert statement.captures_new_oid
        parse_sql(statement.sql)

    def test_delete_statement(self, acm_webml, mapping):
        operation = find_operation(acm_webml, "DeletePaper")
        generated = operation_statements(operation, mapping)
        assert generated["statements"][0].sql == (
            "DELETE FROM paper WHERE oid = :oid"
        )
        assert generated["statements"][0].params == [("oid", "oid", "int")]

    def test_modify_statement(self, acm_webml, mapping):
        view = acm_webml.find_site_view("admin")
        operation = view.modify_op("EditPaper", "Paper", ["title", "pages"])
        generated = operation_statements(operation, mapping)
        assert generated["statements"][0].sql == (
            "UPDATE paper SET title = :title, pages = :pages WHERE oid = :oid"
        )

    def test_connect_fk_forward(self, acm_webml, mapping):
        view = acm_webml.find_site_view("admin")
        operation = view.connect_op("AttachIssue", "VolumeToIssue")
        generated = operation_statements(operation, mapping)
        assert generated["statements"][0].sql == (
            "UPDATE issue SET volume_to_issue_oid = :source_oid "
            "WHERE oid = :target_oid"
        )

    def test_connect_bridge(self, acm_webml, mapping):
        view = acm_webml.find_site_view("admin")
        operation = view.connect_op("AddAuthor", "Authorship")
        generated = operation_statements(operation, mapping)
        assert generated["statements"][0].sql == (
            "INSERT INTO authorship (paper_oid, author_oid) "
            "VALUES (:source_oid, :target_oid)"
        )

    def test_disconnect_bridge_inverse(self, acm_webml, mapping):
        view = acm_webml.find_site_view("admin")
        operation = view.disconnect_op("RemoveAuthorship", "AuthorOf")
        generated = operation_statements(operation, mapping)
        sql = generated["statements"][0].sql
        # AuthorOf runs Author→Paper: source slot holds the author.
        assert "paper_oid = :target_oid" in sql
        assert "author_oid = :source_oid" in sql

    def test_login_query(self, acm_webml, mapping):
        operation = find_operation(acm_webml, "Login")
        generated = operation_statements(operation, mapping)
        assert generated["user_query"] == (
            "SELECT oid AS oid FROM user WHERE username = :username "
            "AND password = :password"
        )

    def test_logout_has_no_statements(self, acm_webml, mapping):
        operation = find_operation(acm_webml, "Logout")
        generated = operation_statements(operation, mapping)
        assert generated["statements"] == []


class TestPageDescriptorGeneration:
    def test_computation_order_respects_transport(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        descriptor = generate_page_descriptor(acm_webml, page)
        volume_data = page.unit("Volume data")
        hierarchy = page.unit("Issues&Papers")
        order = descriptor.unit_order
        assert order.index(volume_data.id) < order.index(hierarchy.id)

    def test_transport_becomes_unit_binding(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        descriptor = generate_page_descriptor(acm_webml, page)
        hierarchy = page.unit("Issues&Papers")
        binding = descriptor.bindings_for(hierarchy.id)[0]
        assert binding.source == "unit"
        assert binding.source_unit_id == page.unit("Volume data").id
        assert binding.slot == "volume_to_issue"

    def test_unfed_slot_becomes_request_binding(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        descriptor = generate_page_descriptor(acm_webml, page)
        volume_data = page.unit("Volume data")
        binding = descriptor.bindings_for(volume_data.id)[0]
        assert binding.source == "request"
        assert binding.request_param == f"{volume_data.id}.oid"

    def test_navigation_resolves_unit_targets_to_pages(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        descriptor = generate_page_descriptor(acm_webml, page)
        hierarchy = page.unit("Issues&Papers")
        nav = descriptor.navigation_from(hierarchy.id)
        assert len(nav) == 1
        paper_page = acm_webml.find_site_view("public").find_page("Paper details")
        assert nav[0].target_page_id == paper_page.id
        paper_data = paper_page.unit("Paper data")
        assert nav[0].parameters == [("oid", f"{paper_data.id}.oid")]

    def test_navigation_to_operation(self, acm_webml):
        page = acm_webml.find_site_view("admin").find_page("Admin Home")
        descriptor = generate_page_descriptor(acm_webml, page)
        operation_targets = [
            n for n in descriptor.navigation if n.target_kind == "operation"
        ]
        assert len(operation_targets) >= 2  # create + delete (+ logout via page)


class TestUnitDescriptorGeneration:
    def test_dependencies_recorded(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Volume Page", "Issues&Papers")
        descriptor = generate_unit_descriptor(unit, mapping)
        assert descriptor.depends_on_entities == ["Issue", "Paper"]
        assert set(descriptor.depends_on_roles) == {
            "VolumeToIssue", "IssueToPaper"
        }

    def test_scroller_block_size(self, acm_webml, mapping):
        unit = find_unit(acm_webml, "Browse papers", "Paper scroller")
        descriptor = generate_unit_descriptor(unit, mapping)
        assert descriptor.block_size == 2


class TestOperationDescriptorGeneration:
    def test_ok_ko_targets(self, acm_webml, mapping):
        operation = find_operation(acm_webml, "CreatePaper")
        descriptor = generate_operation_descriptor(acm_webml, operation, mapping)
        admin_home = acm_webml.find_site_view("admin").find_page("Admin Home")
        assert descriptor.ok.target_page_id == admin_home.id
        assert descriptor.ko.target_page_id == admin_home.id
        assert descriptor.writes_entities == ["Paper"]


class TestControllerConfig:
    def test_config_covers_all_pages_and_operations(self, acm_webml):
        config = parse_xml(generate_controller_config(acm_webml))
        actions = config.find("actionMappings").find_all("action")
        page_actions = [a for a in actions if a.get("type") == "PageAction"]
        op_actions = [a for a in actions if a.get("type") == "OperationAction"]
        assert len(page_actions) == len(acm_webml.all_pages())
        assert len(op_actions) == len(acm_webml.all_operations())

    def test_operation_forwards_present(self, acm_webml):
        config = parse_xml(generate_controller_config(acm_webml))
        actions = config.find("actionMappings").find_all("action")
        create_action = next(
            a for a in actions
            if a.get("type") == "OperationAction"
            and "CreatePaper" in _operation_name(acm_webml, a.get("operation"))
        )
        forwards = {f.get("name") for f in create_action.find_all("forward")}
        assert forwards == {"ok", "ko"}

    def test_home_pages_with_login_flag(self, acm_webml):
        config = parse_xml(generate_controller_config(acm_webml))
        homes = {
            h.get("siteview"): h for h in config.find("homePages").find_all("home")
        }
        admin = acm_webml.find_site_view("admin")
        assert homes[admin.id].get("requiresLogin") == "true"


def _operation_name(model, operation_id):
    return model.element(operation_id).name


class TestSkeletons:
    def test_skeleton_contains_all_unit_tags(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        skeleton = parse_xml(generate_page_skeleton(page))
        tags = [e.tag for e in skeleton.iter() if e.tag.startswith("webml:")]
        assert tags == ["webml:dataUnit", "webml:hierarchicalUnit",
                        "webml:entryUnit"]

    def test_layout_category_controls_grid(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volume Page")
        page.layout_category = "two-columns"
        skeleton = parse_xml(generate_page_skeleton(page))
        first_row = skeleton.descendants("tr")[0]
        assert len(first_row.find_all("td")) == 2


class TestProjectGeneration:
    def test_counts_match_model(self, acm_webml):
        project = generate_project(acm_webml)
        counts = project.counts()
        stats = acm_webml.statistics()
        assert counts["page_templates"] == stats["pages"]
        assert counts["unit_descriptors"] == stats["units"]
        assert counts["operation_descriptors"] == stats["operations"]
        assert counts["sql_statements"] > 0
        assert counts["tables"] == 6  # 5 entities + 1 bridge

    def test_as_files_is_complete(self, acm_webml):
        project = generate_project(acm_webml)
        files = project.as_files()
        assert "sql/schema.sql" in files
        assert "conf/controller-config.xml" in files
        skeletons = [p for p in files if p.startswith("skeletons/")]
        assert len(skeletons) == len(acm_webml.all_pages())

    def test_generated_sql_all_parses(self, acm_webml):
        project = generate_project(acm_webml)
        for descriptor in project.unit_descriptors:
            if descriptor.query:
                parse_select(descriptor.query)
            if descriptor.count_query:
                parse_select(descriptor.count_query)
            for level in descriptor.levels:
                parse_select(level.query)
        for descriptor in project.operation_descriptors:
            for statement in descriptor.statements:
                parse_sql(statement.sql)

    def test_invalid_model_rejected(self, acm_webml):
        page = acm_webml.find_site_view("public").find_page("Volumes")
        page.data_unit("orphan", "Paper")  # oid never fed
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            generate_project(acm_webml)


class TestConventionalBaseline:
    def test_one_class_per_unit_and_page(self, acm_webml):
        project = generate_conventional(acm_webml)
        stats = acm_webml.statistics()
        counts = project.class_count()
        assert counts["unit_service_classes"] == stats["units"]
        assert counts["page_service_classes"] == stats["pages"]

    def test_sources_compile(self, acm_webml):
        project = generate_conventional(acm_webml)
        for path, source in project.files.items():
            compile(source, path, "exec")

    def test_loc_grows_with_model(self, acm_webml):
        project = generate_conventional(acm_webml)
        assert project.total_loc() > 100
