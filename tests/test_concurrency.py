"""Thread-safety tests across the whole request path.

One test class per tier of the concurrent runtime: the readers-writer
lock, the rdb engine under concurrent readers/writers, the blocking
connection pool, the single-flight caches, the session store, the
component container, and the threaded app server front end.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.appserver import ComponentContainer, ComponentDescriptor, ThreadedAppServer
from repro.caching import FragmentCache, UnitBeanCache
from repro.errors import DatabaseError
from repro.mvc import SessionStore
from repro.rdb import ConnectionPool, Database
from repro.services import UnitBean
from repro.util import ReadWriteLock
from repro.workloads.bookstore import build_bookstore_application


def run_threads(count: int, target, *args) -> list:
    """Run ``target(index, *args)`` on ``count`` threads; re-raise the
    first worker exception so failures are loud."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            target(index, *args)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return errors


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        peak_readers = [0]
        writer_overlap = []

        def reader(_index):
            with lock.read_locked():
                peak_readers[0] = max(peak_readers[0], lock.active_readers)
                if lock.held_by_writer():
                    writer_overlap.append(True)
                time.sleep(0.01)

        def writer(_index):
            with lock.write_locked():
                if lock.active_readers:
                    writer_overlap.append(True)
                time.sleep(0.005)

        run_threads(4, reader)
        run_threads(2, writer)
        threads = [threading.Thread(target=reader, args=(0,)) for _ in range(3)]
        threads += [threading.Thread(target=writer, args=(0,)) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert peak_readers[0] >= 2  # reads genuinely overlapped
        assert not writer_overlap   # writes never overlapped anything

    def test_write_reentrancy_and_read_under_write(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():      # a transaction's own statement
                with lock.read_locked():   # a query inside a transaction
                    assert lock.write_held_by_current_thread()

    def test_upgrade_refused(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()


@pytest.fixture
def counter_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE counter (oid INTEGER NOT NULL AUTOINCREMENT,"
        " n INTEGER NOT NULL, PRIMARY KEY (oid))"
    )
    db.insert_row("counter", {"n": 0})
    return db


class TestDatabaseConcurrency:
    def test_no_lost_updates(self, counter_db):
        """Read-modify-write UPDATEs from many threads never lose one."""
        increments_per_thread = 25
        workers = 4

        def bump(_index):
            for _ in range(increments_per_thread):
                counter_db.execute("UPDATE counter SET n = n + 1 WHERE oid = 1")

        run_threads(workers, bump)
        result = counter_db.query("SELECT n FROM counter WHERE oid = 1")
        assert result.scalar() == workers * increments_per_thread

    def test_transaction_is_all_or_nothing_to_readers(self, counter_db):
        """A reader never observes a transaction's intermediate state."""
        stop = threading.Event()
        torn_reads = []

        def writer(_index):
            for _ in range(20):
                with counter_db.transaction():
                    counter_db.execute(
                        "UPDATE counter SET n = n + 1 WHERE oid = 1"
                    )
                    counter_db.execute(
                        "UPDATE counter SET n = n + 1 WHERE oid = 1"
                    )
            stop.set()

        def reader(_index):
            while not stop.is_set():
                n = counter_db.query(
                    "SELECT n FROM counter WHERE oid = 1"
                ).scalar()
                if n % 2 != 0:  # both increments or neither
                    torn_reads.append(n)

        run_threads(3, lambda i: writer(i) if i == 0 else reader(i))
        assert not torn_reads
        final = counter_db.query("SELECT n FROM counter WHERE oid = 1").scalar()
        assert final == 40

    def test_last_insert_id_is_per_thread(self, counter_db):
        barrier = threading.Barrier(4)
        seen: dict[int, bool] = {}

        def insert(index):
            barrier.wait()
            row = counter_db.insert_row("counter", {"n": index})
            barrier.wait()  # everyone inserted before anyone checks
            seen[index] = counter_db.last_insert_id == row["oid"]

        run_threads(4, insert)
        assert all(seen.values()) and len(seen) == 4

    def test_select_counters_not_lost(self, counter_db):
        counter_db.stats.reset()
        per_thread = 50

        def read(_index):
            for _ in range(per_thread):
                counter_db.query("SELECT n FROM counter WHERE oid = 1")

        run_threads(4, read)
        assert counter_db.stats.selects == 4 * per_thread


class TestConnectionPoolBlocking:
    def test_acquire_blocks_until_release(self, counter_db):
        pool = ConnectionPool(counter_db, size=1)
        held = pool.acquire()
        acquired_after_wait = []

        def waiter(_index):
            connection = pool.acquire(timeout=5.0)
            acquired_after_wait.append(connection)
            connection.close()

        thread = threading.Thread(target=waiter, args=(0,))
        thread.start()
        time.sleep(0.05)  # the waiter is parked on the condition
        assert not acquired_after_wait
        held.close()
        thread.join(timeout=5.0)
        assert len(acquired_after_wait) == 1
        stats = pool.wait_stats()
        assert stats["wait_count"] == 1
        assert stats["total_wait_seconds"] > 0
        assert stats["exhausted_failures"] == 0

    def test_pool_under_contention_serves_everyone(self, counter_db):
        pool = ConnectionPool(counter_db, size=2)
        per_thread = 20

        def borrow(_index):
            for _ in range(per_thread):
                connection = pool.acquire(timeout=5.0)
                try:
                    connection.execute("SELECT n FROM counter WHERE oid = 1")
                finally:
                    connection.close()

        run_threads(6, borrow)
        assert pool.in_use == 0
        assert pool.acquired_total == 6 * per_thread
        assert pool.peak_in_use <= 2


class TestBeanCacheConcurrency:
    @staticmethod
    def _bean(i: int) -> UnitBean:
        return UnitBean(f"u{i}", f"unit {i}", "data")

    def test_single_flight_computes_once(self):
        cache = UnitBeanCache()
        computing = threading.Event()
        release = threading.Event()
        compute_calls = []

        def compute():
            compute_calls.append(1)
            computing.set()
            release.wait(5.0)
            return self._bean(1)

        results = []

        def request(_index):
            results.append(cache.get_or_compute("k", compute))

        threads = [threading.Thread(target=request, args=(i,)) for i in range(4)]
        threads[0].start()
        computing.wait(5.0)      # leader is inside compute()
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)         # followers are parked on the flight event
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(compute_calls) == 1
        assert len(results) == 4 and len({id(r) for r in results}) == 1
        assert cache.stats.coalesced >= 1

    def test_invalidation_during_compute_is_not_cached(self):
        """A bean computed from pre-invalidation data must not be served
        after the operation invalidated its dependencies."""
        cache = UnitBeanCache()
        in_compute = threading.Event()
        finish_compute = threading.Event()

        def compute():
            in_compute.set()
            finish_compute.wait(5.0)
            return self._bean(1)

        leader = threading.Thread(
            target=lambda: cache.get_or_compute(
                "k", compute, entities=("Book",)
            )
        )
        leader.start()
        in_compute.wait(5.0)
        cache.invalidate_writes(entities=("Book",))  # the operation commits
        finish_compute.set()
        leader.join(timeout=5.0)
        assert cache.get("k") is None  # the stale bean was never stored

    def test_no_lost_stat_increments(self):
        cache = UnitBeanCache(max_entries=10_000)
        per_thread = 100
        workers = 4

        def churn(index):
            for i in range(per_thread):
                key = (index, i)
                cache.get(key)                    # one miss
                cache.put(key, self._bean(i))     # one put
                assert cache.get(key) is not None  # one hit

        run_threads(workers, churn)
        total = workers * per_thread
        assert cache.stats.misses == total
        assert cache.stats.puts == total
        assert cache.stats.hits == total
        assert cache.stats.lookups == 2 * total

    def test_concurrent_invalidation_and_puts_stay_consistent(self):
        cache = UnitBeanCache()
        rounds = 50

        def writer(_index):
            for _ in range(rounds):
                cache.invalidate_writes(entities=("Book",))

        def putter(index):
            for i in range(rounds):
                cache.put((index, i), self._bean(i), entities=("Book",))

        run_threads(4, lambda i: writer(i) if i % 2 else putter(i))
        # after the dust settles the dependency index matches the entries
        assert cache.dependents_of(entity="Book") == len(cache)


class TestFragmentCacheConcurrency:
    def test_single_flight_renders_once(self):
        cache = FragmentCache()
        calls = []
        gate = threading.Event()

        def render():
            calls.append(1)
            gate.wait(5.0)
            return "<div>once</div>"

        def request(_index):
            assert cache.get_or_render("frag", render) == "<div>once</div>"

        threads = [threading.Thread(target=request, args=(i,)) for i in range(4)]
        threads[0].start()
        time.sleep(0.05)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(calls) == 1


class TestSessionStoreConcurrency:
    def test_concurrent_creation_yields_distinct_sessions(self):
        store = SessionStore()
        sessions = []
        lock = threading.Lock()

        def create(_index):
            for _ in range(50):
                session = store.get_or_create(None)
                with lock:
                    sessions.append(session.id)

        run_threads(4, create)
        assert len(sessions) == 200
        assert len(set(sessions)) == 200  # no id handed out twice
        assert len(store) == 200

    def test_same_id_resolves_to_one_session(self):
        store = SessionStore()
        resolved = []
        lock = threading.Lock()

        def resolve(_index):
            session = store.get_or_create("shared")
            with lock:
                resolved.append(session)

        run_threads(8, resolve)
        assert len({id(s) for s in resolved}) == 1


class _Component:
    def serve(self):
        time.sleep(0.002)
        return "ok"


class TestContainerConcurrency:
    def test_concurrent_invokes_respect_max_instances(self):
        container = ComponentContainer(block_when_exhausted=True)
        container.deploy(ComponentDescriptor(
            "svc", _Component, min_instances=0, max_instances=3,
        ))

        def client(_index):
            for _ in range(10):
                assert container.invoke("svc", "serve") == "ok"

        run_threads(6, client)
        stats = container.pool_stats("svc")
        assert stats["busy"] == 0
        assert stats["peak_resident"] <= 3
        assert stats["created_total"] <= 3
        assert container.invocations == 60

    def test_sweep_races_with_invokes(self):
        container = ComponentContainer(block_when_exhausted=True)
        container.deploy(ComponentDescriptor(
            "svc", _Component, min_instances=1, max_instances=4,
            idle_timeout=0.0001,
        ))
        stop = threading.Event()

        def sweeper(_index):
            while not stop.is_set():
                container.sweep()

        def client(_index):
            for _ in range(20):
                container.invoke("svc", "serve")
            stop.set()

        run_threads(3, lambda i: sweeper(i) if i == 0 else client(i))
        stats = container.pool_stats("svc")
        assert stats["busy"] == 0
        assert stats["resident"] >= 0


class TestThreadedAppServer:
    def test_serves_requests_across_workers(self):
        app, _oids = build_bookstore_application()
        urls = [app.page_url("shop", "Home")] * 12
        with ThreadedAppServer(app, workers=4) as server:
            futures = [server.get(url) for url in urls]
            responses = [f.result(timeout=10.0) for f in futures]
        assert all(r.status == 200 for r in responses)
        stats = server.stats()
        assert stats["requests_served"] == 12
        assert stats["failures"] == 0
        assert sum(stats["served_per_worker"]) == 12

    def test_submit_requires_running_server(self):
        from repro.errors import ContainerError

        app, _oids = build_bookstore_application()
        server = ThreadedAppServer(app, workers=1)
        with pytest.raises(ContainerError, match="not running"):
            server.get("/")
