"""Tests for the SQL tokenizer/parser and expression evaluation semantics."""

import pytest

from repro.errors import QueryError, SqlSyntaxError
from repro.rdb.expr import (
    AggregateCall,
    ColumnRef,
    Comparison,
    Literal,
    Param,
    compare_values,
)
from repro.rdb.sqlparser import (
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Select,
    Update,
    parse_select,
    parse_sql,
    tokenize,
)


class _Scope:
    """Minimal scope for expression tests: flat name→value mapping."""

    def __init__(self, **values):
        self.values = values

    def lookup(self, table, column):
        key = f"{table}.{column}" if table else column
        if key not in self.values:
            raise QueryError(f"unknown column {key}")
        return self.values[key]


def evaluate(sql_fragment: str, scope=None, params=None):
    select = parse_select(f"SELECT {sql_fragment} AS x FROM t")
    return select.items[0].expr.evaluate(scope or _Scope(), params or {})


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.kind for t in tokens[:-1]] == ["keyword", "number"]

    def test_named_and_positional_params(self):
        tokens = tokenize("WHERE a = :volume AND b = ?")
        kinds = [(t.kind, t.value) for t in tokens if t.kind in ("param", "punct")]
        assert ("param", "volume") in kinds
        assert ("punct", "?") in kinds

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT ^")

    def test_quoted_identifier(self):
        tokens = tokenize('"Select"')
        assert tokens[0].kind == "name" and tokens[0].value == "Select"

    def test_decimal_vs_qualifier_dot(self):
        tokens = tokenize("t.col 3.5")
        assert [t.kind for t in tokens[:-1]] == ["name", "punct", "name", "number"]
        assert tokens[3].value == "3.5"


class TestSelectParsing:
    def test_simple_select(self):
        select = parse_select("SELECT a, b FROM t")
        assert isinstance(select, Select)
        assert [item.expr.column for item in select.items] == ["a", "b"]
        assert select.source.table == "t"

    def test_star_and_qualified_star(self):
        select = parse_select("SELECT *, t.* FROM t")
        assert select.items[0].is_star and select.items[0].star_table is None
        assert select.items[1].star_table == "t"

    def test_aliases(self):
        select = parse_select("SELECT a AS first, b second FROM t x")
        assert select.items[0].alias == "first"
        assert select.items[1].alias == "second"
        assert select.source.alias == "x"

    def test_joins(self):
        select = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON b.y = c.y INNER JOIN d ON c.z = d.z"
        )
        assert [j.kind for j in select.joins] == ["inner", "left", "inner"]

    def test_group_having_order_limit(self):
        select = parse_select(
            "SELECT kind, COUNT(*) n FROM t GROUP BY kind HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, kind ASC LIMIT 10 OFFSET 5"
        )
        assert len(select.group_by) == 1
        assert select.having is not None
        assert select.order_by[0].descending is True
        assert select.order_by[1].descending is False
        assert (select.limit, select.offset) == (10, 5)

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        select = parse_select(
            "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(b), MIN(b), MAX(b) FROM t"
        )
        calls = [item.expr for item in select.items]
        assert all(isinstance(c, AggregateCall) for c in calls)
        assert calls[0].argument is None
        assert calls[1].distinct

    def test_count_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError, match=r"only valid for COUNT"):
            parse_select("SELECT SUM(*) FROM t")

    def test_not_a_select_rejected(self):
        with pytest.raises(SqlSyntaxError, match="expected a SELECT"):
            parse_select("DELETE FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_sql("SELECT a FROM t extra junk")

    def test_positional_params_numbered(self):
        select = parse_select("SELECT a FROM t WHERE a = ? AND b = ?")
        params = []

        def walk(node):
            if isinstance(node, Param):
                params.append(node.name)
            for attr in ("left", "right", "operand"):
                child = getattr(node, attr, None)
                if child is not None and hasattr(child, "evaluate"):
                    walk(child)

        walk(select.where)
        assert params == ["1", "2"]


class TestDmlDdlParsing:
    def test_insert_multi_row(self):
        statement = parse_sql(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_arity_check(self):
        with pytest.raises(SqlSyntaxError, match="columns but"):
            parse_sql("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        statement = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE oid = :id")
        assert isinstance(statement, Update)
        assert [name for name, _ in statement.assignments] == ["a", "b"]
        assert statement.where is not None

    def test_delete(self):
        statement = parse_sql("DELETE FROM t WHERE a IS NULL")
        assert isinstance(statement, Delete)

    def test_create_table_full(self):
        statement = parse_sql(
            "CREATE TABLE paper ("
            "  oid INTEGER NOT NULL AUTOINCREMENT,"
            "  title VARCHAR(200) NOT NULL,"
            "  issue_oid INTEGER,"
            "  PRIMARY KEY (oid),"
            "  UNIQUE (title),"
            "  FOREIGN KEY (issue_oid) REFERENCES issue (oid) ON DELETE SET NULL"
            ")"
        )
        assert isinstance(statement, CreateTable)
        schema = statement.schema
        assert schema.column("oid").auto_increment
        assert not schema.column("title").nullable
        assert schema.foreign_keys[0].on_delete == "set_null"

    def test_create_index(self):
        statement = parse_sql("CREATE UNIQUE INDEX ix_t_a ON t (a, b)")
        assert isinstance(statement, CreateIndex)
        assert statement.index.unique
        assert statement.index.columns == ("a", "b")

    def test_drop_table_if_exists(self):
        statement = parse_sql("DROP TABLE IF EXISTS t")
        assert statement.if_exists


class TestExpressionSemantics:
    def test_arithmetic_precedence(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9

    def test_integer_division_exact(self):
        assert evaluate("6 / 3") == 2
        assert isinstance(evaluate("6 / 3"), int)
        assert evaluate("7 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(QueryError, match="division by zero"):
            evaluate("1 / 0")

    def test_unary_minus(self):
        assert evaluate("-3 + 5") == 2

    def test_concat_operator(self):
        assert evaluate("'a' || 'b' || 'c'") == "abc"

    def test_concat_null_propagates(self):
        assert evaluate("'a' || NULL") is None

    def test_comparisons(self):
        assert evaluate("2 < 3") is True
        assert evaluate("2 >= 3") is False
        assert evaluate("'a' <> 'b'") is True

    def test_null_comparison_is_unknown(self):
        assert evaluate("NULL = NULL") is None
        assert evaluate("1 < NULL") is None

    def test_three_valued_and_or(self):
        assert evaluate("NULL AND FALSE") is False
        assert evaluate("NULL AND TRUE") is None
        assert evaluate("NULL OR TRUE") is True
        assert evaluate("NULL OR FALSE") is None
        assert evaluate("NOT NULL") is None

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("5 IN (1, 2, 3)") is False
        assert evaluate("5 NOT IN (1, 2, 3)") is True

    def test_in_list_null_semantics(self):
        assert evaluate("5 IN (1, NULL)") is None
        assert evaluate("NULL IN (1, 2)") is None

    def test_like(self):
        assert evaluate("'WebRatio' LIKE 'Web%'") is True
        assert evaluate("'WebRatio' LIKE '_ebRatio'") is True
        assert evaluate("'WebRatio' NOT LIKE 'X%'") is True
        assert evaluate("'a%b' LIKE 'a\\%b'") is False  # no escape support: % is wild

    def test_between(self):
        assert evaluate("2 BETWEEN 1 AND 3") is True
        assert evaluate("0 NOT BETWEEN 1 AND 3") is True
        assert evaluate("NULL BETWEEN 1 AND 3") is None

    def test_scalar_functions(self):
        assert evaluate("UPPER('abc')") == "ABC"
        assert evaluate("LOWER('ABC')") == "abc"
        assert evaluate("LENGTH('abcd')") == 4
        assert evaluate("ABS(-5)") == 5
        assert evaluate("COALESCE(NULL, NULL, 7)") == 7
        assert evaluate("CONCAT('a', NULL, 'b')") == "ab"
        assert evaluate("SUBSTR('abcdef', 2, 3)") == "bcd"
        assert evaluate("ROUND(3.567, 1)") == 3.6

    def test_unknown_function(self):
        with pytest.raises(QueryError, match="unknown function"):
            evaluate("FROBNICATE(1)")

    def test_params_resolve(self):
        assert evaluate(":x + 1", params={"x": 41}) == 42

    def test_missing_param(self):
        with pytest.raises(QueryError, match="missing query parameter"):
            evaluate(":missing")

    def test_column_lookup(self):
        scope = _Scope(a=10, **{"t.b": 20})
        assert evaluate("a + t.b", scope=scope) == 30

    def test_string_number_comparison_rejected(self):
        with pytest.raises(QueryError, match="cannot compare"):
            evaluate("'a' < 1")

    def test_compare_values_mixed_numeric(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(2, 1.5) == 1

    def test_aggregate_outside_group_rejected(self):
        call = AggregateCall("SUM", Literal(1))
        with pytest.raises(QueryError, match="aggregate"):
            call.evaluate(_Scope(), {})

    def test_comparison_expr_column_refs(self):
        expr = Comparison("=", ColumnRef("t", "a"), ColumnRef(None, "b"))
        refs = expr.column_refs()
        assert {(r.table, r.column) for r in refs} == {("t", "a"), (None, "b")}


class TestExpressionEdgeCases:
    def test_scalar_function_arity_enforced(self):
        with pytest.raises(QueryError, match="exactly one argument"):
            evaluate("UPPER('a', 'b')")

    def test_round_arity(self):
        with pytest.raises(QueryError, match="one or two"):
            evaluate("ROUND(1, 2, 3)")

    def test_substr_arity(self):
        with pytest.raises(QueryError, match="two or three"):
            evaluate("SUBSTR('abc')")

    def test_negate_non_number(self):
        with pytest.raises(QueryError, match="cannot negate"):
            evaluate("-'abc'")

    def test_abs_non_number(self):
        with pytest.raises(QueryError, match="ABS needs a number"):
            evaluate("ABS('x')")

    def test_arithmetic_string_plus_string_concats(self):
        assert evaluate("'foo' + 'bar'") == "foobar"

    def test_arithmetic_mixed_types_rejected(self):
        with pytest.raises(QueryError, match="needs numbers"):
            evaluate("'foo' * 2")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1
        with pytest.raises(QueryError, match="modulo by zero"):
            evaluate("7 % 0")

    def test_not_in_with_null_option_is_unknown(self):
        assert evaluate("5 NOT IN (1, NULL)") is None

    def test_concat_booleans_render_lowercase(self):
        assert evaluate("'is:' || TRUE") == "is:true"

    def test_like_dotall(self):
        # % must cross newlines (the engine uses DOTALL)
        scope = _Scope(body="line1\nline2")
        assert evaluate("body LIKE '%line2'", scope=scope) is True

    def test_between_negated(self):
        assert evaluate("5 NOT BETWEEN 1 AND 3") is True
        assert evaluate("2 NOT BETWEEN 1 AND 3") is False

    def test_nested_function_calls(self):
        assert evaluate("UPPER(SUBSTR('webratio', 1, 3))") == "WEB"

    def test_unary_plus_is_identity(self):
        assert evaluate("+5") == 5
