"""Adaptive query execution: feedback, drift, hysteresis, identity.

The contract under test is the one DESIGN.md §16 states: the feedback
loop (``repro.rdb.adaptive``) may change plan *shape* — never answers.
A hypothesis oracle force-poisons the selectivity memory with extreme
corrections and holds every execution mode to byte-identical results;
unit tests pin the q-error window arithmetic, the hysteresis guards
(cooldown, replan budget) under an oscillating workload, ledger safety
under concurrent appends, growth-triggered auto-ANALYZE, and the
ANALYZE/column-store sync guard.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdb import Database
from repro.rdb.adaptive import (
    MIN_OBSERVATIONS,
    WINDOW_SIZE,
    CardinalityFeedback,
    SelectivityMemory,
    q_error,
    scan_correction_keys,
)
from repro.rdb.executor import HashJoinOp, ScanOp
from repro.rdb.planner import PlannerFeatures


def _walk(node):
    stack = [node]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op.children())


def _catalogue() -> Database:
    """Small, NULL-bearing, indexed — the same adversarial shape the
    compile oracle uses, with statistics so corrections have a baseline
    to override."""
    db = Database()
    db.execute(
        "CREATE TABLE author (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(40) NOT NULL, age INTEGER, PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " author_oid INTEGER, year INTEGER, price FLOAT,"
        " title VARCHAR(80), PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_author ON book (author_oid)")
    db.execute("CREATE INDEX ix_book_year ON book (year)")
    for i in range(5):
        db.insert_row("author", {
            "name": f"author-{i}", "age": None if i % 2 else 30 + i,
        })
    for i in range(60):
        db.insert_row("book", {
            "author_oid": i % 4 + 1,
            "year": None if i % 7 == 3 else 1990 + i % 12,
            "price": None if i % 9 == 5 else 5.0 + (i % 16),
            "title": f"book-{i:02d}",
        })
    db.analyze()
    return db


# -- q-error and the per-plan ledger ----------------------------------------


def test_q_error_is_symmetric_and_floored():
    assert q_error(10, 10) == 1.0
    assert q_error(1, 100) == 100.0
    assert q_error(100, 1) == 100.0
    # the one-row floor: an empty result is not infinitely wrong
    assert q_error(5, 0) == 5.0
    assert q_error(0, 0) == 1.0


def test_window_median_is_robust_to_one_outlier():
    ledger = CardinalityFeedback("q")
    for q in (1.0, 1.1, 1.2, 500.0):
        ledger.record(10, 10, q)
    # median of {1.0, 1.1, 1.2, 500.0} is 1.2 — no drift
    assert ledger.window_q_error() == 1.2
    assert not ledger.drifted(4.0)


def test_drift_needs_minimum_observations():
    ledger = CardinalityFeedback("q")
    for _ in range(MIN_OBSERVATIONS - 1):
        ledger.record(1, 1000, 1000.0)
    assert not ledger.drifted(4.0)
    ledger.record(1, 1000, 1000.0)
    assert ledger.drifted(4.0)


def test_window_is_bounded_and_replan_clears_it():
    ledger = CardinalityFeedback("q")
    for i in range(WINDOW_SIZE * 3):
        ledger.record(1, i + 1, float(i + 1))
    assert len(ledger.window) == WINDOW_SIZE
    assert ledger.executions == WINDOW_SIZE * 3
    ledger.note_replanned(cooldown=5)
    assert len(ledger.window) == 0
    assert ledger.replans == 1
    assert ledger.cooldown == 5
    ledger.record(1, 1, 1.0)
    assert ledger.cooldown == 4  # each execution burns one


def test_ledger_survives_concurrent_appends():
    ledger = CardinalityFeedback("q")
    errors = []

    def hammer():
        try:
            for i in range(400):
                ledger.record(10, i, q_error(10, i))
                ledger.window_q_error()
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # lost updates are tolerated; corruption is not
    assert len(ledger.window) <= WINDOW_SIZE
    assert 0 < ledger.executions <= 8 * 400


def test_selectivity_memory_ewma_and_clamp():
    memory = SelectivityMemory()
    memory.observe("t", ("eq", "c"), 0.8)
    assert memory.selectivity("t", ("eq", "c")) == 0.8
    memory.observe("t", ("eq", "c"), 0.4)
    assert abs(memory.selectivity("t", ("eq", "c")) - 0.6) < 1e-9
    assert memory.selectivity("t", ("eq", "other")) is None
    memory.observe("t", ("eq", "wild"), 7.5)  # out-of-range observation
    assert memory.selectivity("t", ("eq", "wild")) <= 1.0
    assert memory.hits == 3
    assert memory.records == 3


# -- the end-to-end loop ----------------------------------------------------


def _skewed_sales(base: int = 300, hot: int = 1200) -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE sale (oid INTEGER NOT NULL AUTOINCREMENT,"
        " region VARCHAR(20) NOT NULL, amount FLOAT NOT NULL,"
        " PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_sale_region ON sale (region)")
    for i in range(base):
        db.insert_row("sale", {"region": f"r-{i % 30:02d}",
                               "amount": float(i % 9)})
    db.analyze()
    for i in range(hot):
        db.insert_row("sale", {"region": "hot", "amount": float(i % 9)})
    return db


SALE_QUERY = ("SELECT region, COUNT(*) AS n, SUM(amount) AS s"
              " FROM sale WHERE region = :r GROUP BY region")


def test_drift_replans_once_and_answers_never_change():
    db = _skewed_sales()
    frozen = db.prepare(SALE_QUERY)
    seed = db.prepare(SALE_QUERY, optimize=False)
    assert "IndexLookup" in frozen.explain()

    results = [db.query(SALE_QUERY, {"r": "hot"}).as_tuples()
               for _ in range(10)]
    assert db.adaptive.counters["replans"] == 1
    assert db.adaptive.counters["reanalyzes"] >= 1
    # every execution — before, across, and after the replan — agrees
    assert all(r == results[0] for r in results)
    assert frozen.execute({"r": "hot"}).as_tuples() == results[0]
    assert seed.execute({"r": "hot"}).as_tuples() == results[0]

    replanned = db.prepare(SALE_QUERY)
    assert replanned is not frozen
    assert "SeqScan" in replanned.explain()


def test_oscillating_workload_is_bounded_by_cooldown_and_budget():
    db = _skewed_sales()
    adaptive = db.adaptive
    # tighten the loop so the test stays fast: aggressive drift, a
    # cooldown longer than the window refill (so suppression is
    # observable), tiny budget
    adaptive.q_error_threshold = 1.5
    adaptive.replan_cooldown = 10
    adaptive.max_replans = 2

    baseline = {}
    for round_no in range(40):
        param = "hot" if round_no % 2 else "r-01"
        got = db.query(SALE_QUERY, {"r": param}).as_tuples()
        baseline.setdefault(param, got)
        assert got == baseline[param]  # oscillation never changes answers
    counters = adaptive.counters
    assert counters["replans"] <= adaptive.max_replans
    assert counters["cooldown_suppressed"] >= 1
    assert counters["replan_budget_exhausted"] >= 1


def test_growth_triggers_auto_analyze_at_prepare():
    db = Database()
    db.execute(
        "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
        " v INTEGER NOT NULL, PRIMARY KEY (oid))"
    )
    for i in range(50):
        db.insert_row("t", {"v": i})
    db.analyze()
    store = db.tables["t"]
    assert store.statistics.row_count == 50
    for i in range(150):  # > GROWTH_DRIFT x the snapshot
        db.insert_row("t", {"v": i})
    db.prepare("SELECT v FROM t WHERE v = :v")
    assert db.adaptive.counters["growth_reanalyzes"] == 1
    assert store.statistics.row_count == 200
    # stable once refreshed: no re-ANALYZE churn on the next prepare
    db.prepare("SELECT v FROM t WHERE v < :v")
    assert db.adaptive.counters["growth_reanalyzes"] == 1


def test_analyze_syncs_pending_column_store_ops():
    """Regression: ANALYZE on a built ColumnStore must drain pending
    write-side ops before reading the column arrays, or statistics
    would describe a stale snapshot of the table."""
    db = _catalogue()
    # build the column store, then write *after* the build so the ops
    # sit in the pending queue
    db.prepare("SELECT title FROM book WHERE price > :lo",
               columnar=True).execute({"lo": 0.0})
    store = db.tables["book"]
    assert store.column_store.built
    for i in range(40):
        db.insert_row("book", {
            "author_oid": 1, "year": 2030, "price": 99.5,
            "title": f"late-{i:02d}",
        })
    assert store.column_store.pending_ops() > 0
    db.analyze("book")
    stats = store.statistics
    assert stats.row_count == 100
    year = stats.columns["year"]
    assert year.maximum == 2030  # the pending rows are in the summary
    assert stats.columns["title"].distinct == 100


def test_explain_analyze_reports_actuals_and_q_error():
    db = _catalogue()
    sql = "SELECT title FROM book WHERE year = :y"
    plan = db.prepare(sql)
    assert "actual=" not in plan.explain(analyze=True)  # not yet executed
    plan.execute({"y": 1995})
    annotated = plan.explain(analyze=True)
    assert "actual=" in annotated
    assert "q=" in annotated
    assert "actual=" not in plan.explain()  # plain EXPLAIN is unchanged
    # the database-level entry point executes and annotates in one call
    assert "actual=" in db.explain(sql, {"y": 1995}, analyze=True)


def test_status_planner_section_lists_misestimates():
    db = _skewed_sales()
    for _ in range(3):
        db.query(SALE_QUERY, {"r": "hot"})
    stats = db.adaptive.stats()
    assert stats["observations"] == 3
    assert stats["tracked_plans"] == 1
    top = stats["top_misestimates"]
    assert top and top[0]["q_error_max"] > 4.0
    assert top[0]["actual"] == 1200
    assert db.observability_stats()["adaptive"] == db.adaptive.stats()


def test_planner_features_change_shape_not_answers():
    db = _catalogue()
    sql = ("SELECT a.name, b.title FROM author a"
           " JOIN book b ON b.author_oid = a.oid"
           " WHERE b.year = :y AND a.age IS NOT NULL ORDER BY b.oid")
    params = {"y": 1995}
    default = db.prepare(sql)
    want = default.execute(params).as_tuples()
    for features in (
        PlannerFeatures(join_reorder=False),
        PlannerFeatures(access_paths=False),
        PlannerFeatures(pushdown=False),
    ):
        variant = db.prepare(sql, features=features)
        assert variant.execute(params).as_tuples() == want
    # the access-path toggle really does pin the scan to sequential
    pinned = db.prepare(sql, features=PlannerFeatures(access_paths=False))
    assert "IndexLookup" not in pinned.explain()


# -- the poisoned-memory oracle ---------------------------------------------

_PREDICATES = [
    "b.price > :lo",
    "b.year BETWEEN 1995 AND 2000",
    "b.year IN (1991, 1995, :cut)",
    "b.price IS NULL",
    "b.title LIKE 'book-1%'",
    "b.year = 1995 OR b.price < :lo",
    "b.author_oid = 2",
    "b.year = :cut AND b.price > :lo",
]

_SHAPES = [
    "SELECT b.title, b.price FROM book b{where} ORDER BY b.oid",
    ("SELECT a.name, b.title FROM author a"
     " JOIN book b ON b.author_oid = a.oid{where} ORDER BY b.oid"),
    ("SELECT b.year AS y, COUNT(*) AS n, SUM(b.price) AS s"
     " FROM book b{where} GROUP BY b.year ORDER BY y"),
]

PARAMS = {"lo": 9.0, "cut": 1995}


class TestPoisonedMemoryOracle:
    """Force the worst possible corrections into the memory and prove
    replanned statements still return byte-identical results in every
    execution mode."""

    _db = None

    @classmethod
    def _database(cls):
        if cls._db is None:
            cls._db = _catalogue()
        return cls._db

    @given(
        shape=st.sampled_from(_SHAPES),
        conjuncts=st.lists(st.sampled_from(_PREDICATES), max_size=2,
                           unique=True),
        poison=st.sampled_from([1e-4, 0.5, 0.9999]),
    )
    @settings(max_examples=60, deadline=None)
    def test_extreme_corrections_never_change_results(
            self, shape, conjuncts, poison):
        db = self._database()
        where = " WHERE " + " AND ".join(conjuncts) if conjuncts else ""
        sql = shape.format(where=where)
        clean = db.prepare(sql)
        want = clean.execute(PARAMS)

        memory = db.adaptive.memory
        memory.clear()
        for node in _walk(clean.root):
            if isinstance(node, ScanOp):
                for table, key in scan_correction_keys(node):
                    memory.observe(table, key, poison)
            elif isinstance(node, HashJoinOp):
                memory.observe_join(
                    node.store.schema.name, node.build_columns,
                    1.0 if poison < 0.5 else 1e6,
                )
        try:
            # features=... forces an uncached rebuild that consults the
            # poisoned memory — the same path a drift replan takes
            poisoned = db.prepare(sql, features=PlannerFeatures())
            for plan in (
                poisoned,
                db.prepare(sql, compiled=False),
                db.prepare(sql, columnar=True),
            ):
                got = plan.execute(PARAMS)
                assert got.columns == want.columns
                assert got.as_tuples() == want.as_tuples()
        finally:
            memory.clear()
