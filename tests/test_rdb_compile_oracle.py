"""Property-based oracle for compiled and columnar query execution.

The compiler (``repro.rdb.compile``) and the columnar batch pipeline
(``repro.rdb.columnar``) must be *invisible*: for any query the planner
accepts, four executions of the same SQL have to agree byte-for-byte —
the columnar plan (``prepare(sql, columnar=True)``), the compiled-row
plan, the same plan with compilation switched off
(``prepare(sql, compiled=False)``), and the seed interpreter
(``prepare(sql, optimize=False)``).  Hypothesis assembles random
projections, predicates, joins, groupings, and orderings over a
NULL-heavy catalogue and holds all four executions to that contract.
(The catalogue sits below the cost model's columnar threshold, so the
columnar mode is *forced* — the point is semantics, not the layout
decision, which ``tests/test_rdb_columnar.py`` covers.)
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdb import Database

#: parameters available to every generated query
PARAMS = {"lo": 12.0, "rate": 1.5, "needle": "book-1%", "cut": 1999}


def _catalogue() -> Database:
    """Small but adversarial: every nullable column actually holds
    NULLs, strings share prefixes (LIKE edge cases), and numeric
    columns repeat values (grouping + ORDER BY ties)."""
    db = Database()
    db.execute(
        "CREATE TABLE author (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(40) NOT NULL, age INTEGER, PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " author_oid INTEGER, year INTEGER, price FLOAT,"
        " title VARCHAR(80), PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_author ON book (author_oid)")
    db.execute("CREATE INDEX ix_book_year ON book (year)")
    for i in range(5):
        db.insert_row("author", {
            "name": f"author-{i}", "age": None if i % 2 else 30 + i,
        })
    for i in range(48):
        db.insert_row("book", {
            # author 5 writes nothing: LEFT JOINs must pad with NULLs
            "author_oid": i % 4 + 1,
            "year": None if i % 7 == 3 else 1990 + i % 12,
            "price": None if i % 9 == 5 else 5.0 + (i % 16),
            "title": f"book-{i:02d}",
        })
    return db


#: single-table predicates over binding ``b`` — every compiler branch:
#: 3VL comparisons, arithmetic, LIKE, IN, BETWEEN, IS NULL, functions,
#: parameters, and NOT/OR nesting
_PREDICATES = [
    "b.price > :lo",
    "b.price * 2 + 1 < 40",
    "b.price - 1 <> b.year - 1985",
    "b.title LIKE 'book-1%'",
    "b.title LIKE :needle",
    "b.title NOT LIKE '%7'",
    "b.year BETWEEN 1995 AND 2000",
    "b.year NOT BETWEEN 1995 AND 2000",
    "b.year IN (1991, 1995, :cut)",
    "b.year NOT IN (1991, 1995)",
    "b.price IS NULL",
    "b.year IS NOT NULL",
    "NOT (b.year > 1996)",
    "b.year = 1995 OR b.price < :lo",
    "COALESCE(b.price, 0.0) > 10",
    "LENGTH(b.title) > 6 AND UPPER(b.title) LIKE 'BOOK%'",
]

_JOIN_PREDICATES = [
    "a.oid > 1",
    "a.name LIKE 'author%'",
    "a.age IS NOT NULL",
    "a.age + 1 > 32 OR b.price IS NULL",
]

_PROJECTIONS = [
    "b.title",
    "b.price",
    "b.year",
    "b.price * :rate AS px",
    "COALESCE(b.price, -1.0) AS cp",
    "CONCAT(b.title, '!') AS bang",
]

_ORDERINGS = [
    "",
    " ORDER BY b.oid",
    " ORDER BY b.price",            # NULL-heavy key
    " ORDER BY b.price DESC, b.title",
    " ORDER BY b.year DESC, b.oid",
]


@st.composite
def _select_sql(draw) -> str:
    shape = draw(st.sampled_from(["plain", "join", "left", "group"]))
    if shape == "group":
        having = draw(st.sampled_from(
            ["", " HAVING COUNT(*) > 3", " HAVING SUM(b.price) > 50"]
        ))
        order = draw(st.sampled_from(
            ["", " ORDER BY n DESC, y", " ORDER BY y"]
        ))
        sql = ("SELECT b.year AS y, COUNT(*) AS n, SUM(b.price) AS s,"
               " AVG(b.price) AS ap FROM book b")
        conjuncts = draw(st.lists(st.sampled_from(_PREDICATES), max_size=2))
        if conjuncts:
            sql += " WHERE " + " AND ".join(conjuncts)
        return sql + " GROUP BY b.year" + having + order
    menu = list(_PREDICATES)
    if shape == "plain":
        items = draw(st.lists(
            st.sampled_from(_PROJECTIONS), min_size=1, max_size=3,
            unique=True,
        ))
        sql = f"SELECT {', '.join(items)} FROM book b"
    elif shape == "join":
        menu += _JOIN_PREDICATES
        sql = ("SELECT a.name, b.title, b.price FROM author a"
               " JOIN book b ON b.author_oid = a.oid")
    else:
        menu += _JOIN_PREDICATES
        sql = ("SELECT a.name, b.title, b.year FROM author a"
               " LEFT JOIN book b ON b.author_oid = a.oid"
               " AND b.year > 1995")
    conjuncts = draw(st.lists(st.sampled_from(menu), max_size=3))
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    sql += draw(st.sampled_from(_ORDERINGS)) if shape != "left" else ""
    if draw(st.booleans()):
        sql += " LIMIT 10"
    return sql


class TestCompiledOracle:
    _db = None
    _analyzed = None

    @classmethod
    def _databases(cls):
        # class-level reuse: building catalogues per example would
        # dominate the runtime; plans land in each db's own cache
        if cls._db is None:
            cls._db = _catalogue()
            cls._analyzed = _catalogue()
            cls._analyzed.analyze()
        return cls._db, cls._analyzed

    @given(sql=_select_sql())
    @settings(max_examples=120, deadline=None)
    def test_compiled_equals_interpreted(self, sql):
        for db in self._databases():
            compiled = db.prepare(sql)
            columnar = db.prepare(sql, columnar=True)
            interpreted = db.prepare(sql, compiled=False)
            seed = db.prepare(sql, optimize=False)
            assert compiled.exec_mode in ("compiled", "mixed")
            assert interpreted.exec_mode == "interpreted"
            got = compiled.execute(PARAMS)
            want = interpreted.execute(PARAMS)
            assert got.columns == want.columns
            # same plan either way: identical rows in identical order
            assert got.as_tuples() == want.as_tuples()
            # the batch pipeline (when the plan shape allows it — joins
            # and index paths stay on the row engine) agrees exactly
            batch = columnar.execute(PARAMS)
            assert batch.columns == got.columns
            assert batch.as_tuples() == got.as_tuples()
            # the seed interpreter agrees — exactly when the ORDER BY
            # pins a total order (tie order is otherwise a plan detail,
            # and LIMIT over ties may keep different rows)
            naive = seed.execute(PARAMS)
            assert naive.columns == got.columns
            limited = sql.endswith(" LIMIT 10")
            base = sql[: -len(" LIMIT 10")] if limited else sql
            total_order = base.endswith(("b.oid", "b.title", "BY y", ", y"))
            if total_order:
                assert got.as_tuples() == naive.as_tuples()
            elif not limited:
                assert Counter(got.as_tuples()) == Counter(
                    naive.as_tuples()
                )
            else:
                assert len(got) == len(naive)


def _four_way(db: Database, sql: str, params: dict | None = None):
    """Execute ``sql`` in all four modes; returns the identical tuples
    (asserting the identity on the way)."""
    plans = [
        db.prepare(sql, columnar=True),
        db.prepare(sql),
        db.prepare(sql, compiled=False),
        db.prepare(sql, optimize=False),
    ]
    results = [plan.execute(params or {}) for plan in plans]
    for other in results[1:]:
        assert other.columns == results[0].columns
        assert other.as_tuples() == results[0].as_tuples()
    return results[0].as_tuples()


class TestFourWayEdges:
    """Deterministic four-way identities the random generator cannot
    guarantee to hit: empty tables and mid-transaction reads of
    uncommitted writes."""

    def test_empty_table(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
            " name VARCHAR(20), n INTEGER, PRIMARY KEY (oid))"
        )
        assert _four_way(db, "SELECT name, n FROM t WHERE n > 3") == []
        # aggregates over an empty table still produce their one row
        assert _four_way(
            db, "SELECT COUNT(*), SUM(n), MIN(name) FROM t"
        ) == [(0, None, None)]
        assert _four_way(
            db, "SELECT name, COUNT(*) FROM t GROUP BY name"
        ) == []

    def test_mid_transaction_uncommitted_reads(self):
        db = _catalogue()
        sql = ("SELECT title, price FROM book b"
               " WHERE b.year IS NOT NULL AND b.price > :lo"
               " ORDER BY b.oid")
        agg = ("SELECT b.year AS y, COUNT(*) AS n, AVG(b.price) AS ap"
               " FROM book b GROUP BY b.year ORDER BY y")
        before = _four_way(db, sql, PARAMS)
        db.begin()
        try:
            db.execute("UPDATE book SET price = price + 100"
                       " WHERE year = 1995")
            db.insert_row("book", {
                "author_oid": 1, "year": 1995, "price": 77.0,
                "title": "book-tx",
            })
            db.execute("DELETE FROM book WHERE title = 'book-00'")
            # the transaction's own reads see its uncommitted writes,
            # identically in all four modes
            during = _four_way(db, sql, PARAMS)
            assert during != before
            _four_way(db, agg, PARAMS)
        finally:
            db.rollback()
        # rollback restores the pre-transaction answer in all modes
        assert _four_way(db, sql, PARAMS) == before
        _four_way(db, agg, PARAMS)
