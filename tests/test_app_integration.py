"""Integration tests for the application facade, the Figure 6 container
deployment, model-level plug-in units, and generic-vs-conventional
serving equivalence through the full dispatcher."""

import pytest

from repro.app import Browser, WebApplication
from repro.appserver import ComponentContainer, deploy_business_tier
from repro.appserver.integration import OPERATION_COMPONENT, PAGE_COMPONENT
from repro.errors import WebMLError
from repro.services.plugins import PluginUnit, plugin_registry
from repro.util import VirtualClock

from tests.conftest import build_acm_webml, seed_acm


class TestWebApplicationFacade:
    def test_schema_installed_in_dependency_order(self, acm_app):
        # bridge table exists and is usable immediately
        assert "authorship" in acm_app.database.table_names()

    def test_seed_rejects_non_fk_role(self, acm_app):
        with pytest.raises(ValueError, match="connect_instances"):
            acm_app.seed_entity("Paper", [{"title": "x", "Authorship": 1}])

    def test_connect_instances_bridge_inverse(self, acm_app, acm_oids):
        # AuthorOf runs Author→Paper; connecting through the inverse role
        # must land in the same bridge columns.
        acm_app.connect_instances("AuthorOf", acm_oids["authors"][0],
                                  acm_oids["papers"][0])
        row = acm_app.database.query(
            "SELECT paper_oid, author_oid FROM authorship"
            " WHERE paper_oid = :p",
            {"p": acm_oids["papers"][0]},
        ).first()
        assert row == {"paper_oid": acm_oids["papers"][0],
                       "author_oid": acm_oids["authors"][0]}

    def test_connect_instances_fk(self, acm_app, acm_oids):
        [fresh_issue] = acm_app.seed_entity("Issue", [{"number": 9}])
        acm_app.connect_instances("VolumeToIssue", acm_oids["volumes"][1],
                                  fresh_issue)
        volume = acm_app.database.query(
            "SELECT volume_to_issue_oid AS v FROM issue WHERE oid = :i",
            {"i": fresh_issue},
        ).scalar()
        assert volume == acm_oids["volumes"][1]

    def test_page_and_operation_url_helpers(self, acm_app):
        url = acm_app.page_url("public", "Volumes")
        assert acm_app.get(url).status == 200
        login_url = acm_app.operation_url(
            "admin", "Login", {"username": "admin", "password": "secret"}
        )
        assert "username" in login_url and login_url.startswith("/do/")

    def test_existing_database_reused(self, acm_webml):
        from repro.rdb import Database

        shared = Database(name="shared")
        first = WebApplication(acm_webml, database=shared)
        # a second deployment over the same database must not recreate DDL
        second_model = build_acm_webml()
        second = WebApplication(second_model, database=shared)
        assert first.database is second.database


class TestBusinessTierDeployment:
    """§4 Figure 6: the app served through the component container."""

    def _deployed(self):
        app = WebApplication(build_acm_webml())
        seed_acm(app)
        clock = VirtualClock()
        container = deploy_business_tier(
            app, ComponentContainer(clock=clock),
            min_instances=0, max_instances=8, idle_timeout=30.0,
        )
        return app, container, clock

    def test_pages_served_through_container(self):
        app, container, _clock = self._deployed()
        browser = Browser(app)
        assert browser.get("/").status == 200
        assert container.invocations >= 1
        assert container.resident_instances(PAGE_COMPONENT) == 1

    def test_operations_served_through_container(self):
        app, container, _clock = self._deployed()
        browser = Browser(app)
        browser.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        browser.get(app.operation_url("admin", "CreatePaper", {
            "title": "Via EJB", "pages": "3",
        }))
        assert container.resident_instances(OPERATION_COMPONENT) == 1
        assert app.database.query(
            "SELECT COUNT(*) AS n FROM paper WHERE title = 'Via EJB'"
        ).scalar() == 1

    def test_container_passivates_after_idle(self):
        app, container, clock = self._deployed()
        Browser(app).get("/")
        assert container.resident_instances() >= 1
        clock.advance(60)
        container.sweep()
        assert container.resident_instances() == 0

    def test_non_web_client_shares_components(self):
        app, container, _clock = self._deployed()
        Browser(app).get("/")  # web traffic created the pooled instance
        view = app.model.find_site_view("public")
        page = view.find_page("Volumes")
        descriptor = app.registry.page(page.id)
        # a batch job calls the same business component directly
        result = container.invoke(PAGE_COMPONENT, "compute_page",
                                  descriptor, {})
        assert result.bean_named("All volumes").rows
        assert container.pool_stats(PAGE_COMPONENT)["created_total"] == 1


class _CounterService:
    kind = "counter"

    def compute(self, descriptor, inputs, ctx):
        from repro.services import UnitBean

        bean = UnitBean(descriptor.unit_id, descriptor.name, "counter")
        total = ctx.query(
            "SELECT COUNT(*) AS n FROM paper", {}
        ).scalar()
        bean.current = {"count": total}
        bean.outputs = {"count": total}
        return bean


class _CounterTag:
    def render(self, bean, tag, context):
        from repro.xmlkit import Element

        box = Element("div", {"class": "unit unit-counter",
                              "id": bean.unit_id})
        box.add("span", text=str(bean.current["count"]))
        return box


class TestPluginUnitsEndToEnd:
    """§7: a plug-in kind flows through model → codegen → runtime → view."""

    def _register(self):
        return plugin_registry.register(PluginUnit(
            kind="counter",
            tag_name="webml:counterUnit",
            service=_CounterService(),
            renderer=_CounterTag(),
        ))

    def test_full_pipeline(self):
        self._register()
        try:
            model = build_acm_webml()
            page = model.find_site_view("public").find_page("Volumes")
            plugin_unit = page.plugin_unit("Paper counter", "counter",
                                           extra_outputs=["count"])
            model.validate()

            from repro.codegen import generate_project
            from repro.presentation import PresentationRenderer
            from repro.presentation.renderer import default_stylesheet
            from repro.presentation.xslt import UnitRule

            project = generate_project(model)
            assert f'<webml:counterUnit unit="{plugin_unit.id}"' \
                in project.skeletons[page.id]

            stylesheet = default_stylesheet("ACM")
            stylesheet.unit_rules.append(
                UnitRule(pattern="webml:counterUnit",
                         set_attrs={"class": "counter-box"})
            )
            renderer = PresentationRenderer(project.skeletons, stylesheet)
            app = WebApplication(model, view_renderer=renderer)
            seed_acm(app)
            browser = Browser(app)
            browser.get("/")
            assert "unit-counter" in browser.body
            assert "<span>4</span>" in browser.body
        finally:
            plugin_registry.unregister("counter")

    def test_unregistered_kind_rejected_at_model_time(self):
        model = build_acm_webml()
        page = model.find_site_view("public").find_page("Volumes")
        with pytest.raises(WebMLError, match="no plug-in registered"):
            page.plugin_unit("Ghost", "martian")

    def test_entity_less_plugin_passes_validation(self):
        self._register()
        try:
            model = build_acm_webml()
            page = model.find_site_view("public").find_page("Volumes")
            page.plugin_unit("Paper counter", "counter")
            model.validate()
        finally:
            plugin_registry.unregister("counter")

    def test_custom_descriptor_builder_used(self):
        from repro.descriptors import UnitDescriptor

        def builder(unit, mapping):
            return UnitDescriptor(unit_id=unit.id, name=unit.name,
                                  kind=unit.kind, custom_service="special")

        plugin_registry.register(PluginUnit(
            kind="counter", tag_name="webml:counterUnit",
            service=_CounterService(), descriptor_builder=builder,
        ))
        try:
            from repro.codegen import generate_unit_descriptor
            from repro.er.mapping import map_to_relational

            model = build_acm_webml()
            page = model.find_site_view("public").find_page("Volumes")
            unit = page.plugin_unit("Paper counter", "counter")
            descriptor = generate_unit_descriptor(
                unit, map_to_relational(model.data_model)
            )
            assert descriptor.custom_service == "special"
        finally:
            plugin_registry.unregister("counter")


class TestConventionalServingEquivalence:
    """E9's correctness half, through the whole dispatcher: a front
    controller backed by dedicated classes serves byte-identical pages."""

    def test_identical_html(self):
        from repro.codegen import generate_conventional, generate_project
        from repro.presentation import PresentationRenderer
        from repro.presentation.renderer import default_stylesheet

        model = build_acm_webml()
        project = generate_project(model)
        renderer = PresentationRenderer(project.skeletons,
                                        default_stylesheet("ACM"))
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        conventional = generate_conventional(
            model, app.project.mapping, validate=False
        ).instantiate()

        view = model.find_site_view("public")
        page = view.find_page("Volume Page")
        volume_data = page.unit("Volume data")
        params = {f"{volume_data.id}.oid": "1"}

        generic_html = Browser(app).get(
            app.page_url("public", "Volume Page", params)
        ).body

        # render the conventional runtime's result through the same view
        from repro.presentation.jsp import RenderContext

        page_result = conventional.compute_page(page.id, app.ctx, params)
        page_result.navigation = list(
            app.registry.page(page.id).navigation
        )
        template = renderer.template_for(page.id)
        from repro.mvc.http import HttpRequest

        request = HttpRequest.from_url(
            app.page_url("public", "Volume Page", params)
        )
        conventional_html = template.render(
            RenderContext(page_result, app.controller, request)
        )
        assert conventional_html == generic_html


class TestSessionPersonalization:
    """§1: 'session-level information and personalization aspects' — a
    data unit keyed on the session's logged-in user."""

    def _personalized_app(self):
        from repro.webml import Selector

        model = build_acm_webml()
        admin = model.find_site_view("admin")
        profile = admin.page("My profile")
        profile.data_unit(
            "Current user", "User",
            display_attributes=["username"],
            selector=Selector.by_key("session.user"),
        )
        model.validate()  # session.* inputs are exempt from link feeding
        app = WebApplication(model)
        seed_acm(app)
        return app

    def test_descriptor_binds_session_param(self):
        app = self._personalized_app()
        admin = app.model.find_site_view("admin")
        profile = admin.find_page("My profile")
        unit = profile.unit("Current user")
        descriptor = app.registry.page(profile.id)
        binding = descriptor.bindings_for(unit.id)[0]
        assert binding.request_param == "session.user"
        unit_descriptor = app.registry.unit(unit.id)
        assert ":session_user" in unit_descriptor.query
        assert unit_descriptor.inputs[0].slot == "session.user"
        assert unit_descriptor.inputs[0].sql_param == "session_user"

    def test_profile_shows_logged_in_user(self):
        app = self._personalized_app()
        browser = Browser(app)
        browser.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        response = browser.get(app.page_url("admin", "My profile"))
        assert response.status == 200
        assert "1 row(s)" in response.body  # the user's data unit filled

    def test_profile_empty_for_other_session(self):
        app = self._personalized_app()
        logged_in = Browser(app)
        logged_in.get(app.operation_url("admin", "Login", {
            "username": "admin", "password": "secret",
        }))
        # a *different* session is still locked out of the view entirely
        stranger = Browser(app)
        assert stranger.get(app.page_url("admin", "My profile")).status == 403


class TestErrorHandling:
    def test_internal_error_becomes_500(self, acm_app):
        # sabotage a deployed descriptor so page computation explodes
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        unit = page.units[0]
        descriptor = acm_app.registry.unit(unit.id)
        descriptor.query = "SELECT ghost FROM volume ORDER BY oid"
        response = acm_app.get(acm_app.page_url("public", "Volumes"))
        assert response.status == 500
        assert "Internal error" in response.body

    def test_missing_page_descriptor_becomes_500(self, acm_app):
        view = acm_app.model.find_site_view("public")
        page = view.find_page("Volumes")
        del acm_app.registry.pages[page.id]
        response = acm_app.get(acm_app.page_url("public", "Volumes"))
        assert response.status == 500


class TestBrowserForms:
    def _styled(self):
        from repro.codegen import generate_project
        from repro.presentation import PresentationRenderer
        from repro.presentation.renderer import default_stylesheet

        model = build_acm_webml()
        project = generate_project(model)
        renderer = PresentationRenderer(project.skeletons,
                                        default_stylesheet("ACM"))
        app = WebApplication(model, view_renderer=renderer)
        seed_acm(app)
        return app

    def test_forms_parsed_from_markup(self):
        app = self._styled()
        browser = Browser(app)
        view = app.model.find_site_view("public")
        volume_data = view.find_page("Volume Page").unit("Volume data")
        browser.get(app.page_url("public", "Volume Page",
                                 {f"{volume_data.id}.oid": 1}))
        forms = browser.forms()
        assert len(forms) == 1
        assert any(name.endswith(".keyword") for name in forms[0]["fields"])

    def test_submit_search_form(self):
        app = self._styled()
        browser = Browser(app)
        view = app.model.find_site_view("public")
        volume_data = view.find_page("Volume Page").unit("Volume data")
        browser.get(app.page_url("public", "Volume Page",
                                 {f"{volume_data.id}.oid": 1}))
        response = browser.submit({"keyword": "Web"})
        assert response.status == 200
        assert "Indexing the Web" in response.body

    def test_submit_unknown_field_rejected(self):
        app = self._styled()
        browser = Browser(app)
        view = app.model.find_site_view("public")
        volume_data = view.find_page("Volume Page").unit("Volume data")
        browser.get(app.page_url("public", "Volume Page",
                                 {f"{volume_data.id}.oid": 1}))
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="no field matching"):
            browser.submit({"nonsense": "x"})

    def test_login_via_rendered_form(self):
        app = self._styled()
        browser = Browser(app)
        browser.get(app.page_url("admin", "Login"))
        assert browser.status == 200  # login pages are public
        response = browser.submit({"username": "admin", "password": "secret"})
        assert response.status == 200
        assert "Admin Home" in response.body


class TestArtifactExport:
    def test_export_writes_project_layout(self, acm_app, tmp_path):
        written = acm_app.export_files(str(tmp_path))
        assert "sql/schema.sql" in written
        assert "conf/controller-config.xml" in written
        assert any(p.startswith("descriptors/units/") for p in written)
        assert any(p.startswith("skeletons/") for p in written)
        # the files are real and re-loadable
        from repro.descriptors import UnitDescriptor

        unit_file = next(p for p in written
                         if p.startswith("descriptors/units/"))
        with open(tmp_path / unit_file) as handle:
            descriptor = UnitDescriptor.from_xml(handle.read())
        assert descriptor.unit_id in unit_file

    def test_exported_ddl_rebuilds_schema(self, acm_app, tmp_path):
        from repro.rdb import Database

        acm_app.export_files(str(tmp_path))
        ddl = (tmp_path / "sql" / "schema.sql").read_text()
        fresh = Database()
        for statement in filter(None,
                                (s.strip() for s in ddl.split(";"))):
            fresh.execute(statement)
        assert set(fresh.table_names()) == set(acm_app.database.table_names())


class TestBrowserHistory:
    def test_back_revisits_previous_page(self, acm_app):
        browser = Browser(acm_app)
        browser.get("/")
        first_body = browser.body
        browser.get(acm_app.page_url("public", "Browse papers"))
        response = browser.back()
        assert response.status == 200
        assert response.body == first_body

    def test_back_without_history_rejected(self, acm_app):
        from repro.errors import ReproError

        browser = Browser(acm_app)
        with pytest.raises(ReproError, match="no earlier page"):
            browser.back()


class TestDispatcherEdges:
    def test_root_with_no_site_views(self):
        from repro.descriptors import DescriptorRegistry
        from repro.mvc import Controller, FrontController, HttpRequest
        from repro.rdb import Database
        from repro.services import RuntimeContext

        controller = Controller.from_config(
            "<controllerConfig><actionMappings/></controllerConfig>"
        )
        ctx = RuntimeContext(Database(), DescriptorRegistry())
        front = FrontController(controller, ctx)
        assert front.handle(HttpRequest(path="/")).status == 404

    def test_unknown_site_view_home_404(self, acm_app):
        assert acm_app.get("/sv999").status == 404

    def test_deep_unknown_path_404(self, acm_app):
        assert acm_app.get("/a/b/c").status == 404
