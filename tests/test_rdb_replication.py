"""WAL-shipping replication: protocol, tail reader, and end-to-end.

The replica's contract is the byte-identity oracle: replaying any WAL
prefix must leave a replica byte-identical (via ``snapshot_bytes``) to
a fresh crash recovery of that same prefix.  The protocol tests below
pin the edge cases that keep that true under a *live* stream — torn
frames on the tailed file, partial messages on the socket, duplicate
delivery after reconnect, and gap detection when a checkpoint outran a
disconnected replica.
"""

from __future__ import annotations

import os
import shutil
import struct
import tempfile
import time
import zlib

import pytest

from repro.caching.bus import InvalidationBus
from repro.errors import ReplicationError
from repro.rdb import Database
from repro.rdb.replication import (
    MSG_ACK,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    MessageBuffer,
    ReplicationClient,
    ReplicationServer,
    WalTail,
    decode_wal_frame,
    encode_message,
    open_replica,
)
from repro.rdb.snapshot import snapshot_bytes
from repro.rdb.wal import MAGIC, CommitRecord, read_log

_DDL = (
    "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
    " name VARCHAR(40) NOT NULL, qty INTEGER, PRIMARY KEY (oid))"
)


@pytest.fixture
def base_dir():
    path = tempfile.mkdtemp(prefix="replication-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _open_primary(base_dir: str, **kwargs) -> Database:
    return Database.open(os.path.join(base_dir, "primary"), **kwargs)


def _fingerprint(db: Database) -> bytes:
    """Byte-identity probe: the canonical snapshot serialization."""
    return snapshot_bytes(db.last_lsn, db.engine.tables)


def _await(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# -- protocol plumbing ------------------------------------------------------


class TestMessageBuffer:
    def test_byte_at_a_time_feed_reassembles_messages(self):
        stream = (encode_message(MSG_HELLO, b"\x00" * 8 + b"r1")
                  + encode_message(MSG_ACK, struct.pack(">Q", 7)))
        buffer = MessageBuffer()
        seen = []
        for i in range(len(stream)):
            buffer.feed(stream[i:i + 1])
            seen.extend(buffer.messages())
        assert [t for t, _ in seen] == [MSG_HELLO, MSG_ACK]
        assert seen[1][1] == struct.pack(">Q", 7)

    def test_partial_message_stays_buffered(self):
        message = encode_message(MSG_RECORD, b"x" * 100)
        buffer = MessageBuffer()
        buffer.feed(message[:50])
        assert list(buffer.messages()) == []
        buffer.feed(message[50:])
        assert list(buffer.messages()) == [(MSG_RECORD, b"x" * 100)]

    def test_oversized_length_is_refused(self):
        buffer = MessageBuffer()
        buffer.feed(struct.pack(">BI", MSG_RECORD, 1 << 31))
        with pytest.raises(ReplicationError, match="exceeds limit"):
            list(buffer.messages())


class TestWalFrameDecode:
    def test_decodes_a_real_frame(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            db.insert_row("t", {"name": "a", "qty": 1})
            tail = WalTail(db.engine.wal_path)
            frames, truncated = tail.poll()
        assert not truncated
        records = [decode_wal_frame(f) for f in frames]
        assert [r.lsn for r in records] == [1, 2]

    def test_corrupt_crc_is_refused(self):
        payload = b"not-a-record"
        frame = struct.pack(">II", len(payload), zlib.crc32(payload) ^ 1)
        with pytest.raises(ReplicationError, match="CRC"):
            decode_wal_frame(frame + payload)

    def test_short_frame_is_refused(self):
        with pytest.raises(ReplicationError, match="short"):
            decode_wal_frame(b"\x00")


class TestWalTail:
    def test_mid_record_truncation_stops_then_resumes(self, base_dir):
        """A torn tail (half-appended frame) must not surface a frame;
        the next poll after the bytes complete must."""
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            db.insert_row("t", {"name": "a", "qty": 1})
            wal_path = db.engine.wal_path
        with open(wal_path, "rb") as handle:
            whole = handle.read()
        # replay the file into a copy, cutting the last frame in half
        torn_path = wal_path + ".torn"
        frames = list(read_log(wal_path))
        assert len(frames) == 2
        cut = len(whole) - 5  # inside the final frame
        with open(torn_path, "wb") as handle:
            handle.write(whole[:cut])
        tail = WalTail(torn_path)
        frames_out, truncated = tail.poll()
        assert not truncated
        assert len(frames_out) == 1  # only the complete first frame
        assert tail.torn_reads == 1
        # the "writer" finishes the append; the tail picks it up
        with open(torn_path, "ab") as handle:
            handle.write(whole[cut:])
        more, truncated = tail.poll()
        assert not truncated
        assert len(more) == 1
        assert decode_wal_frame(more[0]).lsn == 2

    def test_shrunk_file_reports_truncation(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            for i in range(3):
                db.insert_row("t", {"name": f"n{i}", "qty": i})
            wal_path = db.engine.wal_path
            tail = WalTail(wal_path)
            frames, truncated = tail.poll()
            assert len(frames) == 4 and not truncated
            db.checkpoint()  # truncates the WAL back to its header
            db.insert_row("t", {"name": "post", "qty": 9})
            frames, truncated = tail.poll()
        assert truncated
        assert tail.truncations == 1
        # the post-checkpoint record is still delivered
        assert [decode_wal_frame(f).lsn for f in frames] == [5]

    def test_missing_file_is_quietly_empty(self, base_dir):
        tail = WalTail(os.path.join(base_dir, "nope.wal"))
        assert tail.poll() == ([], False)


# -- replica engine semantics ----------------------------------------------


class TestReplicaEngine:
    def _shipped_records(self, base_dir) -> tuple[list[CommitRecord], bytes]:
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            for i in range(5):
                db.insert_row("t", {"name": f"n{i}", "qty": i})
            db.execute("DELETE FROM t WHERE qty = :q", {"q": 3})
            records = list(read_log(db.engine.wal_path))
            return records, _fingerprint(db)

    def test_replay_matches_recovery_byte_for_byte(self, base_dir):
        records, primary_state = self._shipped_records(base_dir)
        replica = open_replica()
        for record in records:
            replica.apply_replicated(record)
        assert _fingerprint(replica) == primary_state

    def test_duplicate_records_are_skipped_idempotently(self, base_dir):
        records, primary_state = self._shipped_records(base_dir)
        replica = open_replica()
        for record in records:
            replica.apply_replicated(record)
        # at-least-once delivery: the whole stream arrives again
        for record in records:
            assert replica.apply_replicated(record) is None
        assert replica.engine.duplicates_skipped == len(records)
        assert _fingerprint(replica) == primary_state

    def test_gap_is_refused(self, base_dir):
        records, _ = self._shipped_records(base_dir)
        replica = open_replica()
        replica.apply_replicated(records[0])
        with pytest.raises(ReplicationError, match="gap"):
            replica.apply_replicated(records[2])

    def test_local_writes_are_refused(self):
        replica = open_replica()
        with pytest.raises(ReplicationError, match="read-only"):
            replica.execute(_DDL)

    def test_replay_publishes_into_bus_with_no_subscribers(self, base_dir):
        """A bare replica (no caches registered anywhere) must replay
        without error — the commit stream and an empty invalidation bus
        both tolerate having nobody to notify."""
        records, primary_state = self._shipped_records(base_dir)
        replica = open_replica()
        bus = InvalidationBus()  # deliberately no cache levels
        outcomes = []
        replica.commit_stream.subscribe(
            lambda event: outcomes.append(
                bus.invalidate_writes(sorted(event.tables), ())
            )
        )
        for record in records:
            replica.apply_replicated(record)
        assert _fingerprint(replica) == primary_state
        assert outcomes == [{} for _ in records]


# -- end-to-end over the socket ---------------------------------------------


class TestReplicationEndToEnd:
    def test_bootstrap_then_live_tail(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            db.insert_row("t", {"name": "seeded", "qty": 1})
            server = ReplicationServer(db, poll_interval=0.01)
            address = server.start()
            replica = open_replica()
            client = ReplicationClient(replica, address, name="r1").start()
            try:
                assert client.wait_for_bootstrap(timeout=10.0)
                token = db.last_lsn
                assert client.wait_for_lsn(token, timeout=10.0)
                assert _fingerprint(replica) == _fingerprint(db)
                # live writes stream through
                db.insert_row("t", {"name": "live", "qty": 2})
                token = db.last_lsn
                assert client.wait_for_lsn(token, timeout=10.0)
                names = {row["name"]
                         for row in replica.query(
                             "SELECT name FROM t", {})}
                assert names == {"seeded", "live"}
                stats = client.stats()
                assert stats["connected"] and stats["bootstraps"] == 1
                server_stats = server.stats()
                assert server_stats["replicas_connected"] == 1
                assert _await(
                    lambda: server.stats()["max_lag"] == 0, timeout=5.0
                )
            finally:
                client.stop()
                server.stop()

    def test_reconnect_delivers_duplicates_and_converges(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            db.insert_row("t", {"name": "a", "qty": 1})
            server = ReplicationServer(db, poll_interval=0.01)
            host, port = server.start()
            replica = open_replica()
            client = ReplicationClient(
                replica, (host, port), name="r1", reconnect_backoff=0.05
            ).start()
            try:
                assert client.wait_for_bootstrap(timeout=10.0)
                assert client.wait_for_lsn(db.last_lsn, timeout=10.0)
                # sever the stream, keep writing
                server.stop()
                assert _await(lambda: not client.connected, timeout=10.0)
                db.insert_row("t", {"name": "while-away", "qty": 2})
                # same port: the client's backoff loop finds it again
                server = ReplicationServer(
                    db, host=host, port=port, poll_interval=0.01)
                server.start()
                assert _await(lambda: client.connected, timeout=10.0)
                assert client.wait_for_lsn(db.last_lsn, timeout=10.0)
                assert _fingerprint(replica) == _fingerprint(db)
                # the tail re-ships from the top of the WAL file, so the
                # records from before the outage arrive a second time
                assert replica.engine.duplicates_skipped > 0
                assert client.reconnects >= 1
            finally:
                client.stop()
                server.stop()

    def test_checkpoint_while_disconnected_forces_resync(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            db.insert_row("t", {"name": "a", "qty": 1})
            server = ReplicationServer(db, poll_interval=0.01)
            host, port = server.start()
            replica = open_replica()
            client = ReplicationClient(
                replica, (host, port), name="r1", reconnect_backoff=0.05
            ).start()
            try:
                assert client.wait_for_bootstrap(timeout=10.0)
                assert client.wait_for_lsn(db.last_lsn, timeout=10.0)
                server.stop()
                assert _await(lambda: not client.connected, timeout=10.0)
                # the WAL the replica was mid-stream on disappears
                db.insert_row("t", {"name": "b", "qty": 2})
                db.checkpoint()
                db.insert_row("t", {"name": "c", "qty": 3})
                server = ReplicationServer(
                    db, host=host, port=port, poll_interval=0.01)
                server.start()
                assert _await(
                    lambda: replica.last_lsn == db.last_lsn, timeout=10.0
                )
                assert _fingerprint(replica) == _fingerprint(db)
            finally:
                client.stop()
                server.stop()

    def test_checkpoint_mid_stream_rebootstraps_peer(self, base_dir):
        with _open_primary(base_dir) as db:
            db.execute(_DDL)
            server = ReplicationServer(db, poll_interval=0.01)
            address = server.start()
            replica = open_replica()
            client = ReplicationClient(replica, address, name="r1").start()
            try:
                assert client.wait_for_bootstrap(timeout=10.0)
                db.insert_row("t", {"name": "pre", "qty": 1})
                assert client.wait_for_lsn(db.last_lsn, timeout=10.0)
                db.checkpoint()
                db.insert_row("t", {"name": "post", "qty": 2})
                assert client.wait_for_lsn(db.last_lsn, timeout=10.0)
                assert _fingerprint(replica) == _fingerprint(db)
            finally:
                client.stop()
                server.stop()

    def test_server_requires_durable_primary(self):
        db = Database(name="memory-only")
        with pytest.raises(ReplicationError, match="durable"):
            ReplicationServer(db)

    def test_client_requires_replica_engine(self, base_dir):
        with _open_primary(base_dir) as db:
            with pytest.raises(ReplicationError, match="ReplicaEngine"):
                ReplicationClient(db, ("127.0.0.1", 1))
