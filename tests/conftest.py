"""Shared fixtures: the paper's ACM Digital Library example (Figures 1-2)
as data model, hypertext model, and seeded running application.

The model builders are the library's own (:mod:`repro.workloads.acm`);
the seed data here is hand-written so tests can assert on exact titles.
"""

from __future__ import annotations

import pytest

from repro.app import WebApplication
from repro.er import ERModel
from repro.webml import WebMLModel
from repro.workloads.acm import build_acm_data_model, build_acm_model


def build_acm_webml() -> WebMLModel:
    """Figure 1's Volume Page plus list/detail/search/admin flows."""
    return build_acm_model()


def seed_acm(app: WebApplication) -> dict:
    """Seed the classic TODS content; returns the oids by name."""
    oids: dict = {}
    volume_oids = app.seed_entity("Volume", [
        {"number": 27, "year": 2002, "title": "TODS Volume 27"},
        {"number": 28, "year": 2003, "title": "TODS Volume 28"},
    ])
    oids["volumes"] = volume_oids
    issue_oids = app.seed_entity("Issue", [
        {"number": 1, "month": "March", "VolumeToIssue": volume_oids[0]},
        {"number": 2, "month": "June", "VolumeToIssue": volume_oids[0]},
        {"number": 1, "month": "March", "VolumeToIssue": volume_oids[1]},
    ])
    oids["issues"] = issue_oids
    paper_oids = app.seed_entity("Paper", [
        {"title": "Query Optimization Revisited", "pages": 30,
         "IssueToPaper": issue_oids[0]},
        {"title": "Indexing the Web", "pages": 24,
         "IssueToPaper": issue_oids[0]},
        {"title": "Data-Intensive Web Models", "pages": 28,
         "IssueToPaper": issue_oids[1]},
        {"title": "Caching Dynamic Content", "pages": 22,
         "IssueToPaper": issue_oids[2]},
    ])
    oids["papers"] = paper_oids
    author_oids = app.seed_entity("Author", [
        {"name": "S. Ceri"}, {"name": "P. Fraternali"},
    ])
    oids["authors"] = author_oids
    app.connect_instances("Authorship", paper_oids[2], author_oids[0])
    app.connect_instances("Authorship", paper_oids[2], author_oids[1])
    app.seed_entity("User", [
        {"username": "admin", "password": "secret"},
    ])
    return oids


@pytest.fixture
def acm_data_model() -> ERModel:
    return build_acm_data_model()


@pytest.fixture
def acm_webml() -> WebMLModel:
    return build_acm_webml()


@pytest.fixture
def acm_app() -> WebApplication:
    app = WebApplication(build_acm_webml())
    seed_acm(app)
    app.database.stats.reset()
    app.ctx.stats.reset()
    return app


@pytest.fixture
def acm_oids(acm_app) -> dict:
    """Look the seeded oids back up (stable across runs)."""
    db = acm_app.database
    return {
        "volumes": [r["oid"] for r in db.query("SELECT oid FROM volume ORDER BY oid")],
        "issues": [r["oid"] for r in db.query("SELECT oid FROM issue ORDER BY oid")],
        "papers": [r["oid"] for r in db.query("SELECT oid FROM paper ORDER BY oid")],
        "authors": [r["oid"] for r in db.query("SELECT oid FROM author ORDER BY oid")],
    }
