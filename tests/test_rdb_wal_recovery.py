"""Property-based and unit tests for the durable storage engine.

The recovery contract is held to a three-oracle discipline:

1. **recovery oracle** — cut the WAL at *any* byte offset; reopening
   must reproduce exactly the state after the longest committed prefix
   (no lost committed transaction, no resurrected uncommitted one);
2. **replica oracle** — full recovery equals an in-memory engine fed
   the identical statement sequence (durability adds persistence, not
   semantics);
3. **idempotence oracle** — recovery is a fixed point: reopening a
   recovered store changes nothing.

Hypothesis drives random DML/transaction sequences and random cut
points; the unit tests below pin the deliberate corner cases (torn
frames, CRC corruption, snapshot corruption, group commit, automatic
checkpoints).
"""

from __future__ import annotations

import io
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatabaseError, QueryError
from repro.rdb import Database, DurableEngine, MemoryEngine
from repro.rdb.snapshot import load_snapshot, write_snapshot
from repro.rdb.wal import (
    MAGIC,
    CommitRecord,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    committed_prefix_boundaries,
    read_log,
    read_value,
    write_value,
)

_DDL = (
    "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
    " name VARCHAR(40) NOT NULL, qty INTEGER, PRIMARY KEY (oid))"
)


def _fingerprint(db: Database) -> dict:
    """Committed-visible state: rows and named indexes per table.
    Auto-increment counters are excluded — rollbacks inflate them
    without leaving a durable trace (see bench_e18_durability)."""
    return {
        name: (
            {row_id: dict(row) for row_id, row in store.rows.items()},
            sorted(n for n, _ in store.iter_indexes()
                   if not n.startswith("#")),
        )
        for name, store in sorted(db.tables.items())
    }


def _apply_ops(db: Database, ops) -> None:
    """Interpret one generated statement sequence, deterministically."""
    db.execute(_DDL)
    live: list[int] = []
    for i, op in enumerate(ops):
        kind = op[0]
        if kind == "insert":
            row = db.insert_row("t", {"name": f"n{i}", "qty": op[1]})
            live.append(row["oid"])
        elif kind == "update" and live:
            db.execute("UPDATE t SET qty = :q WHERE oid = :oid",
                       {"q": op[2], "oid": live[op[1] % len(live)]})
        elif kind == "delete" and live:
            db.execute("DELETE FROM t WHERE oid = :oid",
                       {"oid": live.pop(op[1] % len(live))})
        elif kind == "txn":
            commit, count = op[1], op[2]
            db.begin()
            oids = [
                db.insert_row("t", {"name": f"x{i}-{j}", "qty": j})["oid"]
                for j in range(count)
            ]
            if commit:
                db.commit()
                live.extend(oids)
            else:
                db.rollback()
        elif kind == "analyze":
            db.analyze("t")


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 99)),
        st.tuples(st.just("update"), st.integers(0, 7), st.integers(0, 99)),
        st.tuples(st.just("delete"), st.integers(0, 7)),
        st.tuples(st.just("txn"), st.booleans(), st.integers(1, 3)),
        st.tuples(st.just("analyze")),
    ),
    min_size=1, max_size=20,
)


class TestRecoveryOracle:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, cut_fraction=st.floats(0.0, 1.0))
    def test_truncated_log_recovers_longest_committed_prefix(
            self, ops, cut_fraction):
        base = tempfile.mkdtemp(prefix="wal-oracle-")
        try:
            data_dir = os.path.join(base, "data")
            states: list[dict] = []
            with Database.open(data_dir) as db:
                db.commit_stream.subscribe(
                    lambda event: states.append(_fingerprint(db))
                )
                _apply_ops(db, ops)
            wal_path = os.path.join(data_dir, "wal.log")
            with open(wal_path, "rb") as handle:
                wal_bytes = handle.read()
            boundaries = committed_prefix_boundaries(wal_path)
            assert len(boundaries) == len(states)

            # oracle 1: recovery at an arbitrary byte offset
            cut = round(cut_fraction * len(wal_bytes))
            scratch = os.path.join(base, "scratch")
            os.makedirs(scratch)
            with open(os.path.join(scratch, "wal.log"), "wb") as handle:
                handle.write(wal_bytes[:cut])
            committed = sum(1 for b in boundaries if b <= cut)
            expected = states[committed - 1] if committed else {}
            with Database.open(scratch) as recovered:
                assert _fingerprint(recovered) == expected
                stats = recovered.storage_stats()["recovery"]
                assert stats["wal_records_replayed"] == committed

            # oracle 3: recovery is a fixed point
            with Database.open(scratch) as again:
                assert _fingerprint(again) == expected
                assert again.storage_stats()["recovery"][
                    "wal_records_replayed"] == committed
        finally:
            shutil.rmtree(base, ignore_errors=True)

    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS)
    def test_full_recovery_matches_memory_replica(self, ops):
        base = tempfile.mkdtemp(prefix="wal-replica-")
        try:
            with Database.open(os.path.join(base, "data")) as durable:
                _apply_ops(durable, ops)
                live_state = _fingerprint(durable)
            replica = Database()
            _apply_ops(replica, ops)
            with Database.open(os.path.join(base, "data")) as recovered:
                assert _fingerprint(recovered) == live_state
                assert _fingerprint(recovered) == _fingerprint(replica)
        finally:
            shutil.rmtree(base, ignore_errors=True)


_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.dates(),
)


class TestWalCodec:
    @settings(max_examples=100, deadline=None)
    @given(value=_VALUES)
    def test_value_roundtrip(self, value):
        out = io.BytesIO()
        write_value(out, value)
        back = read_value(io.BytesIO(out.getvalue()))
        assert back == value and type(back) is type(value)

    def test_commit_record_roundtrip(self):
        record = CommitRecord(7, [
            (OP_INSERT, "t", 3, {"oid": 3, "name": "a", "qty": None}),
            (OP_UPDATE, "t", 3, {"oid": 3, "name": "b", "qty": 2}),
            (OP_DELETE, "t", 1),
        ])
        back = CommitRecord.decode(record.encode())
        assert back.lsn == 7
        assert back.ops == record.ops
        assert back.tables() == {"t"}


class TestCorruption:
    def _populated(self, base: str) -> tuple[str, list[dict]]:
        data_dir = os.path.join(base, "data")
        states: list[dict] = []
        with Database.open(data_dir) as db:
            db.commit_stream.subscribe(
                lambda event: states.append(_fingerprint(db))
            )
            db.execute(_DDL)
            for i in range(6):
                db.insert_row("t", {"name": f"n{i}", "qty": i})
        return data_dir, states

    def test_garbage_header_recovers_empty_and_reinitializes(self):
        base = tempfile.mkdtemp(prefix="wal-garbage-")
        try:
            data_dir = os.path.join(base, "data")
            os.makedirs(data_dir)
            with open(os.path.join(data_dir, "wal.log"), "wb") as handle:
                handle.write(b"not a wal at all")
            with Database.open(data_dir) as db:
                assert db.tables == {}
                db.execute(_DDL)
                db.insert_row("t", {"name": "fresh", "qty": 1})
            with Database.open(data_dir) as again:
                assert len(again.tables["t"].rows) == 1
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_flipped_byte_cuts_log_at_corruption(self):
        base = tempfile.mkdtemp(prefix="wal-flip-")
        try:
            data_dir, states = self._populated(base)
            wal_path = os.path.join(data_dir, "wal.log")
            boundaries = committed_prefix_boundaries(wal_path)
            # corrupt the 4th record's payload: records 1-3 must survive
            with open(wal_path, "r+b") as handle:
                handle.seek(boundaries[3] - 1)
                original = handle.read(1)
                handle.seek(boundaries[3] - 1)
                handle.write(bytes([original[0] ^ 0xFF]))
            with Database.open(data_dir) as recovered:
                assert _fingerprint(recovered) == states[2]
                stats = recovered.storage_stats()["recovery"]
                assert stats["wal_records_replayed"] == 3
                # the torn tail is gone: the log accepts new commits
                recovered.insert_row("t", {"name": "after", "qty": 9})
            assert len(committed_prefix_boundaries(wal_path)) == 4
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_corrupt_snapshot_is_detected(self):
        base = tempfile.mkdtemp(prefix="snap-corrupt-")
        try:
            data_dir, _states = self._populated(base)
            with Database.open(data_dir) as db:
                db.checkpoint()
            snapshot_path = os.path.join(data_dir, "snapshot.db")
            with open(snapshot_path, "r+b") as handle:
                handle.seek(30)
                byte = handle.read(1)
                handle.seek(30)
                handle.write(bytes([byte[0] ^ 0xFF]))
            with pytest.raises(DatabaseError):
                Database.open(data_dir)
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestSnapshotAndCheckpoint:
    def test_snapshot_roundtrip_preserves_counters_and_indexes(self):
        base = tempfile.mkdtemp(prefix="snap-rt-")
        try:
            db = Database()
            db.execute(_DDL)
            db.execute("CREATE INDEX ix_t_qty ON t (qty)")
            for i in range(5):
                db.insert_row("t", {"name": f"n{i}", "qty": i % 2})
            db.execute("DELETE FROM t WHERE oid = 5")
            db.analyze("t")
            path = os.path.join(base, "snap.db")
            size = write_snapshot(path, 42, db.tables)
            assert size == os.path.getsize(path)
            lsn, tables = load_snapshot(path)
            assert lsn == 42
            store = tables["t"]
            assert {r["oid"] for r in store.rows.values()} == {1, 2, 3, 4}
            # counters continue where the source left off: no oid reuse
            assert store.auto_counter == db.tables["t"].auto_counter
            assert store.next_row_id == db.tables["t"].next_row_id
            assert any(n == "ix_t_qty" for n, _ in store.iter_indexes())
            assert store.statistics is not None
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_automatic_checkpoint_truncates_log(self):
        base = tempfile.mkdtemp(prefix="auto-ckpt-")
        try:
            data_dir = os.path.join(base, "data")
            with Database.open(data_dir, checkpoint_bytes=2_000) as db:
                db.execute(_DDL)
                for i in range(60):
                    db.insert_row("t", {"name": f"row-{i:03d}", "qty": i})
                stats = db.storage_stats()
                assert stats["snapshots_written"] >= 1
                state = _fingerprint(db)
            wal_size = os.path.getsize(os.path.join(data_dir, "wal.log"))
            assert wal_size < 2_000 + 1_000  # truncated at the threshold
            with Database.open(data_dir) as recovered:
                assert _fingerprint(recovered) == state
                assert recovered.storage_stats()["recovery"][
                    "snapshot_loaded"] is True
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestGroupCommit:
    def test_window_defers_fsyncs_and_close_flushes(self):
        base = tempfile.mkdtemp(prefix="group-")
        try:
            data_dir = os.path.join(base, "data")
            with Database.open(data_dir, group_commit_window=60.0) as db:
                db.execute(_DDL)
                for i in range(20):
                    db.insert_row("t", {"name": f"n{i}", "qty": i})
                stats = db.storage_stats()
                assert stats["wal_records"] == 21
                # the wide window batched (nearly) all barriers away
                assert stats["wal_fsyncs"] <= 2
                state = _fingerprint(db)
            # close() flushed the deferred tail: nothing was lost
            with Database.open(data_dir) as recovered:
                assert _fingerprint(recovered) == state
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestEngineContract:
    def test_mutation_outside_scope_is_rejected(self):
        engine = MemoryEngine()
        with pytest.raises(QueryError):
            engine.note_insert("t", 1, {"oid": 1})

    def test_durable_statements_are_atomic(self):
        base = tempfile.mkdtemp(prefix="atomic-")
        try:
            with Database.open(os.path.join(base, "data")) as db:
                db.execute(_DDL)
                db.execute(
                    "CREATE TABLE u (oid INTEGER NOT NULL,"
                    " PRIMARY KEY (oid))"
                )
                db.insert_row("u", {"oid": 1})
                db.insert_row("t", {"name": "keep", "qty": 1})
                # second row violates u's pk after the first applied:
                # the durable engine must roll the statement back
                with pytest.raises(DatabaseError):
                    db.execute("INSERT INTO u (oid) VALUES (:v)", {"v": 1})
                assert len(db.tables["u"].rows) == 1
                # and the log agrees with memory
                state = _fingerprint(db)
            with Database.open(os.path.join(base, "data")) as recovered:
                assert _fingerprint(recovered) == state
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_rollback_keeps_ddl_in_log(self):
        base = tempfile.mkdtemp(prefix="ddl-rb-")
        try:
            with Database.open(os.path.join(base, "data")) as db:
                db.execute(_DDL)
                db.begin()
                db.insert_row("t", {"name": "gone", "qty": 0})
                db.execute(
                    "CREATE TABLE mid (oid INTEGER NOT NULL,"
                    " PRIMARY KEY (oid))"
                )
                db.rollback()
                # DML undone, DDL kept (DDL is not transactional)
                assert len(db.tables["t"].rows) == 0
                assert "mid" in db.tables
                state = _fingerprint(db)
            with Database.open(os.path.join(base, "data")) as recovered:
                assert _fingerprint(recovered) == state
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_commit_events_publish_after_commit(self):
        db = Database()
        events = []
        db.commit_stream.subscribe(events.append)
        db.execute(_DDL)
        db.insert_row("t", {"name": "a", "qty": 1})
        db.begin()
        db.insert_row("t", {"name": "b", "qty": 2})
        db.insert_row("t", {"name": "c", "qty": 3})
        db.commit()
        assert [e.lsn for e in events] == [1, 2, 3]
        assert all(e.tables == frozenset({"t"}) for e in events)
        assert not events[0].durable
        assert len(events[2].ops) == 2  # one event per transaction
        db.commit_stream.unsubscribe(events.append)
        db.insert_row("t", {"name": "d", "qty": 4})
        assert len(events) == 3

    def test_read_log_tolerates_missing_file(self):
        assert list(read_log("/nonexistent/wal.log")) == []
        assert committed_prefix_boundaries("/nonexistent/wal.log") == []

    def test_wal_header_written_once(self):
        base = tempfile.mkdtemp(prefix="hdr-")
        try:
            with Database.open(os.path.join(base, "data")) as db:
                db.execute(_DDL)
            wal_path = os.path.join(base, "data", "wal.log")
            with open(wal_path, "rb") as handle:
                assert handle.read(len(MAGIC)) == MAGIC
            engine = DurableEngine(os.path.join(base, "data"))
            assert engine.recovery_stats["wal_records_replayed"] == 1
            engine.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)
