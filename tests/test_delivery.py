"""Tests for the delivery tier: the level-0 page cache, the
invalidation bus spanning all three cache levels, conditional HTTP
(ETag / If-None-Match / Cache-Control), and gzip negotiation."""

import gzip
import threading

import pytest

from repro.app import Browser, WebApplication
from repro.caching import (
    FragmentCache,
    InvalidationBus,
    PageCache,
    UnitBeanCache,
    canonical_params,
    content_etag,
)
from repro.codegen import generate_project
from repro.errors import CacheError
from repro.mvc import HttpResponse
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.util import VirtualClock

from tests.conftest import build_acm_webml, seed_acm


class TestCanonicalParams:
    def test_order_insensitive(self):
        assert canonical_params({"a": "1", "b": "2"}) == \
            canonical_params({"b": "2", "a": "1"})

    def test_lists_become_tuples(self):
        key = canonical_params({"ids": ["1", "2"]})
        assert key == (("ids", ("1", "2")),)
        hash(key)  # must be usable as a dict key

    def test_different_values_differ(self):
        assert canonical_params({"a": "1"}) != canonical_params({"a": "2"})


class TestContentEtag:
    def test_strong_quoted_form(self):
        etag = content_etag("<html/>")
        assert etag.startswith('"') and etag.endswith('"')

    def test_deterministic_and_content_bound(self):
        assert content_etag("x") == content_etag("x")
        assert content_etag("x") != content_etag("y")


class TestPageCache:
    def _entry(self, cache, body="<html/>", entities=("Paper",), roles=()):
        return cache.make_entry(body, entities=entities, roles=roles)

    def test_make_entry_precomputes_delivery(self):
        cache = PageCache()
        entry = self._entry(cache, body="<html>hi</html>")
        assert entry.etag == content_etag("<html>hi</html>")
        assert gzip.decompress(entry.gzip_body).decode() == "<html>hi</html>"

    def test_put_get_lru(self):
        cache = PageCache(max_entries=2)
        cache.put("a", self._entry(cache))
        cache.put("b", self._entry(cache))
        cache.get("a")  # refresh a
        cache.put("c", self._entry(cache))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats.evictions == 1

    def test_ttl_expiry(self):
        clock = VirtualClock()
        cache = PageCache(ttl_seconds=30, clock=clock)
        cache.put("k", self._entry(cache))
        assert cache.get("k") is not None
        clock.advance(31)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_scoped_invalidation_drops_only_dependents(self):
        cache = PageCache()
        cache.put("papers", self._entry(cache, entities=("Paper",)))
        cache.put("volumes", self._entry(cache, entities=("Volume",)))
        cache.put("authors", self._entry(cache, entities=(),
                                         roles=("Authorship",)))
        assert cache.invalidate_writes(entities=["Paper"]) == 1
        assert cache.get("papers") is None
        assert cache.get("volumes") is not None
        assert cache.invalidate_writes(roles=["Authorship"]) == 1
        assert cache.get("authors") is None
        assert cache.dependents_of(entity="Paper") == 0

    def test_unscoped_mode_flushes_on_any_write(self):
        cache = PageCache(scoped=False)
        cache.put("papers", self._entry(cache, entities=("Paper",)))
        cache.put("volumes", self._entry(cache, entities=("Volume",)))
        # a write set that scoped mode would ignore still wipes everything
        assert cache.invalidate_writes(entities=["Author"]) == 2
        assert len(cache) == 0

    def test_unscoped_mode_ignores_empty_write_set(self):
        cache = PageCache(scoped=False)
        cache.put("k", self._entry(cache))
        assert cache.invalidate_writes() == 0
        assert len(cache) == 1

    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            PageCache(max_entries=0)

    def test_get_or_build_single_flight(self):
        cache = PageCache()
        builds = []
        gate = threading.Event()

        def build():
            gate.wait(2.0)
            builds.append(1)
            return cache.make_entry("<html/>", entities=("Paper",))

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build("k", build))
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()
        assert len(builds) == 1  # one leader built; the rest waited
        assert all(r.body == "<html/>" for r in results)
        assert cache.stats.coalesced >= 1
        assert not cache._in_flight

    def test_invalidation_during_build_discards_result(self):
        cache = PageCache()

        def build():
            # a write lands between the build and the store
            cache.invalidate_writes(entities=["Paper"])
            return cache.make_entry("<stale/>", entities=("Paper",))

        entry = cache.get_or_build("k", build)
        assert entry.body == "<stale/>"  # the caller still gets the page
        assert cache.get("k") is None  # but it was never cached


class TestInvalidationBus:
    def test_levels_invalidate_in_registration_order(self):
        bus = InvalidationBus()
        bean, fragment = UnitBeanCache(), FragmentCache()
        from repro.services import UnitBean

        bus.register("bean", bean)
        bus.register("fragment", fragment)
        bean.put("b", UnitBean("u", "U", "index"), entities=["Paper"])
        fragment.put("f", "<div/>", entities=["Paper"])
        dropped = bus.invalidate_writes(entities=["Paper"])
        assert dropped == {"bean": 1, "fragment": 1}
        assert bus.targets() == ["bean", "fragment"]

    def test_register_replaces_by_name(self):
        bus = InvalidationBus()
        first, second = FragmentCache(), FragmentCache()
        bus.register("fragment", first)
        bus.register("fragment", second)
        assert bus.targets() == ["fragment"]
        second.put("only-in-second", "<div/>", entities=["Paper"])
        assert bus.invalidate_writes(entities=["Paper"]) == {"fragment": 1}
        assert len(second) == 0 and first.stats.invalidations == 0

    def test_flush_clears_every_level(self):
        bus = InvalidationBus()
        fragment = FragmentCache()
        fragment.put("f", "<div/>")
        bus.register("fragment", fragment)
        assert bus.flush() == {"fragment": 1}
        assert len(fragment) == 0


class TestHttpResponseDelivery:
    def test_not_modified_shape(self):
        response = HttpResponse.not_modified('"abc"', {"Cache-Control": "x"})
        assert response.status == 304
        assert response.body == ""
        assert response.etag == '"abc"'
        assert response.wire_length == 0

    def test_wire_length_prefers_encoded_body(self):
        response = HttpResponse(status=200, body="x" * 1000)
        assert response.wire_length == 1000
        response.encoded_body = b"z" * 40
        assert response.wire_length == 40


def _delivery_app(scoped: bool = True, ttl: float | None = None):
    """The ACM application with all three cache levels active."""
    model = build_acm_webml()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    stylesheet = default_stylesheet("ACM")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    fragment_cache = FragmentCache(scoped=scoped)
    page_cache = PageCache(scoped=scoped, ttl_seconds=ttl)
    renderer = PresentationRenderer(
        project.skeletons, stylesheet, fragment_cache=fragment_cache
    )
    bean_cache = UnitBeanCache()
    app = WebApplication(model, view_renderer=renderer,
                         bean_cache=bean_cache, page_cache=page_cache)
    seed_acm(app)
    app.ctx.stats.reset()
    return app, page_cache, fragment_cache, bean_cache


def _admin(app) -> Browser:
    browser = Browser(app)
    browser.get(app.operation_url(
        "admin", "Login", {"username": "admin", "password": "secret"}
    ))
    assert browser.status == 200
    return browser


class TestPageCacheEndToEnd:
    def test_bus_registers_levels_deepest_first(self):
        app, *_ = _delivery_app()
        assert app.ctx.invalidation_bus.targets() == \
            ["bean", "fragment", "page"]

    def test_repeat_get_serves_from_page_cache(self):
        app, page_cache, _, _ = _delivery_app()
        browser = Browser(app)
        first = browser.get("/")
        again = browser.get("/")
        assert first.body == again.body
        assert page_cache.stats.hits == 1
        # beyond the first build, the page no longer touches the model
        queries = app.ctx.stats.queries_executed
        browser.get("/")
        assert app.ctx.stats.queries_executed == queries

    def test_parameter_order_shares_the_entry(self, acm_oids):
        app, page_cache, _, _ = _delivery_app()
        view = app.model.find_site_view("public")
        page = view.find_page("Volume Page")
        unit = page.unit("Volume data")
        oid = acm_oids["volumes"][0]
        base = f"/{view.id}/{page.id}"
        browser = Browser(app)
        browser.get(f"{base}?{unit.id}.oid={oid}&extra=1")
        browser.get(f"{base}?extra=1&{unit.id}.oid={oid}")
        assert page_cache.stats.hits == 1
        assert len(page_cache) == 1

    def test_principal_partitions_the_key(self):
        app, page_cache, _, _ = _delivery_app()
        url = app.page_url("public", "Volumes")
        Browser(app).get(url)
        _admin(app).get(url)
        # same page, same bytes would even match — but an authenticated
        # principal must never share an anonymous entry
        assert len(page_cache) >= 2

    def test_etag_and_cache_control_headers(self):
        app, *_ = _delivery_app()
        response = Browser(app).get("/")
        assert response.etag == content_etag(response.body)
        assert response.headers["Cache-Control"] == "public, no-cache"

    def test_ttl_policy_becomes_max_age(self):
        app, *_ = _delivery_app(ttl=60)
        response = Browser(app).get("/")
        assert response.headers["Cache-Control"] == "public, max-age=60"

    def test_authenticated_responses_are_private(self):
        app, *_ = _delivery_app()
        response = _admin(app).get(app.page_url("admin", "Admin Home"))
        assert response.headers["Cache-Control"].startswith("private")

    def test_if_none_match_gets_304(self):
        app, *_ = _delivery_app()
        browser = Browser(app)
        first = browser.get("/")
        revalidation = app.get(
            app.page_url("public", "Volumes"),
            headers={"If-None-Match": first.etag},
        )
        assert revalidation.status == 304
        assert revalidation.etag == first.etag
        assert revalidation.wire_length == 0

    def test_stale_validator_gets_full_response(self):
        app, *_ = _delivery_app()
        Browser(app).get("/")
        response = app.get(app.page_url("public", "Volumes"),
                           headers={"If-None-Match": '"stale"'})
        assert response.status == 200 and response.body

    def test_gzip_negotiation(self):
        app, *_ = _delivery_app()
        url = app.page_url("public", "Volumes")
        identity = app.get(url)
        compressed = app.get(url, headers={"Accept-Encoding": "gzip"})
        assert compressed.headers["Content-Encoding"] == "gzip"
        assert compressed.headers["Vary"] == "Accept-Encoding"
        assert gzip.decompress(compressed.encoded_body).decode() == \
            identity.body
        assert compressed.wire_length < identity.wire_length

    def test_conditional_http_without_page_cache(self):
        """_finalize gives every 200 HTML GET a validator, even when no
        page cache is deployed."""
        model = build_acm_webml()
        app = WebApplication(model)
        seed_acm(app)
        browser = Browser(app)
        first = browser.get("/")
        assert first.etag is not None
        revalidation = app.get(app.page_url("public", "Volumes"),
                               headers={"If-None-Match": first.etag})
        assert revalidation.status == 304

    def test_browser_conditional_mode_materializes_304(self):
        app, *_ = _delivery_app()
        browser = Browser(app, conditional=True)
        first = browser.get("/")
        assert first.status == 200
        again = browser.get(app.page_url("public", "Volumes"))
        assert again.status == 304  # revalidated on the wire...
        assert again.body == first.body  # ...but the user sees the page


class TestWriteInvalidationAcrossLevels:
    """One operation, three cache levels: each drops exactly the
    dependent entries."""

    def _warm(self, app, acm_oids):
        browser = Browser(app)
        browser.get(app.page_url("public", "Volumes"))
        browser.get(app.page_url(
            "public", "Volume Page",
            {f"{self._volume_unit(app).id}.oid": acm_oids['volumes'][0]},
        ))
        return browser

    @staticmethod
    def _volume_unit(app):
        view = app.model.find_site_view("public")
        return view.find_page("Volume Page").unit("Volume data")

    def test_create_paper_drops_only_paper_dependents(self, acm_oids):
        app, page_cache, fragment_cache, bean_cache = _delivery_app()
        self._warm(app, acm_oids)
        assert len(page_cache) == 2
        assert page_cache.dependents_of(entity="Paper") == 1  # Volume Page
        writer = _admin(app)  # lands on Admin Home: a third cached page
        assert len(page_cache) == 3
        writer.get(app.operation_url(
            "admin", "CreatePaper", {"title": "Fresh", "pages": "3"},
        ), follow_redirects=False)
        # every level dropped its Paper dependents (Volume Page and the
        # admin paper list)...
        assert bean_cache.dependents_of(entity="Paper") == 0
        assert fragment_cache.dependents_of(entity="Paper") == 0
        assert page_cache.dependents_of(entity="Paper") == 0
        # ...and only those: the Volumes page (Volume-only) survived
        assert len(page_cache) == 1
        assert page_cache.dependents_of(entity="Volume") == 1

    def test_read_after_write_observes_the_write(self, acm_oids):
        app, *_ = _delivery_app()
        view = app.model.find_site_view("public")
        matching = view.find_page("SearchResults").unit("Matching papers")
        check_url = app.page_url("public", "SearchResults",
                                 {f"{matching.id}.keyword": "Hot Topic"})
        reader = Browser(app)
        assert "Hot Topic" not in reader.get(check_url).body
        _admin(app).get(app.operation_url(
            "admin", "CreatePaper", {"title": "Hot Topic", "pages": "1"},
        ), follow_redirects=False)
        assert "Hot Topic" in reader.get(check_url).body

    def test_delete_paper_drops_dependents(self, acm_oids):
        app, page_cache, _, _ = _delivery_app()
        self._warm(app, acm_oids)
        writer = _admin(app)
        writer.get(app.operation_url(
            "admin", "DeletePaper", {"oid": acm_oids["papers"][0]},
        ), follow_redirects=False)
        assert page_cache.dependents_of(entity="Paper") == 0
        assert page_cache.dependents_of(entity="Volume") == 1

    def test_login_does_not_invalidate(self, acm_oids):
        app, page_cache, fragment_cache, bean_cache = _delivery_app()
        self._warm(app, acm_oids)
        pages = len(page_cache)
        fragments = len(fragment_cache)
        _admin(app)  # the login operation writes nothing
        # nothing was dropped (the login itself cached one more page)
        assert page_cache.stats.invalidations == 0
        assert fragment_cache.stats.invalidations == 0
        assert bean_cache.stats.invalidations == 0
        assert len(page_cache) >= pages
        assert len(fragment_cache) >= fragments

    def test_unscoped_write_wipes_the_page_cache(self, acm_oids):
        app, page_cache, _, _ = _delivery_app(scoped=False)
        self._warm(app, acm_oids)
        assert len(page_cache) >= 2
        _admin(app).get(app.operation_url(
            "admin", "CreatePaper", {"title": "Wipe", "pages": "1"},
        ), follow_redirects=False)
        assert len(page_cache) == 0  # no model, no precision


class TestAppServerDeliveryStats:
    def test_status_counts_and_bytes_on_wire(self):
        from repro.appserver import ThreadedAppServer

        app, *_ = _delivery_app()
        url = app.page_url("public", "Volumes")
        with ThreadedAppServer(app, workers=2) as server:
            first = server.get(url).result(5)
            etag = first.etag
            server.get(url, headers={"If-None-Match": etag}).result(5)
            stats = server.stats()
        assert stats["status_counts"][200] == 1
        assert stats["status_counts"][304] == 1
        assert stats["bytes_on_wire"] == first.wire_length
