"""Tests for descriptor dataclasses, XML round-trips, and the registry's
hot-redeploy / optimized-preservation semantics (§6, §8)."""

import pytest

from repro.descriptors import (
    BeanProperty,
    DescriptorRegistry,
    InputParameter,
    LevelQuery,
    NavigationTarget,
    OperationDescriptor,
    OutcomeTarget,
    PageDescriptor,
    SlotBinding,
    StatementSpec,
    UnitDescriptor,
)
from repro.errors import DescriptorError


def sample_unit_descriptor() -> UnitDescriptor:
    return UnitDescriptor(
        unit_id="unit7",
        name="Issues&Papers",
        kind="hierarchical",
        entity="Issue",
        query="SELECT t0.oid AS oid FROM issue t0 WHERE "
              "t0.volume_to_issue_oid = :volume ORDER BY t0.oid",
        inputs=[InputParameter("volume", "volume", value_type="int")],
        properties=[BeanProperty("oid", "oid"), BeanProperty("number", "number")],
        levels=[
            LevelQuery(
                entity="Paper",
                query="SELECT t0.oid AS oid, t0.title AS title FROM paper t0 "
                      "WHERE t0.issue_to_paper_oid = :parent ORDER BY t0.oid",
                properties=[BeanProperty("oid", "oid"),
                            BeanProperty("title", "title")],
            )
        ],
        depends_on_entities=["Issue", "Paper"],
        depends_on_roles=["VolumeToIssue", "IssueToPaper"],
        cacheable=True,
        cache_policy="model-driven",
    )


class TestUnitDescriptor:
    def test_xml_roundtrip(self):
        descriptor = sample_unit_descriptor()
        loaded = UnitDescriptor.from_xml(descriptor.to_xml())
        assert loaded.unit_id == "unit7"
        assert loaded.kind == "hierarchical"
        assert loaded.query == descriptor.query
        assert loaded.inputs[0].value_type == "int"
        assert loaded.levels[0].entity == "Paper"
        assert loaded.levels[0].properties[1].name == "title"
        assert loaded.depends_on_roles == ["VolumeToIssue", "IssueToPaper"]
        assert loaded.cacheable

    def test_optimized_flag_roundtrip(self):
        descriptor = sample_unit_descriptor()
        descriptor.optimized = True
        descriptor.custom_service = "MyTunedService"
        loaded = UnitDescriptor.from_xml(descriptor.to_xml())
        assert loaded.optimized
        assert loaded.custom_service == "MyTunedService"

    def test_entry_fields_roundtrip(self):
        descriptor = UnitDescriptor(
            unit_id="unit9", name="Enter keyword", kind="entry",
            entry_fields=[{"name": "keyword", "type": "text",
                           "required": "true", "label": "Keyword"}],
        )
        loaded = UnitDescriptor.from_xml(descriptor.to_xml())
        assert loaded.entry_fields[0]["name"] == "keyword"

    def test_input_slot_lookup(self):
        descriptor = sample_unit_descriptor()
        assert descriptor.input_for_slot("volume").sql_param == "volume"
        with pytest.raises(DescriptorError, match="no input slot"):
            descriptor.input_for_slot("ghost")

    def test_bad_match_mode_rejected(self):
        with pytest.raises(DescriptorError):
            InputParameter("a", "a", match="fuzzy")

    def test_bad_value_type_rejected(self):
        with pytest.raises(DescriptorError):
            InputParameter("a", "a", value_type="decimal")

    def test_wrong_root_rejected(self):
        with pytest.raises(DescriptorError, match="expected <unitDescriptor>"):
            UnitDescriptor.from_xml("<pageDescriptor id='x' name='y' siteview='z'/>")

    def test_sql_with_angle_brackets_roundtrips(self):
        descriptor = UnitDescriptor(
            unit_id="u", name="n", kind="index", entity="E",
            query="SELECT t0.oid AS oid FROM e t0 WHERE t0.n < 3 AND t0.m > 1 "
                  "ORDER BY t0.oid",
        )
        loaded = UnitDescriptor.from_xml(descriptor.to_xml())
        assert "< 3" in loaded.query and "> 1" in loaded.query


def sample_page_descriptor() -> PageDescriptor:
    return PageDescriptor(
        page_id="page2",
        name="Volume Page",
        site_view_id="sv1",
        layout_category="two-columns",
        unit_order=["unit2", "unit3"],
        bindings=[
            SlotBinding("unit2", "oid", "request", request_param="unit2.oid"),
            SlotBinding("unit3", "volume", "unit", source_unit_id="unit2",
                        source_output="oid"),
        ],
        navigation=[
            NavigationTarget(
                link_id="link3", source_unit_id="unit3", target_kind="page",
                target_id="page3", target_page_id="page3",
                parameters=[("oid", "unit5.oid")], label="paper details",
            )
        ],
    )


class TestPageDescriptor:
    def test_xml_roundtrip(self):
        descriptor = sample_page_descriptor()
        loaded = PageDescriptor.from_xml(descriptor.to_xml())
        assert loaded.unit_order == ["unit2", "unit3"]
        assert loaded.layout_category == "two-columns"
        request_binding = loaded.bindings_for("unit2")[0]
        assert request_binding.source == "request"
        assert request_binding.request_param == "unit2.oid"
        unit_binding = loaded.bindings_for("unit3")[0]
        assert unit_binding.source_unit_id == "unit2"
        nav = loaded.navigation_from("unit3")[0]
        assert nav.parameters == [("oid", "unit5.oid")]
        assert nav.label == "paper details"

    def test_binding_validation(self):
        with pytest.raises(DescriptorError, match="request binding"):
            SlotBinding("u", "s", "request")
        with pytest.raises(DescriptorError, match="unit binding"):
            SlotBinding("u", "s", "unit")
        with pytest.raises(DescriptorError, match="unknown binding source"):
            SlotBinding("u", "s", "cosmic")


def sample_operation_descriptor() -> OperationDescriptor:
    return OperationDescriptor(
        operation_id="op1",
        name="CreatePaper",
        kind="create",
        site_view_id="sv2",
        entity="Paper",
        statements=[
            StatementSpec(
                sql="INSERT INTO paper (title, pages) VALUES (:title, :pages)",
                params=[("title", "title", "auto"), ("pages", "pages", "auto")],
                captures_new_oid=True,
            )
        ],
        ok=OutcomeTarget("page", "page5", target_page_id="page5",
                         parameters=[("oid", "unit9.oid")]),
        ko=OutcomeTarget("page", "page6", target_page_id="page6"),
        writes_entities=["Paper"],
    )


class TestOperationDescriptor:
    def test_xml_roundtrip(self):
        descriptor = sample_operation_descriptor()
        loaded = OperationDescriptor.from_xml(descriptor.to_xml())
        assert loaded.kind == "create"
        assert loaded.statements[0].captures_new_oid
        assert loaded.statements[0].params == [
            ("title", "title", "auto"), ("pages", "pages", "auto")
        ]
        assert loaded.ok.parameters == [("oid", "unit9.oid")]
        assert loaded.ko.target_id == "page6"
        assert loaded.writes_entities == ["Paper"]

    def test_legacy_two_tuple_params_accepted(self):
        spec = StatementSpec(sql="DELETE FROM t WHERE oid = :oid",
                             params=[("oid", "oid")])
        assert spec.params == [("oid", "oid", "auto")]

    def test_login_descriptor_roundtrip(self):
        descriptor = OperationDescriptor(
            operation_id="op9", name="Login", kind="login",
            user_query="SELECT oid AS oid FROM user WHERE username = :username",
        )
        loaded = OperationDescriptor.from_xml(descriptor.to_xml())
        assert "username" in loaded.user_query


class TestRegistry:
    def test_deploy_and_lookup(self):
        registry = DescriptorRegistry()
        registry.deploy_unit(sample_unit_descriptor())
        registry.deploy_page(sample_page_descriptor())
        registry.deploy_operation(sample_operation_descriptor())
        assert registry.unit("unit7").name == "Issues&Papers"
        assert registry.page("page2").name == "Volume Page"
        assert registry.operation("op1").kind == "create"
        assert registry.counts() == {
            "unit_descriptors": 1, "page_descriptors": 1,
            "operation_descriptors": 1,
        }

    def test_missing_descriptor_raises(self):
        registry = DescriptorRegistry()
        with pytest.raises(DescriptorError, match="no unit descriptor"):
            registry.unit("ghost")
        with pytest.raises(DescriptorError, match="no page descriptor"):
            registry.page("ghost")
        with pytest.raises(DescriptorError, match="no operation descriptor"):
            registry.operation("ghost")

    def test_hot_redeploy_bumps_version(self):
        registry = DescriptorRegistry()
        descriptor = sample_unit_descriptor()
        registry.deploy_unit(descriptor)
        assert registry.unit_version("unit7") == 1
        edited = descriptor.to_xml().replace(
            "ORDER BY t0.oid", "ORDER BY t0.number DESC"
        )
        redeployed = registry.redeploy_unit(edited)
        assert registry.unit_version("unit7") == 2
        assert "t0.number DESC" in redeployed.query

    def test_optimized_descriptor_survives_regeneration(self):
        """§6: a developer-optimized descriptor is not overwritten by a
        regenerated default."""
        registry = DescriptorRegistry()
        original = sample_unit_descriptor()
        registry.deploy_unit(original)
        optimized = UnitDescriptor.from_xml(original.to_xml())
        optimized.optimized = True
        optimized.query = "SELECT t0.oid AS oid FROM issue t0 ORDER BY t0.oid"
        registry.redeploy_unit(optimized.to_xml())

        regenerated = sample_unit_descriptor()  # the default again
        assert registry.deploy_unit(regenerated) is False
        assert registry.unit("unit7").optimized
        assert "volume_to_issue_oid" not in registry.unit("unit7").query

    def test_optimized_operation_survives_regeneration(self):
        registry = DescriptorRegistry()
        original = sample_operation_descriptor()
        registry.deploy_operation(original)
        optimized = OperationDescriptor.from_xml(original.to_xml())
        optimized.optimized = True
        registry.redeploy_operation(optimized.to_xml())
        assert registry.deploy_operation(sample_operation_descriptor()) is False

    def test_as_files_layout(self):
        registry = DescriptorRegistry()
        registry.deploy_unit(sample_unit_descriptor())
        registry.deploy_page(sample_page_descriptor())
        registry.deploy_operation(sample_operation_descriptor())
        files = registry.as_files()
        assert "descriptors/units/unit7.xml" in files
        assert "descriptors/pages/page2.xml" in files
        assert "descriptors/operations/op1.xml" in files


# ---------------------------------------------------------------------------
# Property-based round-trips: arbitrary descriptors survive XML.
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=20,
)
_idents = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
# Descriptor files are pretty-printed, which normalizes surrounding
# whitespace in text content — so SQL strategies produce stripped text.
_sql = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=60,
).map(str.strip).filter(bool)


@st.composite
def _unit_descriptors(draw):
    inputs = [
        InputParameter(
            slot=draw(_idents),
            sql_param=draw(_idents),
            match=draw(st.sampled_from(["exact", "contains"])),
            required=draw(st.booleans()),
            value_type=draw(st.sampled_from(["auto", "int", "float",
                                             "bool", "string"])),
        )
        for _ in range(draw(st.integers(0, 3)))
    ]
    properties = [
        BeanProperty(draw(_idents), draw(_idents))
        for _ in range(draw(st.integers(0, 3)))
    ]
    levels = [
        LevelQuery(entity=draw(_names), query=draw(_sql),
                   properties=[BeanProperty(draw(_idents), draw(_idents))])
        for _ in range(draw(st.integers(0, 2)))
    ]
    return UnitDescriptor(
        unit_id=draw(_idents),
        name=draw(_names),
        kind=draw(st.sampled_from(["data", "index", "scroller", "custom"])),
        entity=draw(st.none() | _names),
        query=draw(st.none() | _sql),
        count_query=draw(st.none() | _sql),
        inputs=inputs,
        properties=properties,
        levels=levels,
        block_size=draw(st.none() | st.integers(1, 50)),
        depends_on_entities=draw(st.lists(_names, max_size=3)),
        depends_on_roles=draw(st.lists(_names, max_size=3)),
        cacheable=(cacheable := draw(st.booleans())),
        # the policy only serializes for cacheable units (by design)
        cache_policy=draw(st.sampled_from(["model-driven", "ttl:30"]))
        if cacheable else "model-driven",
        optimized=draw(st.booleans()),
        custom_service=draw(st.none() | _idents),
    )


class TestDescriptorRoundtripProperties:
    @given(_unit_descriptors())
    @settings(max_examples=60, deadline=None)
    def test_unit_descriptor_xml_roundtrip(self, descriptor):
        loaded = UnitDescriptor.from_xml(descriptor.to_xml())
        assert loaded == descriptor

    @given(st.lists(st.tuples(_idents, _idents,
                              st.sampled_from(["auto", "int"])),
                    max_size=4),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_operation_statement_roundtrip(self, params, captures):
        descriptor = OperationDescriptor(
            operation_id="op", name="Op", kind="create",
            statements=[StatementSpec(sql="INSERT INTO t (a) VALUES (:a)",
                                      params=params,
                                      captures_new_oid=captures)],
        )
        loaded = OperationDescriptor.from_xml(descriptor.to_xml())
        assert loaded.statements[0].params == descriptor.statements[0].params
        assert loaded.statements[0].captures_new_oid == captures
