"""Tests for the ER model, its validation, XML persistence, and the
ER→relational mapping."""

import pytest

from repro.er import (
    Attribute,
    Cardinality,
    Entity,
    ERModel,
    Relationship,
    er_model_from_xml,
    er_model_to_xml,
    map_to_relational,
)
from repro.errors import ERModelError, ValidationError
from repro.rdb import Database


def acm_model() -> ERModel:
    """The Figure 1/2 data model: Volume -< Issue -< Paper."""
    model = ERModel(name="acm")
    model.entity("Volume", [("number", "INTEGER", True), ("year", "INTEGER"),
                            ("title", "VARCHAR(120)")])
    model.entity("Issue", [("number", "INTEGER"), ("month", "VARCHAR(20)")])
    model.entity("Paper", [("title", "VARCHAR(200)", True),
                           ("abstract", "TEXT"), ("pages", "INTEGER")])
    model.relate("VolumeToIssue", "Volume", "Issue", "1:N",
                 inverse_name="IssueToVolume")
    model.relate("IssueToPaper", "Issue", "Paper", "1:N",
                 inverse_name="PaperToIssue")
    return model


class TestModel:
    def test_entity_accessors(self):
        model = acm_model()
        volume = model.entity("Volume")
        assert volume.attribute("number").required
        assert volume.attribute_names == ["number", "year", "title"]
        assert volume.table_name == "volume"

    def test_unknown_entity(self):
        with pytest.raises(ERModelError, match="unknown entity"):
            acm_model().entity("Ghost")

    def test_unknown_attribute(self):
        with pytest.raises(ERModelError, match="no attribute"):
            acm_model().entity("Volume").attribute("ghost")

    def test_duplicate_entity_rejected(self):
        model = acm_model()
        with pytest.raises(ERModelError, match="duplicate entity"):
            model.add_entity(Entity("Volume"))

    def test_duplicate_relationship_rejected(self):
        model = acm_model()
        with pytest.raises(ERModelError, match="duplicate relationship"):
            model.relate("VolumeToIssue", "Volume", "Issue")

    def test_resolve_role_forward_and_inverse(self):
        model = acm_model()
        relationship, forward = model.resolve_role("VolumeToIssue")
        assert forward and relationship.target == "Issue"
        relationship, forward = model.resolve_role("IssueToVolume")
        assert not forward and relationship.name == "VolumeToIssue"

    def test_cardinality_parse(self):
        assert Cardinality.parse("n:m") == Cardinality.MANY_TO_MANY
        with pytest.raises(ERModelError):
            Cardinality.parse("3:4")

    def test_cardinality_inverted(self):
        assert Cardinality.ONE_TO_MANY.inverted() == Cardinality.MANY_TO_ONE
        assert Cardinality.MANY_TO_MANY.inverted() == Cardinality.MANY_TO_MANY

    def test_attribute_validates_type_eagerly(self):
        with pytest.raises(Exception):
            Attribute("bad", "GEOMETRY")

    def test_validation_unknown_endpoint(self):
        model = ERModel()
        model.entity("A", [])
        model.add_relationship(Relationship("AtoB", "A", "B"))
        with pytest.raises(ValidationError, match="unknown entity 'B'"):
            model.validate()

    def test_validation_duplicate_attribute(self):
        model = ERModel()
        model.add_entity(Entity("A", [Attribute("x"), Attribute("x")]))
        with pytest.raises(ValidationError, match="duplicate attribute"):
            model.validate()

    def test_validation_oid_collision(self):
        model = ERModel()
        model.add_entity(Entity("A", [Attribute("oid", "INTEGER")]))
        with pytest.raises(ValidationError, match="implicit oid"):
            model.validate()

    def test_validation_duplicate_role_names(self):
        model = ERModel()
        model.entity("A", [])
        model.entity("B", [])
        model.relate("link", "A", "B")
        model.add_relationship(Relationship("other", "B", "A", inverse_name="link"))
        with pytest.raises(ValidationError, match="duplicate relationship role"):
            model.validate()


class TestXmlPersistence:
    def test_roundtrip(self):
        model = acm_model()
        document = er_model_to_xml(model)
        loaded = er_model_from_xml(document)
        assert [e.name for e in loaded.entities] == ["Volume", "Issue", "Paper"]
        assert loaded.entity("Paper").attribute("title").required
        relationship, forward = loaded.resolve_role("IssueToVolume")
        assert not forward
        assert relationship.cardinality == Cardinality.ONE_TO_MANY

    def test_wrong_root_rejected(self):
        with pytest.raises(ERModelError, match="expected <ermodel>"):
            er_model_from_xml("<nope/>")

    def test_loaded_model_is_validated(self):
        document = (
            "<ermodel><relationship name='r' source='A' target='B'/></ermodel>"
        )
        with pytest.raises(ValidationError):
            er_model_from_xml(document)


class TestRelationalMapping:
    def test_entity_tables(self):
        mapping = map_to_relational(acm_model())
        names = [s.name for s in mapping.schemas]
        assert names == ["volume", "issue", "paper"]

    def test_oid_key_added(self):
        mapping = map_to_relational(acm_model())
        volume = mapping.schemas[0]
        assert volume.primary_key == ("oid",)
        assert volume.column("oid").auto_increment

    def test_attribute_columns_and_nullability(self):
        mapping = map_to_relational(acm_model())
        volume = mapping.schemas[0]
        assert not volume.column("number").nullable
        assert volume.column("year").nullable

    def test_one_to_many_fk_on_many_side(self):
        mapping = map_to_relational(acm_model())
        issue = next(s for s in mapping.schemas if s.name == "issue")
        assert issue.has_column("volume_to_issue_oid")
        fk = issue.foreign_keys[0]
        assert fk.target_table == "volume"
        assert fk.on_delete == "set_null"

    def test_fk_indexed(self):
        mapping = map_to_relational(acm_model())
        issue = next(s for s in mapping.schemas if s.name == "issue")
        assert any(
            ix.columns == ("volume_to_issue_oid",) for ix in issue.indexes
        )

    def test_many_to_one_fk_on_source(self):
        model = ERModel()
        model.entity("Paper", [])
        model.entity("Author", [])
        model.relate("PaperToMainAuthor", "Paper", "Author", "N:1")
        mapping = map_to_relational(model)
        paper = next(s for s in mapping.schemas if s.name == "paper")
        assert paper.has_column("paper_to_main_author_oid")

    def test_one_to_one_unique_fk(self):
        model = ERModel()
        model.entity("User", [])
        model.entity("Profile", [])
        model.relate("UserToProfile", "User", "Profile", "1:1")
        mapping = map_to_relational(model)
        profile = next(s for s in mapping.schemas if s.name == "profile")
        assert ("user_to_profile_oid",) in profile.unique_constraints

    def test_many_to_many_bridge(self):
        model = ERModel()
        model.entity("Paper", [])
        model.entity("Author", [])
        model.relate("Authorship", "Paper", "Author", "N:M",
                     inverse_name="AuthorOf")
        mapping = map_to_relational(model)
        bridge = next(s for s in mapping.schemas if s.name == "authorship")
        assert bridge.primary_key == ("paper_oid", "author_oid")
        assert all(fk.on_delete == "cascade" for fk in bridge.foreign_keys)

    def test_self_relationship_bridge_disambiguates(self):
        model = ERModel()
        model.entity("Paper", [])
        model.relate("Citation", "Paper", "Paper", "N:M")
        mapping = map_to_relational(model)
        bridge = next(s for s in mapping.schemas if s.name == "citation")
        assert bridge.primary_key == ("paper_oid", "paper_oid_2")

    def test_join_steps_forward_fk(self):
        mapping = map_to_relational(acm_model())
        steps = mapping.join_steps("VolumeToIssue")
        assert steps == [
            {"table": "issue", "left_on": "oid", "right_on": "volume_to_issue_oid"}
        ]

    def test_join_steps_inverse_fk(self):
        mapping = map_to_relational(acm_model())
        steps = mapping.join_steps("IssueToVolume")
        assert steps == [
            {"table": "volume", "left_on": "volume_to_issue_oid", "right_on": "oid"}
        ]

    def test_join_steps_bridge(self):
        model = ERModel()
        model.entity("Paper", [])
        model.entity("Author", [])
        model.relate("Authorship", "Paper", "Author", "N:M",
                     inverse_name="AuthorOf")
        mapping = map_to_relational(model)
        forward = mapping.join_steps("Authorship")
        assert forward[0]["table"] == "authorship"
        assert forward[1]["table"] == "author"
        inverse = mapping.join_steps("AuthorOf")
        assert inverse[1]["table"] == "paper"

    def test_connection_write_specs(self):
        mapping = map_to_relational(acm_model())
        spec = mapping.connection_write("VolumeToIssue")
        assert spec["kind"] == "fk"
        assert spec["table"] == "issue"
        assert spec["column"] == "volume_to_issue_oid"
        assert spec["owner_entity"] == "Issue"

    def test_schemas_install_into_database(self):
        mapping = map_to_relational(acm_model())
        db = Database()
        for schema in mapping.schemas:
            db.create_table(schema)
        volume = db.insert_row("volume", {"number": 28, "year": 2003,
                                          "title": "TODS 28"})
        issue = db.insert_row("issue", {"number": 1,
                                        "volume_to_issue_oid": volume["oid"]})
        db.insert_row("paper", {"title": "WebML",
                                "issue_to_paper_oid": issue["oid"]})
        rows = db.query(
            "SELECT p.title FROM volume v"
            " JOIN issue i ON i.volume_to_issue_oid = v.oid"
            " JOIN paper p ON p.issue_to_paper_oid = i.oid"
            " WHERE v.number = 28"
        )
        assert rows.as_tuples() == [("WebML",)]

    def test_entity_map_column_lookup(self):
        mapping = map_to_relational(acm_model())
        entity_map = mapping.entity_map("Volume")
        assert entity_map.column_for("oid") == "oid"
        assert entity_map.column_for("title") == "title"
        with pytest.raises(ERModelError):
            entity_map.column_for("ghost")

    def test_mapping_requires_valid_model(self):
        model = ERModel()
        model.add_relationship(Relationship("r", "A", "B"))
        with pytest.raises(ValidationError):
            map_to_relational(model)
