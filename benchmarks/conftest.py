"""Shared benchmark fixtures."""

from __future__ import annotations

import pytest

from repro.workloads.acm import build_acm_application


@pytest.fixture(scope="module")
def acm_serving():
    """A seeded ACM application with a mid-size dataset, reused across
    the serving benchmarks of one module."""
    app, oids = build_acm_application(volumes=4, issues_per_volume=3,
                                      papers_per_issue=4)
    return app, oids
