"""E22 — adaptive query execution under cardinality drift.

The cost model (E14) plans from ANALYZE-time statistics; E22 measures
what happens when the data walks away from those statistics.  A sales
table starts uniform — every region holds the same handful of rows, so
``region = :r`` is planned as a cheap index lookup — and then a burst
of skewed inserts makes one region hold most of the table.  The frozen
plan keeps index-walking most of the table a row at a time; the
adaptive loop (``repro.rdb.adaptive``) must notice the estimate/actual
gap from execution feedback, drop the cached plan, re-ANALYZE the
drifted table, and re-plan — landing on the columnar scan the new
shape actually wants.

Measured gates:

* **drift response** — the replan fires within the q-error window
  (a handful of executions), not eventually;
* **convergence** — the loop replans once and then goes quiet: the
  corrected estimate matches reality, so hysteresis holds (bounded
  replan count over a long tail of executions);
* **speedup** — the post-replan plan beats the frozen pre-drift plan
  on the skewed workload by ``MIN_SPEEDUP`` at full scale;
* **identity** — adaptive, frozen, and seed plans return byte-identical
  results on hot and cold parameters alike: adaptivity changes plans,
  never answers;
* **scanner** — the plan-space scanner (``repro.bench.plan_scanner``)
  reproduces at least one cost-model misprediction on this workload.

Run fast (CI smoke): ``REPRO_E22_FAST=1 pytest benchmarks/bench_e22_adaptive.py``.
"""

from __future__ import annotations

import os
import time

from repro.bench import ExperimentReport, save_report
from repro.bench.plan_scanner import scan_plan_space
from repro.rdb import Database

FAST = bool(os.environ.get("REPRO_E22_FAST"))

#: uniform base load: REGIONS regions x (BASE_ROWS / REGIONS) rows each
BASE_ROWS = 800 if FAST else 4_000
REGIONS = 60 if FAST else 400
#: the skew burst: one previously-unseen region swallows the table
HOT_ROWS = 2_400 if FAST else 18_000
HOT = "r-hot"
#: executions after the burst (drift must fire inside this window)
DRIFT_EXECUTIONS = 12
#: long tail to prove hysteresis holds after convergence
TAIL_EXECUTIONS = 30
TIMING_ROUNDS = 5 if FAST else 15
#: frozen-plan / adaptive-plan wall ratio at full scale
MIN_SPEEDUP = 2.0
SCANNER_ROUNDS = 2 if FAST else 3

QUERY = (
    "SELECT region, COUNT(*) AS n, SUM(amount) AS total"
    " FROM sale WHERE region = :r GROUP BY region"
)

_RESULTS: dict[str, dict] = {}


def _sales() -> Database:
    """A uniform sales table, analyzed, with an index the optimizer
    initially loves for ``region = :r``."""
    db = Database("e22")
    db.execute(
        "CREATE TABLE sale (oid INTEGER NOT NULL AUTOINCREMENT,"
        " region VARCHAR(20) NOT NULL, day INTEGER NOT NULL,"
        " amount FLOAT NOT NULL, PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_sale_region ON sale (region)")
    for i in range(BASE_ROWS):
        db.insert_row("sale", {
            "region": f"r-{i % REGIONS:03d}",
            "day": i % 365,
            "amount": float(i % 90) + 0.5,
        })
    db.analyze()
    return db


def _skew(db: Database) -> None:
    """The burst: HOT_ROWS rows land in one region the statistics have
    never seen."""
    for i in range(HOT_ROWS):
        db.insert_row("sale", {
            "region": HOT,
            "day": i % 365,
            "amount": float(i % 90) + 0.5,
        })


def _time_plan(plan, params, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        plan.execute(params)
        best = min(best, time.perf_counter() - start)
    return best


def test_e22_drift_triggers_one_replan_then_holds():
    db = _sales()
    # prime the cached plan on the uniform shape: index lookup
    for i in range(3):
        db.query(QUERY, {"r": f"r-{i:03d}"})
    frozen = db.prepare(QUERY)
    seed = db.prepare(QUERY, optimize=False)
    assert "IndexLookup" in frozen.explain()

    _skew(db)

    # the drift window: the adaptive loop sees est vs actual diverge
    for _ in range(DRIFT_EXECUTIONS):
        db.query(QUERY, {"r": HOT})
    counters = db.adaptive.counters
    replans_after_drift = counters["replans"]
    assert replans_after_drift >= 1, \
        f"no replan within {DRIFT_EXECUTIONS} executions"

    # convergence tail: corrected estimates mean no further drift
    for _ in range(TAIL_EXECUTIONS):
        db.query(QUERY, {"r": HOT})
    replans_total = db.adaptive.counters["replans"]
    converged = replans_total == replans_after_drift
    assert converged, \
        f"replans kept firing: {replans_after_drift} -> {replans_total}"
    assert 1 <= replans_total <= 3, replans_total

    adaptive_plan = db.prepare(QUERY)
    assert adaptive_plan is not frozen
    assert "SeqScan" in adaptive_plan.explain(), adaptive_plan.explain()
    assert db.adaptive.counters["reanalyzes"] >= 1

    # speedup: the frozen index walk vs the replanned scan, hot param
    t_frozen = _time_plan(frozen, {"r": HOT}, TIMING_ROUNDS)
    t_adaptive = _time_plan(adaptive_plan, {"r": HOT}, TIMING_ROUNDS)
    speedup = t_frozen / t_adaptive
    if FAST:
        assert speedup >= 1.2, f"{speedup:.2f}x < 1.2x"
    else:
        assert speedup >= MIN_SPEEDUP, \
            f"{speedup:.2f}x < {MIN_SPEEDUP}x"

    # identity: hot, warm-cold, and absent params across all three plans
    probe_params = [{"r": HOT}, {"r": "r-001"}, {"r": "r-absent"}]
    mismatches = 0
    for params in probe_params:
        want = adaptive_plan.execute(params)
        for other in (frozen, seed):
            got = other.execute(params)
            if (got.columns != want.columns
                    or got.as_tuples() != want.as_tuples()):
                mismatches += 1
    assert mismatches == 0

    _RESULTS["adaptive"] = {
        "replans": replans_total,
        "converged": converged,
        "drift_detections": counters["drift_detections"],
        "reanalyzes": counters["reanalyzes"],
        "growth_reanalyzes": counters["growth_reanalyzes"],
        "frozen_seconds": t_frozen,
        "adaptive_seconds": t_adaptive,
        "speedup": speedup,
    }
    _RESULTS["identity"] = {
        "probes": len(probe_params) * 2,
        "mismatches": mismatches,
    }
    _RESULTS["db"] = {"handle": db}


def test_e22_scanner_reproduces_a_misprediction():
    db_entry = _RESULTS.get("db")
    db = db_entry["handle"] if db_entry else _sales()
    workload = [
        {"name": "hot-region", "sql": QUERY, "params": {"r": HOT}},
        {"name": "day-range",
         "sql": ("SELECT day, COUNT(*) AS n FROM sale"
                 " WHERE day < :d GROUP BY day"),
         "params": {"d": 120}},
    ]
    report = scan_plan_space(db, workload, rounds=SCANNER_ROUNDS)
    assert report["mismatches"] == 0
    assert report["finding_count"] >= 1, report
    _RESULTS["scanner"] = {
        "findings": report["finding_count"],
        "mismatches": report["mismatches"],
        "kinds": sorted({f["kind"] for f in report["findings"]}),
    }


def test_e22_report():
    adaptive = _RESULTS.get("adaptive")
    if not adaptive:
        import pytest

        pytest.skip("component measurements did not run")
    identity = _RESULTS["identity"]
    scanner = _RESULTS.get("scanner", {"findings": 0, "mismatches": 0,
                                       "kinds": []})

    report = ExperimentReport(
        "E22", "adaptive query execution under cardinality drift",
        "§6 (tuning loop, made runtime-automatic)",
    )
    report.add(
        "replan latency", "within the q-error window",
        f"{adaptive['replans']} replan(s), "
        f"{adaptive['drift_detections']} drift detection(s)",
        note=f"{DRIFT_EXECUTIONS} post-skew executions; "
             f"{adaptive['reanalyzes']} re-ANALYZE(s)",
    )
    report.add(
        "convergence", "replans stop after correction",
        "converged" if adaptive["converged"] else "DID NOT CONVERGE",
        note=f"{TAIL_EXECUTIONS} further executions",
    )
    report.add(
        "skewed-workload latency",
        f"{adaptive['frozen_seconds'] * 1e3:.2f} ms frozen plan",
        f"{adaptive['adaptive_seconds'] * 1e3:.2f} ms adaptive plan",
        note=f"{adaptive['speedup']:.1f}x"
             f" ({BASE_ROWS + HOT_ROWS} rows, {HOT_ROWS} hot)",
    )
    report.add(
        "result identity", "byte-identical across plans",
        f"{identity['mismatches']} mismatches",
        note="adaptive vs frozen vs seed, hot/cold/absent params",
    )
    report.add(
        "plan-space scanner", ">= 1 reproducible misprediction",
        f"{scanner['findings']} finding(s)",
        note=", ".join(scanner["kinds"]) or "-",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "base_rows": BASE_ROWS,
        "hot_rows": HOT_ROWS,
        "min_speedup": MIN_SPEEDUP,
        "adaptive": {
            key: value for key, value in adaptive.items()
        },
        "identity": identity,
        "scanner": scanner,
    })
