"""E1 — §8: the Acer-Euro application at its published scale.

"The integrated application features 22 site views, 556 page templates,
and 3068 units, for a total of over 3000 SQL queries.  All the page
templates of the 22 site views have been automatically generated."

The benchmark regenerates the full project from the model and reports
the structural inventory next to the paper's numbers, plus the wall
time code generation takes at that scale.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.workloads import acer_statistics, build_acer_model


@pytest.fixture(scope="module")
def acer_model():
    model = build_acer_model()
    model.validate()
    return model


def test_e1_full_scale_generation(benchmark, acer_model):
    project = benchmark.pedantic(
        lambda: generate_project(acer_model, validate=False),
        rounds=1, iterations=1,
    )
    stats = acer_statistics(acer_model)
    counts = project.counts()

    report = ExperimentReport(
        "E1", "Acer-Euro structural scale, fully generated", "§8"
    )
    report.add("site views", 22, stats["site_views"])
    report.add("page templates", 556, counts["page_templates"])
    report.add("units", 3068, stats["units"])
    report.add("SQL statements", "> 3000", counts["sql_statements"])
    report.add("templates generated automatically", "100%", "100%",
               note="every page has a generated skeleton")
    report.add("generation wall time", "n/a",
               f"{project.generation_seconds:.2f}s",
               note="single laptop-class run")
    save_report(report, json_payload=report.rows_payload())

    assert stats["site_views"] == 22
    assert counts["page_templates"] == 556
    assert stats["units"] == 3068
    assert counts["sql_statements"] > 3000
    assert len(project.skeletons) == counts["page_templates"]


def test_e1_every_descriptor_deploys(benchmark, acer_model):
    from repro.descriptors import DescriptorRegistry

    project = generate_project(acer_model, validate=False)

    def deploy():
        registry = DescriptorRegistry()
        project.deploy(registry)
        return registry

    registry = benchmark.pedantic(deploy, rounds=1, iterations=1)
    counts = registry.counts()
    assert counts["unit_descriptors"] == 3068
    assert counts["page_descriptors"] == 556
