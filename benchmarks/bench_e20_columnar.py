"""E20 — columnar batch execution against the compiled row engine.

E17 established the compiled-row baseline: closure-compiled
expressions and fused scan→filter→project pipelines, ~2-4x over the
interpreted evaluator.  This experiment measures the next layout step
(§1, "the generated code should perform and scale well"): the same
optimized plans executed by the columnar batch pipeline
(``repro.rdb.columnar``) — column-major arrays with dictionary-encoded
strings and null bitmaps, vectorized predicate kernels over selection
vectors, most-selective-first conjunction ordering, and late
materialization of only the surviving positions.

Two probes, the shapes where batch execution pays:

* **full-scan filter** — a conjunction over a dict-encoded string
  equality, a float range, and a NULL test, with an arithmetic
  projection and ORDER BY over the computed alias;
* **grouped aggregation** — GROUP BY over the dict-encoded column with
  COUNT/SUM/AVG, partitioned on integer codes.

Every probe runs in *four* modes — columnar (the cost model's own
choice at this scale), compiled-row (``columnar=False``, exactly the
E17 fast path), interpreted (``compiled=False``), and the seed
interpreter (``optimize=False``) — and all four answers must be
byte-identical.  At benchmark scale the columnar plan must beat the
compiled-row plan by at least 3x on both probes.

Run fast (CI smoke): ``REPRO_E20_FAST=1 pytest benchmarks/bench_e20_columnar.py``.
"""

from __future__ import annotations

import os
import time

from repro.bench import ExperimentReport, save_report
from repro.rdb import Database

FAST = bool(os.environ.get("REPRO_E20_FAST"))

BOOKS = 2_000 if FAST else 12_000
#: few enough distinct values that ``kind`` dictionary-encodes
KINDS = 12
TIMING_ROUNDS = 5 if FAST else 15
#: at full scale the columnar plan must clear this factor over the
#: compiled-row plan; the fast smoke only checks direction
MIN_SPEEDUP = 3.0

_RESULTS: dict[str, dict] = {}


def _catalogue() -> Database:
    """The E17 bookstore shape plus a low-cardinality string column
    (``kind``) so the dictionary-encoding and code-equality kernels are
    actually on the measured path."""
    db = Database()
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " title VARCHAR(160) NOT NULL, kind VARCHAR(20) NOT NULL,"
        " price FLOAT, year INTEGER, PRIMARY KEY (oid))"
    )
    for i in range(BOOKS):
        db.insert_row("book", {
            "title": f"b{i}",
            "kind": f"kind-{i % KINDS:02d}",
            # moduli coprime to KINDS, so every kind sees NULLs in
            # both columns and the filter probe keeps real survivors
            "price": None if i % 17 == 11 else 10.0 + (i % 890) / 10.0,
            "year": None if i % 5 == 0 else 1990 + i % 30,
        })
    db.analyze()
    db.stats.reset()
    return db


#: (label, sql, params) — one probe per batch-friendly shape
PROBE_QUERIES = [
    ("full-scan filter",
     "SELECT title, price * :rate + price AS px FROM book"
     " WHERE kind = :kind AND price > :lo AND price < :hi"
     " AND year IS NOT NULL ORDER BY px DESC",
     {"kind": "kind-03", "rate": 1.1, "lo": 20.0, "hi": 80.0}),
    ("grouped aggregation",
     "SELECT kind, COUNT(*) AS n, SUM(price) AS total,"
     " AVG(price) AS ap FROM book WHERE year IS NOT NULL"
     " GROUP BY kind ORDER BY total DESC, kind",
     {}),
]


def _time_plan(plan, params: dict, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        plan.execute(params)
        best = min(best, time.perf_counter() - start)
    return best


def test_e20_columnar_matches_and_beats_compiled_rows():
    db = _catalogue()
    rows = []
    mismatches = 0
    for label, sql, params in PROBE_QUERIES:
        # the default plan IS the columnar plan here: the cost model
        # picks the batch pipeline for full scans at this scale
        columnar = db.prepare(sql)
        compiled = db.prepare(sql, columnar=False)
        interpreted = db.prepare(sql, compiled=False)
        seed = db.prepare(sql, optimize=False)
        assert columnar.exec_mode == "columnar", label
        assert "exec=columnar" in columnar.explain()
        assert compiled.exec_mode == "compiled", label

        # four-way byte identity: same columns, same rows, same order
        want = columnar.execute(params)
        for other_plan in (compiled, interpreted, seed):
            got = other_plan.execute(params)
            if (got.columns != want.columns
                    or got.as_tuples() != want.as_tuples()):
                mismatches += 1
        assert mismatches == 0, label

        t_columnar = _time_plan(columnar, params, TIMING_ROUNDS)
        t_compiled = _time_plan(compiled, params, TIMING_ROUNDS)
        t_interpreted = _time_plan(interpreted, params, TIMING_ROUNDS)
        speedup = t_compiled / t_columnar
        if FAST:
            assert t_columnar < t_compiled, \
                f"{label}: {t_columnar:.6f}s !< {t_compiled:.6f}s"
        else:
            assert speedup >= MIN_SPEEDUP, \
                f"{label}: {speedup:.2f}x < {MIN_SPEEDUP}x"
        rows.append((label, t_columnar, t_compiled, t_interpreted,
                     speedup, len(want.as_tuples())))
    _RESULTS["probes"] = {"rows": rows, "mismatches": mismatches}


def test_e20_layout_choice_is_costed_not_hardwired():
    db = _catalogue()
    label, sql, _ = PROBE_QUERIES[0]
    # the same SQL over a near-empty table stays on the row path —
    # the batch setup cost would dominate a handful of rows
    small = Database()
    small.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " title VARCHAR(160) NOT NULL, kind VARCHAR(20) NOT NULL,"
        " price FLOAT, year INTEGER, PRIMARY KEY (oid))"
    )
    for i in range(20):
        small.insert_row("book", {
            "title": f"b{i}", "kind": f"kind-{i % KINDS:02d}",
            "price": float(i), "year": 2000 + i,
        })
    assert db.prepare(sql).exec_mode == "columnar", label
    assert small.prepare(sql).exec_mode == "compiled", label


def test_e20_counters_split_by_exec_mode():
    db = _catalogue()
    for _, sql, params in PROBE_QUERIES:
        db.query(sql, params)
    stats = db.observability_stats()
    assert stats["selects_columnar"] == len(PROBE_QUERIES)
    assert stats["plans_columnar"] == len(PROBE_QUERIES)
    section = stats["columnar"]
    assert section["tables_built"] == 1
    assert section["scans"] >= len(PROBE_QUERIES)
    assert section["dict_columns"] >= 1
    _RESULTS["counters"] = {
        "batches_scanned": section["batches_scanned"],
        "dict_hit_ratio": section["dict_hit_ratio"],
    }


def test_e20_report():
    probes = _RESULTS.get("probes")
    if not probes:
        import pytest

        pytest.skip("component measurements did not run")
    counters = _RESULTS.get("counters", {})

    report = ExperimentReport(
        "E20", "columnar batch execution vs the compiled row engine",
        "§1 (performance of generated code)",
    )
    for label, t_col, t_comp, t_interp, speedup, n_rows in probes["rows"]:
        report.add(
            label, f"{t_comp * 1e3:.2f} ms compiled rows",
            f"{t_col * 1e3:.2f} ms columnar",
            note=f"{speedup:.1f}x faster; interpreted"
                 f" {t_interp * 1e3:.2f} ms"
                 f" ({BOOKS} books, {n_rows} result rows)",
        )
    report.add(
        "result identity across execution modes",
        "byte-identical in all four",
        f"{probes['mismatches']} mismatches",
        note="columnar vs compiled-row vs interpreted vs seed",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "books": BOOKS,
        "min_speedup": MIN_SPEEDUP,
        "byte_identity": {
            "queries": len(PROBE_QUERIES),
            "mismatches": probes["mismatches"],
        },
        "probes": {
            label: {
                "columnar_seconds": t_col,
                "compiled_seconds": t_comp,
                "interpreted_seconds": t_interp,
                "speedup_vs_compiled": speedup,
                "speedup_vs_interpreted": t_interp / t_col,
                "rows": n_rows,
            }
            for label, t_col, t_comp, t_interp, speedup, n_rows
            in probes["rows"]
        },
        "counters": counters,
    })
