"""E11 (ablation) — §1: "the generated code should perform and scale
well" — the data tier's prepared-plan reuse.

The generic unit services execute the *same* descriptor query on every
request with different parameters, which is exactly what plan caching
exists for.  This ablation measures page serving with the engine's plan
cache enabled (the default: one parse+plan per distinct SQL text) versus
disabled (re-parse and re-plan every execution) — quantifying a design
choice DESIGN.md calls out for the substrate.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.services import GenericPageService
from repro.workloads.acm import build_acm_application

_RESULTS: dict[str, float] = {}


class _NoPlanCacheDatabase:
    """A proxy that defeats the plan cache by re-parsing per query."""

    def __init__(self, database):
        self._database = database

    def __getattr__(self, name):
        return getattr(self._database, name)

    def query(self, sql, params=None):
        from repro.rdb.planner import SelectPlan
        from repro.rdb.sqlparser import parse_select

        plan = SelectPlan(parse_select(sql), self._database.tables)
        result = plan.execute(params)
        self._database.stats.selects += 1
        return result


@pytest.fixture(scope="module")
def serving():
    app, oids = build_acm_application(volumes=4, issues_per_volume=3,
                                      papers_per_issue=4)
    view = app.model.find_site_view("public")
    page = view.find_page("Volume Page")
    volume_data = page.unit("Volume data")
    descriptor = app.registry.page(page.id)
    params = {f"{volume_data.id}.oid": str(oids["volumes"][0])}
    return app, descriptor, params


def test_e11_with_plan_cache(benchmark, serving):
    app, descriptor, params = serving
    service = GenericPageService(app.ctx)
    service.compute_page(descriptor, params)  # warm the cache

    result = benchmark(lambda: service.compute_page(descriptor, params))
    assert result.bean_named("Volume data").current is not None
    _RESULTS["cached"] = benchmark.stats["median"]


def test_e11_without_plan_cache(benchmark, serving):
    app, descriptor, params = serving
    service = GenericPageService(app.ctx)
    real_database = app.ctx.database
    app.ctx.database = _NoPlanCacheDatabase(real_database)
    try:
        result = benchmark(lambda: service.compute_page(descriptor, params))
        assert result.bean_named("Volume data").current is not None
        _RESULTS["uncached"] = benchmark.stats["median"]
    finally:
        app.ctx.database = real_database


def test_e11_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cached = _RESULTS.get("cached")
    uncached = _RESULTS.get("uncached")
    if not (cached and uncached):
        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E11", "prepared-plan reuse in the data tier", "§1 (ablation)"
    )
    report.add("page computation, plans cached", "baseline",
               f"{cached * 1e6:.0f} us")
    report.add("page computation, re-planned per query",
               "slower (parse+plan per request)",
               f"{uncached * 1e6:.0f} us",
               note=f"{uncached / cached:.2f}x cached")
    save_report(report, json_payload=report.rows_payload())

    assert uncached > cached
