"""E18 — durability: WAL + snapshot persistence and crash recovery.

The storage engine behind the rdb's logical layer can run *durable*
(``Database.open(path)``): every committed statement or transaction
appends one CRC-framed, typed commit record to a binary write-ahead
log and fsyncs before acknowledging; checkpoints write an atomic
point-in-time snapshot and truncate the log.  Recovery replays the
committed WAL suffix over the latest snapshot and discards any torn
tail.  This experiment measures the two promises that matter:

* **crash recovery oracle** — a recorded DML/DDL workload is cut at
  hundreds of byte offsets (frame boundaries *and* mid-record); each
  cut must recover to exactly the state after the longest committed
  prefix — zero lost committed transactions, zero resurrected
  uncommitted ones;
* **cost of durability** — write overhead of fsync-per-commit and of
  the deferred-fsync group-commit window against the in-memory
  engine, and the read path's p50 (reads never touch the WAL, so
  group commit must keep read-heavy p50 regression under 5%).

Results also land machine-readable in
``benchmarks/reports/BENCH_E18.json`` for the CI durability smoke.

Run fast (CI smoke): ``REPRO_E18_FAST=1 pytest benchmarks/bench_e18_durability.py``.
"""

from __future__ import annotations

import bisect
import os
import random
import shutil
import statistics
import tempfile
import time

from repro.bench import ExperimentReport, save_report
from repro.rdb import Database
from repro.rdb.wal import MAGIC, committed_prefix_boundaries

FAST = bool(os.environ.get("REPRO_E18_FAST"))

WORKLOAD_STEPS = 60 if FAST else 160
#: random mid-stream cuts on top of every frame boundary; the
#: acceptance bar is 200+ distinct truncation points at full scale
RANDOM_CUTS = 40 if FAST else 220
WRITE_ROWS = 150 if FAST else 1_200
READ_ROWS = 400 if FAST else 4_000
READ_ROUNDS = 60 if FAST else 300
#: reads never enter the engine's write path, so even the durable
#: engine's read p50 must stay within noise of the in-memory one
MAX_READ_P50_REGRESSION = 1.25 if FAST else 1.05

_RESULTS: dict[str, dict] = {}


def _fingerprint(db: Database) -> dict:
    """Canonical committed-visible state: rows and named indexes per
    table.  Auto-increment counters are deliberately excluded: a
    rolled-back transaction inflates the live counters but leaves no
    durable trace, so recovery may legitimately hand those never-
    committed values out again (statistics are likewise recomputed on
    recovery, not compared)."""
    state = {}
    for name, store in sorted(db.tables.items()):
        state[name] = (
            {row_id: dict(row) for row_id, row in store.rows.items()},
            sorted(n for n, _ in store.iter_indexes()
                   if not n.startswith("#")),
        )
    return state


def _recorded_workload(db: Database) -> list[dict]:
    """Drive a mixed DML/DDL workload; returns the fingerprint after
    every commit record, in commit order (via the commit stream)."""
    states: list[dict] = []
    db.commit_stream.subscribe(lambda event: states.append(_fingerprint(db)))
    rng = random.Random(7)
    db.execute(
        "CREATE TABLE item (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(80) NOT NULL, qty INTEGER, PRIMARY KEY (oid))"
    )
    live: list[int] = []
    for i in range(WORKLOAD_STEPS):
        toss = rng.random()
        if toss < 0.45 or not live:
            row = db.insert_row("item", {"name": f"item-{i}", "qty": i % 17})
            live.append(row["oid"])
        elif toss < 0.65:
            db.execute("UPDATE item SET qty = :q WHERE oid = :oid",
                       {"q": i, "oid": rng.choice(live)})
        elif toss < 0.78:
            oid = live.pop(rng.randrange(len(live)))
            db.execute("DELETE FROM item WHERE oid = :oid", {"oid": oid})
        elif toss < 0.90:
            # explicit multi-statement transaction: one commit record
            db.begin()
            first = db.insert_row("item", {"name": f"txn-{i}", "qty": i})
            db.execute("UPDATE item SET qty = qty + 1 WHERE oid = :oid",
                       {"oid": first["oid"]})
            if rng.random() < 0.3:
                db.rollback()  # must leave no trace in the log's effects
            else:
                db.commit()
                live.append(first["oid"])
        else:
            db.analyze("item")
    db.execute("CREATE INDEX ix_item_qty ON item (qty)")
    return states


def test_e18_crash_recovery_oracle(tmp_path=None):
    base = tempfile.mkdtemp(prefix="e18-oracle-")
    try:
        data_dir = os.path.join(base, "data")
        with Database.open(data_dir) as db:
            states = _recorded_workload(db)
            final_state = _fingerprint(db)
        wal_path = os.path.join(data_dir, "wal.log")
        with open(wal_path, "rb") as handle:
            wal_bytes = handle.read()
        boundaries = committed_prefix_boundaries(wal_path)
        assert len(boundaries) == len(states), \
            "one recorded fingerprint per committed WAL record"
        assert states[-1] == final_state

        # every frame boundary, plus random cuts anywhere in the file
        # (header, mid-frame, exactly-at-boundary duplicates included)
        rng = random.Random(13)
        cuts = set(boundaries)
        cuts.update(rng.randrange(0, len(wal_bytes) + 1)
                    for _ in range(RANDOM_CUTS))
        scratch = os.path.join(base, "scratch")
        exercised_torn = 0
        for cut in sorted(cuts):
            shutil.rmtree(scratch, ignore_errors=True)
            os.makedirs(scratch)
            with open(os.path.join(scratch, "wal.log"), "wb") as handle:
                handle.write(wal_bytes[:cut])
            committed = bisect.bisect_right(boundaries, cut)
            if cut not in boundaries and cut > len(MAGIC):
                exercised_torn += 1
            with Database.open(scratch) as recovered:
                expected = states[committed - 1] if committed else {}
                assert _fingerprint(recovered) == expected, \
                    f"cut at byte {cut}: {committed} committed records"
                stats = recovered.storage_stats()
                assert stats["recovery"]["wal_records_replayed"] == committed
                # the recovered engine accepts new commits (torn tail
                # was truncated, the log is appendable again) and never
                # hands out an oid that collides with a committed row
                if committed:
                    fresh = recovered.insert_row(
                        "item", {"name": "post-recovery", "qty": 0}
                    )
                    taken = {row["oid"]
                             for row in expected["item"][0].values()}
                    assert fresh["oid"] not in taken
            # reopen idempotence: recovery is a fixed point
            with Database.open(scratch) as again:
                replayed = again.storage_stats()["recovery"]
                assert replayed["wal_records_replayed"] == \
                    committed + (1 if committed else 0)
        _RESULTS["oracle"] = {
            "truncation_points": len(cuts),
            "frame_boundaries": len(boundaries),
            "torn_tail_cuts": exercised_torn,
            "committed_records": len(states),
            "lost_committed_transactions": 0,
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def test_e18_recovery_matches_memory_replica():
    """Second oracle: full recovery equals an in-memory engine fed the
    identical workload — durability adds persistence, not semantics."""
    base = tempfile.mkdtemp(prefix="e18-replica-")
    try:
        with Database.open(os.path.join(base, "data")) as durable:
            _recorded_workload(durable)
            durable_state = _fingerprint(durable)
            durable_counters = {
                name: (store.auto_counter, store.next_row_id)
                for name, store in durable.tables.items()
            }
        with Database.open(os.path.join(base, "data")) as recovered:
            recovered_state = _fingerprint(recovered)
        memory = Database()
        _recorded_workload(memory)
        assert recovered_state == durable_state
        assert recovered_state == _fingerprint(memory)
        # the two *live* engines agree on counters too — divergence is
        # confined to what rollbacks allocated and recovery forgets
        assert durable_counters == {
            name: (store.auto_counter, store.next_row_id)
            for name, store in memory.tables.items()
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def test_e18_checkpoint_bounds_replay():
    """A checkpoint truncates the log: reopening replays only the
    suffix, however long the history before it was."""
    base = tempfile.mkdtemp(prefix="e18-ckpt-")
    try:
        data_dir = os.path.join(base, "data")
        with Database.open(data_dir) as db:
            _recorded_workload(db)
            snapshot_bytes = db.checkpoint()
            assert snapshot_bytes > 0
            db.insert_row("item", {"name": "after-checkpoint", "qty": 1})
            state = _fingerprint(db)
        with Database.open(data_dir) as recovered:
            stats = recovered.storage_stats()["recovery"]
            assert stats["snapshot_loaded"] is True
            assert stats["wal_records_replayed"] == 1
            assert _fingerprint(recovered) == state
        _RESULTS["checkpoint"] = {
            "snapshot_bytes": snapshot_bytes,
            "records_replayed_after_checkpoint": 1,
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _insert_seconds(db: Database, rows: int) -> float:
    start = time.perf_counter()
    for i in range(rows):
        db.insert_row("item", {"name": f"w{i}", "qty": i % 11})
    return time.perf_counter() - start


_ITEM_DDL = (
    "CREATE TABLE item (oid INTEGER NOT NULL AUTOINCREMENT,"
    " name VARCHAR(80) NOT NULL, qty INTEGER, PRIMARY KEY (oid))"
)


def test_e18_write_overhead_and_group_commit():
    base = tempfile.mkdtemp(prefix="e18-write-")
    try:
        memory = Database()
        memory.execute(_ITEM_DDL)
        t_memory = _insert_seconds(memory, WRITE_ROWS)

        with Database.open(os.path.join(base, "sync")) as sync_db:
            sync_db.execute(_ITEM_DDL)
            t_sync = _insert_seconds(sync_db, WRITE_ROWS)
            sync_stats = sync_db.storage_stats()

        with Database.open(os.path.join(base, "group"),
                           group_commit_window=0.01) as group_db:
            group_db.execute(_ITEM_DDL)
            t_group = _insert_seconds(group_db, WRITE_ROWS)
            group_stats = group_db.storage_stats()

        # fsync-per-commit: one durability barrier per acknowledged
        # commit; the group window amortizes them across commits
        assert sync_stats["wal_fsyncs"] >= WRITE_ROWS
        assert group_stats["wal_fsyncs"] < sync_stats["wal_fsyncs"]
        assert group_stats["wal_records"] == sync_stats["wal_records"]
        _RESULTS["writes"] = {
            "rows": WRITE_ROWS,
            "memory_seconds": t_memory,
            "durable_fsync_seconds": t_sync,
            "durable_group_commit_seconds": t_group,
            "fsync_per_commit_fsyncs": sync_stats["wal_fsyncs"],
            "group_commit_fsyncs": group_stats["wal_fsyncs"],
            "wal_bytes": sync_stats["wal_bytes"],
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _read_p50(db: Database) -> float:
    plan = db.prepare(
        "SELECT name, qty FROM item WHERE qty > :lo ORDER BY qty"
    )
    times = []
    for _ in range(READ_ROUNDS):
        start = time.perf_counter()
        plan.execute({"lo": 3})
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_e18_read_p50_unaffected_by_durability():
    base = tempfile.mkdtemp(prefix="e18-read-")
    try:
        memory = Database()
        with Database.open(os.path.join(base, "data"),
                           group_commit_window=0.01) as durable:
            for db in (memory, durable):
                db.execute(_ITEM_DDL)
                for i in range(READ_ROWS):
                    db.insert_row("item", {"name": f"r{i}", "qty": i % 23})
                db.analyze("item")
            # interleave to share cache/thermal conditions; keep medians
            p50_memory = min(_read_p50(memory), _read_p50(memory))
            p50_durable = min(_read_p50(durable), _read_p50(durable))
        regression = p50_durable / p50_memory
        assert regression <= MAX_READ_P50_REGRESSION, \
            f"read p50 regressed {regression:.3f}x under durability"
        _RESULTS["reads"] = {
            "rows": READ_ROWS,
            "p50_memory_seconds": p50_memory,
            "p50_durable_seconds": p50_durable,
            "p50_regression": regression,
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def test_e18_report():
    oracle = _RESULTS.get("oracle")
    writes = _RESULTS.get("writes")
    reads = _RESULTS.get("reads")
    if not (oracle and writes and reads):
        import pytest

        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E18", "WAL + snapshot durability: crash recovery and the"
        " cost of fsync", "§1 (reliability of the generated runtime)",
    )
    report.add(
        "crash recovery",
        "no committed transaction lost",
        f"{oracle['truncation_points']} truncation points, 0 lost",
        note=f"{oracle['frame_boundaries']} frame boundaries,"
             f" {oracle['torn_tail_cuts']} torn-tail cuts",
    )
    report.add(
        "write overhead (fsync per commit)",
        "bounded by one fsync per commit",
        f"{writes['durable_fsync_seconds'] * 1e3:.1f} ms vs"
        f" {writes['memory_seconds'] * 1e3:.1f} ms in-memory",
        note=f"{writes['rows']} single-row commits,"
             f" {writes['fsync_per_commit_fsyncs']} fsyncs",
    )
    report.add(
        "group commit",
        "fewer barriers, same log",
        f"{writes['group_commit_fsyncs']} fsyncs for {writes['rows']}"
        f" commits",
        note=f"{writes['durable_group_commit_seconds'] * 1e3:.1f} ms"
             " with a 10 ms deferred-fsync window",
    )
    report.add(
        "read-heavy p50",
        "< 5% regression",
        f"{reads['p50_regression']:.3f}x",
        note="reads never enter the WAL path",
    )
    checkpoint = _RESULTS.get("checkpoint", {})
    if checkpoint:
        report.add(
            "checkpoint",
            "replay bounded by snapshot",
            f"{checkpoint['snapshot_bytes']} snapshot bytes,"
            f" {checkpoint['records_replayed_after_checkpoint']}"
            " record replayed",
        )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "oracle": oracle,
        "writes": writes,
        "reads": reads,
        "checkpoint": checkpoint,
    })
