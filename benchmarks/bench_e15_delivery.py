"""E15 — the full-page delivery pipeline under mixed traffic.

§6's endpoint: with a conceptual model driving invalidation, *whole
rendered pages* can be cached and still never serve stale content.
The same zipfian traffic is replayed against three configurations of
the ACM application — all with the two-level (bean + fragment) cache
of E5 warm underneath:

- **off** — no page cache; every request runs the action + template
  path (the pre-PR pipeline, the baseline);
- **flush-all** — page cache on, but every write flushes every level
  (a cache with no model to consult);
- **scoped** — model-driven invalidation: a write drops exactly the
  pages/fragments/beans whose §6 dependency sets intersect the
  operation's write sets.

Every browser is *conditional* (real user agents revalidate with
``If-None-Match`` and negotiate gzip), so the run also measures the
delivery tier: bytes on the wire and the 304 ratio.  The mixed phase
interleaves admin ``CreatePaper`` writes, each followed by a public
read that must observe the new paper — a staleness violation anywhere
fails the experiment.

Run fast (CI smoke): ``REPRO_E15_FAST=1 pytest benchmarks/bench_e15_delivery.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.app import Browser, WebApplication
from repro.bench import ExperimentReport, save_report
from repro.caching import FragmentCache, PageCache, UnitBeanCache
from repro.codegen import generate_project
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data
from repro.workloads.traffic import TrafficGenerator, WriteAction

FAST = bool(os.environ.get("REPRO_E15_FAST"))
READ_REQUESTS = 150 if FAST else 600
MIXED_REQUESTS = 120 if FAST else 480
#: one admin write per this many public reads in the mixed phase
WRITE_EVERY = 12
#: big enough that pages carry real content — the page-cache hit path
#: must win against substantial action + template work, not toy pages
SEED_SCALE = dict(volumes=10, issues_per_volume=8, papers_per_issue=8)

MODES = ("off", "flush-all", "scoped")

_RESULTS: dict[str, dict] = {}


def _build(mode: str):
    """The ACM application in one of the three E15 configurations."""
    model = build_acm_model()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    stylesheet = default_stylesheet("ACM")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    scoped = mode == "scoped"
    renderer = PresentationRenderer(
        project.skeletons, stylesheet,
        fragment_cache=FragmentCache(scoped=scoped),
    )
    page_cache = None if mode == "off" else PageCache(scoped=scoped)
    app = WebApplication(
        model, view_renderer=renderer, bean_cache=UnitBeanCache(),
        page_cache=page_cache,
    )
    seed_acm_data(app, **SEED_SCALE)
    app.ctx.stats.reset()
    return app, page_cache


def _url_pool(app: WebApplication) -> list[str]:
    """Most popular first: Figure 1's Volume Page — the content-heavy
    page the whole architecture is built around."""
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    paper_data = view.find_page("Paper details").unit("Paper data")
    return [
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 1}),
        app.page_url("public", "Volumes"),
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 2}),
        app.page_url("public", "Paper details", {f"{paper_data.id}.oid": 1}),
        app.page_url("public", "Paper details", {f"{paper_data.id}.oid": 2}),
        app.page_url("public", "Browse papers"),
    ]


def _warm(app: WebApplication, pool: list[str]) -> None:
    """One cold pass over the pool: percentiles then measure steady-state
    serving, not first-visit builds."""
    browser = Browser(app)
    for url in pool:
        assert browser.get(url).status == 200


def _admin_writer(app: WebApplication) -> Browser:
    writer = Browser(app)
    writer.get(app.operation_url(
        "admin", "Login", {"username": "admin", "password": "secret"}
    ))
    assert writer.status == 200
    return writer


def _write_factory(app: WebApplication):
    """CreatePaper writes with unique titles; each one's visibility is
    probed through the public keyword search — the read-after-write
    check a stale cache would fail."""
    view = app.model.find_site_view("public")
    matching = view.find_page("SearchResults").unit("Matching papers")

    def factory(index: int) -> WriteAction:
        title = f"E15 hot-off-the-press {index:04d}"
        return WriteAction(
            url=app.operation_url("admin", "CreatePaper",
                                  {"title": title, "pages": 7}),
            check_url=app.page_url("public", "SearchResults",
                                   {f"{matching.id}.keyword": title}),
            check_text=title,
        )

    return factory


def _record(phase: str, mode: str, report, page_cache) -> dict:
    measured = {
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "queries_per_request": report.queries_per_request,
        "bytes_on_wire": report.bytes_on_wire,
        "not_modified_ratio": report.not_modified_ratio,
        "staleness_violations": report.staleness_violations,
        "invalidation_precision": report.invalidation_precision,
        "page_hit_rate": page_cache.stats.hit_rate if page_cache else 0.0,
    }
    _RESULTS[f"{phase}:{mode}"] = measured
    return measured


def _run_read_heavy(mode: str, conditional: bool = True, phase: str = "read"):
    app, page_cache = _build(mode)
    pool = _url_pool(app)
    _warm(app, pool)
    traffic = TrafficGenerator(app, pool, seed=2003)
    report = traffic.run(READ_REQUESTS, sessions=4, conditional=conditional)
    assert report.errors == 0
    return _record(phase, mode, report, page_cache)


def _run_mixed(mode: str):
    app, page_cache = _build(mode)
    traffic = TrafficGenerator(app, _url_pool(app), seed=77)
    report = traffic.run(
        MIXED_REQUESTS, sessions=4, conditional=True,
        write_every=WRITE_EVERY, write_factory=_write_factory(app),
        writer=_admin_writer(app), page_cache=page_cache,
    )
    assert report.errors == 0
    assert report.writes == MIXED_REQUESTS // WRITE_EVERY
    return _record("mixed", mode, report, page_cache)


def test_e15_read_heavy_page_cache_speedup():
    off = _run_read_heavy("off")
    scoped = _run_read_heavy("scoped")
    # the headline claim: serving the stored response beats re-running
    # the action + template path by at least 5x at the median
    assert scoped["p50_ms"] * 5 <= off["p50_ms"], (
        f"page cache p50 {scoped['p50_ms']:.3f} ms not 5x faster than "
        f"{off['p50_ms']:.3f} ms without it"
    )
    assert scoped["p99_ms"] < off["p99_ms"]
    # conditional delivery: revisits revalidate instead of re-downloading,
    # and a 304 costs zero body bytes — against a client with no HTTP
    # cache the same traffic re-downloads every page in full
    plain = _run_read_heavy("scoped", conditional=False, phase="plain")
    assert scoped["not_modified_ratio"] > 0.5
    assert plain["not_modified_ratio"] == 0.0
    assert scoped["bytes_on_wire"] < plain["bytes_on_wire"] / 10
    assert scoped["queries_per_request"] <= off["queries_per_request"]


def test_e15_mixed_traffic_scoped_beats_flush_all():
    for mode in MODES:
        _run_mixed(mode)
    off = _RESULTS["mixed:off"]
    flush = _RESULTS["mixed:flush-all"]
    scoped = _RESULTS["mixed:scoped"]

    # correctness first: no configuration may ever serve a read that
    # misses a preceding write
    for mode in MODES:
        assert _RESULTS[f"mixed:{mode}"]["staleness_violations"] == 0

    # model-driven invalidation keeps unrelated pages alive...
    assert scoped["page_hit_rate"] > flush["page_hit_rate"]
    # ...because writes only drop their dependents (flush-all: nothing
    # survives any write)
    assert flush["invalidation_precision"] == 0.0
    assert scoped["invalidation_precision"] > 0.0
    # and the cached modes stay cheaper than no page cache at all
    assert scoped["p50_ms"] < off["p50_ms"]


def test_e15_report():
    needed = [f"read:{m}" for m in ("off", "scoped")] + ["plain:scoped"]
    needed += [f"mixed:{m}" for m in MODES]
    if not all(key in _RESULTS for key in needed):
        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E15", "full-page delivery: page cache, conditional HTTP, "
               "scoped invalidation", "§6",
    )
    read_off, read_scoped = _RESULTS["read:off"], _RESULTS["read:scoped"]
    report.add(
        "read-heavy p50 / p99", "action+template path every request",
        f"{read_scoped['p50_ms']:.2f} / {read_scoped['p99_ms']:.2f} ms vs "
        f"{read_off['p50_ms']:.2f} / {read_off['p99_ms']:.2f} ms off",
        note=f"{read_off['p50_ms'] / read_scoped['p50_ms']:.1f}x at the "
             f"median ({READ_REQUESTS} requests)",
    )
    plain = _RESULTS["plain:scoped"]
    report.add(
        "read-heavy delivery", "full body every response",
        f"{read_scoped['not_modified_ratio']:.0%} 304s, "
        f"{read_scoped['bytes_on_wire']} B on the wire",
        note=f"{plain['bytes_on_wire']} B for a client without an HTTP "
             "cache",
    )
    for mode in MODES:
        measured = _RESULTS[f"mixed:{mode}"]
        report.add(
            f"mixed traffic, {mode}",
            "0 staleness violations",
            f"p50 {measured['p50_ms']:.2f} ms, "
            f"hit rate {measured['page_hit_rate']:.0%}, "
            f"precision {measured['invalidation_precision']:.0%}, "
            f"{measured['staleness_violations']} stale reads",
            note=f"{measured['queries_per_request']:.2f} queries/request",
        )
    save_report(report, json_payload={"phases": dict(_RESULTS)})
