"""E10 (ablation) — §6: model-driven invalidation versus flush-all.

§6's automatic invalidation exists because the conceptual model "clearly
exposes the Entity or Relationship on which the content of a unit
depends".  A cache without that knowledge has two blunt options: flush
everything on every write (safe but hit-starved) or rely on TTLs (serves
stale content inside the window).

The benchmark replays the same read/write mix against the three
strategies and reports hit rate and stale serves.  Expected shape:
model-driven keeps most of the hit rate of TTL with the zero staleness
of flush-all.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.caching import UnitBeanCache
from repro.services import GenericOperationService, GenericPageService
from repro.mvc.http import Session
from repro.workloads.acm import build_acm_application

READS_PER_WRITE = 9
ROUNDS = 30


class _FlushAllCache(UnitBeanCache):
    """The model-blind alternative: any write clears everything."""

    def invalidate_writes(self, entities=(), roles=()) -> int:
        return self.flush()


class _TtlOnlyCache(UnitBeanCache):
    """No invalidation at all; entries only expire by TTL (set long
    enough here that staleness is observable)."""

    def invalidate_writes(self, entities=(), roles=()) -> int:
        return 0


def _run_strategy(cache, benchmark=None):
    app, oids = build_acm_application(volumes=3, issues_per_volume=2,
                                      papers_per_issue=3)
    app.ctx.bean_cache = cache
    for unit in app.model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    # redeploy with the cacheable flags
    from repro.codegen import generate_project

    project = generate_project(app.model, validate=False)
    project.deploy(app.registry)

    page_service = GenericPageService(app.ctx)
    operation_service = GenericOperationService(app.ctx)
    view = app.model.find_site_view("public")
    volumes_page = app.registry.page(view.find_page("Volumes").id)
    browse_page = app.registry.page(view.find_page("Browse papers").id)
    admin_view = app.model.find_site_view("admin")
    create_paper = app.registry.operation(
        next(o for o in admin_view.operations if o.name == "CreatePaper").id
    )
    session = Session("bench")

    stale_serves = 0
    paper_count = app.database.row_count("paper")

    def one_round(round_number: int):
        nonlocal stale_serves, paper_count
        for _ in range(READS_PER_WRITE):
            page_service.compute_page(volumes_page, {})
            result = page_service.compute_page(browse_page, {})
            scroller = next(iter(result.beans.values()))
            if scroller.total is not None and scroller.total != paper_count:
                stale_serves += 1
        outcome = operation_service.execute(
            create_paper,
            {"title": f"Paper {round_number}", "pages": "5"},
            session,
        )
        assert outcome.ok
        paper_count += 1

    def run_all():
        for round_number in range(ROUNDS):
            one_round(round_number)
        return cache.stats.hit_rate

    if benchmark is not None:
        hit_rate = benchmark.pedantic(run_all, rounds=1, iterations=1)
    else:
        hit_rate = run_all()
    return {
        "hit_rate": hit_rate,
        "stale_serves": stale_serves,
        "invalidations": cache.stats.invalidations,
    }


_RESULTS: dict[str, dict] = {}


def test_e10_model_driven(benchmark):
    _RESULTS["model-driven"] = _run_strategy(UnitBeanCache(), benchmark)
    assert _RESULTS["model-driven"]["stale_serves"] == 0


def test_e10_flush_all(benchmark):
    _RESULTS["flush-all"] = _run_strategy(_FlushAllCache(), benchmark)
    assert _RESULTS["flush-all"]["stale_serves"] == 0


def test_e10_ttl_only(benchmark):
    _RESULTS["ttl-only"] = _run_strategy(_TtlOnlyCache(), benchmark)
    # without invalidation the scroller keeps serving the old count
    assert _RESULTS["ttl-only"]["stale_serves"] > 0


def test_e10_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(_RESULTS) != {"model-driven", "flush-all", "ttl-only"}:
        pytest.skip("component measurements did not run")
    model_driven = _RESULTS["model-driven"]
    flush_all = _RESULTS["flush-all"]
    ttl_only = _RESULTS["ttl-only"]

    report = ExperimentReport(
        "E10", "invalidation precision: model-driven vs alternatives",
        "§6 (ablation)"
    )
    report.add("hit rate, model-driven", "high",
               f"{model_driven['hit_rate']:.1%}",
               note=f"{model_driven['invalidations']} precise invalidations")
    report.add("hit rate, flush-all", "lower (over-invalidates)",
               f"{flush_all['hit_rate']:.1%}",
               note=f"{flush_all['invalidations']} entries flushed")
    report.add("hit rate, no invalidation (TTL)", "highest but unsafe",
               f"{ttl_only['hit_rate']:.1%}")
    report.add("stale serves, model-driven", 0,
               model_driven["stale_serves"])
    report.add("stale serves, flush-all", 0, flush_all["stale_serves"])
    report.add("stale serves, no invalidation", "> 0 (the danger)",
               ttl_only["stale_serves"])
    save_report(report, json_payload=report.rows_payload())

    assert model_driven["hit_rate"] > flush_all["hit_rate"]
    assert model_driven["stale_serves"] == 0
