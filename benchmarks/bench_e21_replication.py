"""E21 — WAL-shipping replication and the process-per-core fleet.

E13 measured the single-process ceiling: worker threads overlap their
I/O waits, but they still share one database write lock, and the
durability PR put the commit fsync *inside* it (the only ordering that
keeps group commit correct).  On realistic storage media an fsync is
milliseconds, and the lock is writer-preferring — so every commit
stalls every reader in the process.  The fleet dissolves that ceiling
architecturally: read traffic moves to worker processes that own
WAL-shipped replicas and never touch the primary's write lock.

Four probes:

1. **read throughput under write pressure** — the same read pool, the
   same continuous writer, the same wire protocol and client loop;
   the only variable is where reads execute: (a) one ThreadedAppServer
   socket sharing the primary's locks vs (b) a fleet of worker
   processes over replicas.  The fleet must sustain
   ≥ ``SCALING_FLOOR``× the baseline.  Commit fsync latency is
   simulated (``FSYNC_DELAY`` sleeps inside ``WriteAheadLog._sync``,
   exactly where a real disk would stall) the same way E13 models
   data-tier round trips with ``io_delay`` — container fsyncs complete
   in ~0.1 ms and would understate what the paper's hardware pays.
2. **replica identity oracle** — replaying any committed WAL prefix
   into a replica must be byte-identical (canonical snapshot bytes) to
   a fresh crash recovery of the same prefix.  Zero mismatches.
3. **staleness under LSN wait tokens** — every read that carries the
   write's LSN token must observe that write, on every worker, every
   time.  Zero stale reads.  (Unwaited reads are *allowed* to be
   stale; the probe records how often that actually happens.)
4. **failover/catch-up** — kill the replication server mid-stream,
   keep writing, restart it: the replica must reconnect and converge.

Run fast (CI smoke): ``REPRO_E21_FAST=1 pytest benchmarks/bench_e21_replication.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

from repro.app import WebApplication
from repro.appserver import ThreadedAppServer
from repro.appserver.fleet import FleetClient, FleetSupervisor
from repro.bench import ExperimentReport, save_report
from repro.mvc.http import HttpRequest
from repro.rdb import Database
from repro.rdb.replication import ReplicationClient, ReplicationServer, open_replica
from repro.rdb.snapshot import snapshot_bytes
from repro.rdb.wal import committed_prefix_boundaries, read_log
from repro.workloads.bookstore import (
    bean_content_renderer,
    build_bookstore_model,
    seed_bookstore,
)

FAST = bool(os.environ.get("REPRO_E21_FAST"))

#: simulated commit fsync on realistic media (a 7200rpm disk pays
#: ~8 ms, consumer NVMe ~1-3 ms; the container overlay fs ~0.1 ms).
#: Sleeps inside WriteAheadLog._sync, i.e. inside the write lock —
#: exactly the stall a durable commit imposes on a shared process.
FSYNC_DELAY = 0.008
#: writer think time between commits: a busy but non-saturating write
#: stream whose commits hold the write lock most of the time
WRITE_THINK = 0.0015
FLEET_WORKERS = 2 if FAST else 4
CLIENT_THREADS = 4
MEASURE_SECONDS = 1.5 if FAST else 6.0
#: full-mode acceptance: the fleet at 4 workers at least doubles the
#: 4-thread shared-process baseline; CI smoke keeps a noise margin
SCALING_FLOOR = 1.3 if FAST else 2.0
IDENTITY_PREFIXES = 8 if FAST else 24
STALENESS_ROUNDS = 6 if FAST else 20

FACTORY = "repro.workloads.bookstore:build_bookstore_replica"

_RESULTS: dict = {}


def _detail_url(app, oid: int) -> str:
    page = app.model.find_site_view("shop").find_page("Book Page")
    return app.page_url("shop", "Book Page",
                        {f"{page.units[0].id}.oid": oid})


def _read_pool(app, oids) -> list[str]:
    pool = [app.page_url("shop", "Home"),
            app.page_url("shop", "Catalogue")]
    for book in oids["books"]:
        pool.append(_detail_url(app, book))
    return pool


def _slow_media(db: Database, delay: float = FSYNC_DELAY) -> None:
    """Make the WAL's fsync cost what realistic media costs."""
    wal = db.engine.wal
    original = wal._sync

    def slow_sync() -> None:
        original()
        time.sleep(delay)

    wal._sync = slow_sync


def _build_primary(base_dir: str) -> tuple[WebApplication, dict]:
    db = Database.open(os.path.join(base_dir, "primary"))
    app = WebApplication(build_bookstore_model(),
                         view_renderer=bean_content_renderer, database=db)
    oids = seed_bookstore(app)
    app.enable_commit_invalidation()
    _slow_media(db)  # after seeding: only the measured writes pay it
    return app, oids


def _login(app) -> str:
    request = HttpRequest.from_url(app.operation_url(
        "backoffice", "Login", {"username": "clerk", "password": "books"}))
    app.handle(request)
    assert request.session_id is not None
    return request.session_id


class _Writer(threading.Thread):
    """A continuous write stream against the primary, via the full
    request path — identical in both scenarios, so the only variable
    is where the *reads* run."""

    def __init__(self, app, book_oid: int):
        super().__init__(daemon=True)
        self.app = app
        self.book_oid = book_oid
        self.session_id = _login(app)
        self.writes = 0
        self.stop_flag = threading.Event()

    def run(self) -> None:
        while not self.stop_flag.is_set():
            price = 50.0 + (self.writes % 1000)
            response = self.app.handle(HttpRequest.from_url(
                self.app.operation_url(
                    "backoffice", "Reprice",
                    {"oid": self.book_oid, "price": price}),
                session_id=self.session_id,
            ))
            assert response.status in (200, 302)
            self.writes += 1
            time.sleep(WRITE_THINK)

    def stop(self) -> int:
        self.stop_flag.set()
        self.join(timeout=30.0)
        return self.writes


def _timed_reads(read_one, seconds: float, threads: int) -> dict:
    """Hammer ``read_one(thread_index)`` from N threads for a fixed
    wall-clock window; returns counts and requests/sec."""
    counts = [0] * threads
    deadline = time.perf_counter() + seconds
    barrier = threading.Barrier(threads + 1)

    def loop(index: int) -> None:
        barrier.wait()
        while time.perf_counter() < deadline:
            read_one(index)
            counts[index] += 1

    pool = [threading.Thread(target=loop, args=(i,), daemon=True)
            for i in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join(timeout=seconds + 60.0)
    elapsed = time.perf_counter() - started
    total = sum(counts)
    return {"requests": total, "seconds": round(elapsed, 3),
            "rps": round(total / elapsed, 1)}


# -- probe 1: read throughput under write pressure ---------------------------


def test_e21_fleet_outscales_shared_process_under_writes():
    from repro.httpcore.client import WireClient

    base = tempfile.mkdtemp(prefix="e21-")
    try:
        # baseline: reads and writes share one process, one write lock;
        # reads arrive over the same wire protocol the fleet pays
        app, oids = _build_primary(os.path.join(base, "baseline"))
        pool = _read_pool(app, oids)
        writer = _Writer(app, oids["books"][0])
        with ThreadedAppServer(app, workers=CLIENT_THREADS) as server:
            address = server.listen()
            # sticky keep-alive connections, one per client thread —
            # listen() pins a worker slot per connection, so the client
            # count must not oversubscribe the slots
            connections = [WireClient(address).connect()
                           for _ in range(CLIENT_THREADS)]
            writer.start()

            def read_baseline(index: int) -> None:
                url = pool[index % len(pool)]
                response = connections[index].request(url)
                assert response.status == 200

            baseline = _timed_reads(
                read_baseline, MEASURE_SECONDS, CLIENT_THREADS)
            baseline["writes"] = writer.stop()
            for connection in connections:
                connection.close()
        app.close()

        # fleet: reads move to worker processes over replicas (each
        # client thread sticks to one worker, same connection shape)
        app, oids = _build_primary(os.path.join(base, "fleet"))
        pool = _read_pool(app, oids)
        with FleetSupervisor(app, FACTORY, workers=FLEET_WORKERS,
                             worker_threads=2, start_timeout=120.0) as sup:
            client = FleetClient(sup, read_your_writes=False)
            addresses = sup.worker_addresses
            writer = _Writer(app, oids["books"][0])
            writer.start()

            def read_fleet(index: int) -> None:
                response = client.read(
                    pool[index % len(pool)],
                    worker=addresses[index % len(addresses)])
                assert response.status == 200

            fleet = _timed_reads(read_fleet, MEASURE_SECONDS, CLIENT_THREADS)
            fleet["writes"] = writer.stop()
            fleet["max_lag"] = sup.status()["replication"]["max_lag"]
        app.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)

    scaling = fleet["rps"] / baseline["rps"]
    _RESULTS["scaling"] = {
        "baseline": baseline, "fleet": fleet,
        "fleet_workers": FLEET_WORKERS, "ratio": round(scaling, 2),
    }
    assert fleet["writes"] > 0 and baseline["writes"] > 0
    assert scaling >= SCALING_FLOOR, (
        f"fleet read throughput only {scaling:.2f}x the shared-process "
        f"baseline ({fleet['rps']} vs {baseline['rps']} req/s)"
    )


# -- probe 2: replica identity oracle ----------------------------------------


def test_e21_replica_replay_is_byte_identical_to_recovery():
    base = tempfile.mkdtemp(prefix="e21-oracle-")
    try:
        data_dir = os.path.join(base, "primary")
        db = Database.open(data_dir)
        app = WebApplication(build_bookstore_model(), database=db)
        oids = seed_bookstore(app)
        session = _login(app)
        for step in range(6):
            app.handle(HttpRequest.from_url(
                app.operation_url("backoffice", "Reprice", {
                    "oid": oids["books"][step % len(oids["books"])],
                    "price": 10.0 + step}),
                session_id=session))
        wal_path = db.engine.wal_path
        records = list(read_log(wal_path))
        boundaries = committed_prefix_boundaries(wal_path)
        with open(wal_path, "rb") as handle:
            wal_bytes = handle.read()
        app.close()

        assert len(boundaries) == len(records) > 10
        step = max(1, len(boundaries) // IDENTITY_PREFIXES)
        checked = mismatches = 0
        replica = open_replica()
        position = 0
        for index, boundary in enumerate(boundaries):
            # stream the prefix into the long-lived replica as it grows
            while position <= index:
                replica.apply_replicated(records[position])
                position += 1
            if index % step and index != len(boundaries) - 1:
                continue
            # fresh crash recovery of exactly this prefix
            recovery_dir = os.path.join(base, f"recover-{index}")
            shutil.copytree(data_dir, recovery_dir)
            with open(os.path.join(recovery_dir, "wal.log"), "wb") as handle:
                handle.write(wal_bytes[:boundary])
            with Database.open(recovery_dir) as recovered:
                expected = snapshot_bytes(recovered.last_lsn,
                                          recovered.engine.tables)
            actual = snapshot_bytes(replica.last_lsn, replica.engine.tables)
            checked += 1
            if actual != expected:
                mismatches += 1
            shutil.rmtree(recovery_dir, ignore_errors=True)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    _RESULTS["identity"] = {
        "records": len(records), "prefixes_checked": checked,
        "mismatches": mismatches,
    }
    assert checked >= min(IDENTITY_PREFIXES, len(boundaries)) // 2
    assert mismatches == 0


# -- probe 3: staleness under LSN wait tokens --------------------------------


def test_e21_lsn_tokens_eliminate_stale_reads():
    base = tempfile.mkdtemp(prefix="e21-stale-")
    try:
        app, oids = _build_primary(base)
        book = oids["books"][0]
        url = _detail_url(app, book)
        with FleetSupervisor(app, FACTORY, workers=2, worker_threads=2,
                             start_timeout=120.0) as sup:
            client = FleetClient(sup)
            client.write(app.operation_url(
                "backoffice", "Login",
                {"username": "clerk", "password": "books"}))
            waited_stale = unwaited_stale = waited = unwaited = 0
            for round_no in range(STALENESS_ROUNDS):
                price = 900.0 + round_no
                client.write(app.operation_url(
                    "backoffice", "Reprice",
                    {"oid": book, "price": price}))
                for address in sup.worker_addresses:
                    # unwaited first: it races replication on purpose
                    bare = FleetClient(sup, read_your_writes=False)
                    response = bare.read(url, worker=address)
                    served = json.loads(response.body)["Book"]["current"]
                    unwaited += 1
                    if float(served["price"]) != price:
                        unwaited_stale += 1
                    # token-gated read: must always see the write
                    response = client.read(url, worker=address)
                    assert response.status == 200
                    served = json.loads(response.body)["Book"]["current"]
                    waited += 1
                    if float(served["price"]) != price:
                        waited_stale += 1
        app.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)

    _RESULTS["staleness"] = {
        "waited_reads": waited, "waited_stale": waited_stale,
        "unwaited_reads": unwaited, "unwaited_stale": unwaited_stale,
    }
    assert waited_stale == 0, (
        f"{waited_stale}/{waited} LSN-waited reads were stale"
    )


# -- probe 4: failover / catch-up --------------------------------------------


def test_e21_replica_reconnects_and_converges():
    base = tempfile.mkdtemp(prefix="e21-failover-")
    try:
        db = Database.open(os.path.join(base, "primary"))
        db.execute("CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT,"
                   " n INTEGER, PRIMARY KEY (oid))")
        server = ReplicationServer(db, poll_interval=0.01)
        host, port = server.start()
        replica = open_replica()
        client = ReplicationClient(replica, (host, port),
                                   reconnect_backoff=0.05).start()
        try:
            assert client.wait_for_bootstrap(timeout=30.0)
            db.insert_row("t", {"n": 1})
            assert client.wait_for_lsn(db.last_lsn, timeout=30.0)
            server.stop()  # the outage
            deadline = time.monotonic() + 30.0
            while client.connected and time.monotonic() < deadline:
                time.sleep(0.01)
            for n in range(2, 12):
                db.insert_row("t", {"n": n})
            server = ReplicationServer(db, host=host, port=port,
                                       poll_interval=0.01)
            server.start()
            converged = client.wait_for_lsn(db.last_lsn, timeout=30.0)
            identical = (
                snapshot_bytes(replica.last_lsn, replica.engine.tables)
                == snapshot_bytes(db.last_lsn, db.engine.tables)
            )
            stats = client.stats()
        finally:
            client.stop()
            server.stop()
            db.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)

    _RESULTS["failover"] = {
        "converged": converged, "identical": identical,
        "reconnects": stats["reconnects"],
        "duplicates_skipped": stats["duplicates_skipped"],
    }
    assert converged and identical
    assert stats["reconnects"] >= 1
    assert stats["duplicates_skipped"] > 0  # at-least-once re-shipping


# -- the report --------------------------------------------------------------


def test_e21_report():
    probes = ("scaling", "identity", "staleness", "failover")
    if not all(key in _RESULTS for key in probes):
        import pytest

        pytest.skip("component measurements did not run")
    scaling = _RESULTS["scaling"]
    identity = _RESULTS["identity"]
    staleness = _RESULTS["staleness"]
    failover = _RESULTS["failover"]

    report = ExperimentReport(
        "E21", "WAL-shipping replication and the process fleet",
        "§1/§4 (multiplying tiers behind hard boundaries)",
    )
    report.add(
        "read req/s, shared process under writes", "the E13 ceiling",
        scaling["baseline"]["rps"],
        note=f"{scaling['baseline']['writes']} concurrent writes, "
             f"fsync {FSYNC_DELAY * 1e3:.0f} ms",
    )
    report.add(
        f"read req/s, {scaling['fleet_workers']}-worker fleet",
        ">= 2x the shared process", scaling["fleet"]["rps"],
        note=f"{scaling['fleet']['writes']} concurrent writes; "
             f"{scaling['ratio']}x",
    )
    report.add(
        "replica replay vs fresh recovery", "byte-identical",
        f"{identity.get('mismatches')} mismatches",
        note=f"{identity.get('prefixes_checked')} WAL prefixes, "
             f"{identity.get('records')} records",
    )
    report.add(
        "stale reads under LSN wait tokens", "0",
        staleness.get("waited_stale"),
        note=f"{staleness.get('waited_reads')} gated reads; unwaited "
             f"reads stale {staleness.get('unwaited_stale')}"
             f"/{staleness.get('unwaited_reads')} (allowed)",
    )
    report.add(
        "reconnect after primary restart", "converges",
        "converged" if failover.get("converged") else "DIVERGED",
        note=f"{failover.get('duplicates_skipped')} duplicate records "
             "skipped idempotently",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "fsync_delay_seconds": FSYNC_DELAY,
        "write_think_seconds": WRITE_THINK,
        "scaling_floor": SCALING_FLOOR,
        "scaling": scaling,
        "identity": identity,
        "staleness": staleness,
        "failover": failover,
    })
