"""E9 (ablation) — §4 / Figure 5: the runtime price of genericity.

The paper trades dedicated per-unit services for one generic service
instantiated by descriptors, accepting whatever interpretation overhead
the descriptor indirection costs at runtime.  This ablation measures
that trade directly: the *same page* is computed through

- the generic page/unit services driven by deployed descriptors, and
- the conventional generator's dedicated classes (compiled Python),

against the same database.  Expected shape: identical beans, with the
generic path paying a small constant per request — the maintainability
win of E2 is bought with single-digit-percent CPU, not structure.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_conventional
from repro.services import GenericPageService
from repro.workloads.acm import build_acm_application

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def runtimes():
    app, oids = build_acm_application(volumes=4, issues_per_volume=3,
                                      papers_per_issue=4)
    conventional = generate_conventional(app.model,
                                         app.project.mapping,
                                         validate=False).instantiate()
    view = app.model.find_site_view("public")
    page = view.find_page("Volume Page")
    volume_data = page.unit("Volume data")
    request_params = {f"{volume_data.id}.oid": str(oids["volumes"][0])}
    return app, conventional, page, request_params


def test_e9_generic_path(benchmark, runtimes):
    app, _conventional, page, request_params = runtimes
    service = GenericPageService(app.ctx)
    descriptor = app.registry.page(page.id)

    result = benchmark(lambda: service.compute_page(descriptor, request_params))
    assert result.bean_named("Volume data").current is not None
    _RESULTS["generic"] = benchmark.stats["median"]


def test_e9_dedicated_path(benchmark, runtimes):
    app, conventional, page, request_params = runtimes

    result = benchmark(
        lambda: conventional.compute_page(page.id, app.ctx, request_params)
    )
    assert result.bean_named("Volume data").current is not None
    _RESULTS["dedicated"] = benchmark.stats["median"]


def test_e9_results_identical(benchmark, runtimes):
    """Both architectures must produce the same Model state."""
    app, conventional, page, request_params = runtimes
    service = GenericPageService(app.ctx)
    descriptor = app.registry.page(page.id)

    def compare():
        generic = service.compute_page(descriptor, request_params)
        dedicated = conventional.compute_page(page.id, app.ctx,
                                              request_params)
        assert set(generic.beans) == set(dedicated.beans)
        for unit_id, bean in generic.beans.items():
            other = dedicated.beans[unit_id]
            assert bean.current == other.current
            assert bean.rows == other.rows
            assert bean.outputs == other.outputs
        return len(generic.beans)

    beans = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert beans == 3  # data + hierarchical + entry


def test_e9_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    generic = _RESULTS.get("generic")
    dedicated = _RESULTS.get("dedicated")
    if not (generic and dedicated):
        pytest.skip("component measurements did not run")

    overhead = (generic - dedicated) / dedicated
    report = ExperimentReport(
        "E9", "runtime overhead of descriptor-driven genericity",
        "§4 / Figure 5 (ablation)"
    )
    report.add("dedicated-classes page computation", "baseline",
               f"{dedicated * 1e6:.0f} us")
    report.add("generic-service page computation", "small constant over",
               f"{generic * 1e6:.0f} us")
    report.add("genericity overhead", "acceptable (the §4 trade)",
               f"{overhead:+.1%}")
    report.add("classes to maintain for this page", "12 vs 4",
               "12 generic (app-wide) vs 4 dedicated (this page alone)")
    save_report(report, json_payload=report.rows_payload())

    # the trade must stay cheap: well under 2x
    assert generic < dedicated * 2
