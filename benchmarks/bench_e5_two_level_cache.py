"""E5 — §6: the two-level cache architecture.

"The MVC architecture partly reduces the benefits of template-level
caching, because the HTTP request does not invoke the page template
directly, but an action class, which performs all the costly data
queries before the page template is parsed and executed ... WebRatio
solves this issue by adopting a two-level cache architecture."

The benchmark replays identical zipfian traffic against three
configurations of the same application:

- no cache at all,
- fragment (template-level) cache only — markup generation is spared,
  data-extraction queries are NOT,
- two-level (fragment + unit-bean) cache — repeated queries are spared.

Reported: queries executed and mean latency per configuration.  Shape:
fragment-only leaves query counts untouched; the bean cache collapses
them; latency follows.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.caching import FragmentCache, UnitBeanCache
from repro.codegen import generate_project
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.app import WebApplication
from repro.workloads.acm import build_acm_model, seed_acm_data
from repro.workloads.traffic import TrafficGenerator, page_url_pool

REQUESTS = 150

_RESULTS: dict[str, dict] = {}


def _build(configuration: str):
    model = build_acm_model()
    # every content unit participates in the §6 bean cache
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    stylesheet = default_stylesheet("ACM")
    fragment_cache = None
    bean_cache = None
    if configuration in ("fragment", "two-level"):
        fragment_cache = FragmentCache()
        for rule in stylesheet.unit_rules:
            rule.set_attrs["fragment"] = "cache"
    if configuration == "two-level":
        bean_cache = UnitBeanCache()
    renderer = PresentationRenderer(
        project.skeletons, stylesheet, fragment_cache=fragment_cache
    )
    app = WebApplication(model, view_renderer=renderer,
                         bean_cache=bean_cache)
    seed_acm_data(app, volumes=4, issues_per_volume=3, papers_per_issue=4)
    app.ctx.stats.reset()
    return app, fragment_cache, bean_cache


def _url_pool(app):
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    paper_data = view.find_page("Paper details").unit("Paper data")
    pool = [
        app.page_url("public", "Volumes"),
        app.page_url("public", "Volume Page",
                     {f"{volume_data.id}.oid": 1}),
        app.page_url("public", "Volume Page",
                     {f"{volume_data.id}.oid": 2}),
        app.page_url("public", "Paper details",
                     {f"{paper_data.id}.oid": 1}),
        app.page_url("public", "Browse papers"),
    ]
    return pool


def _run_configuration(configuration: str, benchmark):
    app, fragment_cache, bean_cache = _build(configuration)
    traffic = TrafficGenerator(app, _url_pool(app), seed=2003)
    urls = [traffic.pick_url() for _ in range(REQUESTS)]

    from repro.app import Browser

    def replay():
        app.ctx.stats.reset()
        if fragment_cache:
            fragment_cache.flush()
            fragment_cache.stats.reset()
        if bean_cache:
            bean_cache.flush()
            bean_cache.stats.reset()
        browser = Browser(app)
        for url in urls:
            response = browser.get(url)
            assert response.status == 200
        return app.ctx.stats.queries_executed

    queries = benchmark.pedantic(replay, rounds=3, iterations=1)
    _RESULTS[configuration] = {
        "queries": queries,
        "latency": benchmark.stats["mean"] / REQUESTS,
        "fragment_hits": fragment_cache.stats.hits if fragment_cache else 0,
        "bean_hits": bean_cache.stats.hits if bean_cache else 0,
    }


def test_e5_no_cache(benchmark):
    _run_configuration("none", benchmark)
    assert _RESULTS["none"]["queries"] > 0


def test_e5_fragment_cache_only(benchmark):
    _run_configuration("fragment", benchmark)
    outcome = _RESULTS["fragment"]
    assert outcome["fragment_hits"] > 0  # markup generation was spared...
    assert outcome["queries"] == _RESULTS["none"]["queries"]  # ...queries not


def test_e5_two_level_cache(benchmark):
    _run_configuration("two-level", benchmark)
    outcome = _RESULTS["two-level"]
    assert outcome["bean_hits"] > 0
    assert outcome["queries"] < _RESULTS["none"]["queries"] / 3


def test_e5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(_RESULTS) != {"none", "fragment", "two-level"}:
        pytest.skip("component measurements did not run")
    none, fragment, two_level = (
        _RESULTS["none"], _RESULTS["fragment"], _RESULTS["two-level"]
    )
    report = ExperimentReport(
        "E5", "two-level cache: what each level spares", "§6"
    )
    report.add("queries, no cache", "all executed", none["queries"],
               note=f"{REQUESTS} requests")
    report.add("queries, fragment cache only", "unchanged (ESI limit)",
               fragment["queries"],
               note=f"{fragment['fragment_hits']} fragment hits")
    report.add("queries, two-level cache", "collapsed",
               two_level["queries"],
               note=f"{two_level['bean_hits']} bean hits")
    report.add("latency/request, no cache", "baseline",
               f"{none['latency'] * 1e3:.2f} ms")
    report.add("latency/request, fragment only", "slightly lower",
               f"{fragment['latency'] * 1e3:.2f} ms")
    report.add("latency/request, two-level", "lowest",
               f"{two_level['latency'] * 1e3:.2f} ms")
    save_report(report, json_payload=report.rows_payload())

    assert two_level["queries"] < none["queries"]
    assert two_level["latency"] < none["latency"]
