"""E7 — §4 / Figure 6: servlet-tier clones versus the application server.

"Cloning the machine where the servlet container resides duplicates also
all the services of the application.  The number of clones must be
decided statically, and cannot be adapted at runtime.  If the traffic of
a certain application reduces, the objects implementing its services
remain in main memory and occupy resources" — versus EJB-style
components that pool, scale, and are "accessed by Web applications and
other enterprise applications".

Deterministic simulation (virtual clock): a day of traffic with a burst,
a quiet period, and a second smaller burst, run against (a) four static
clones and (b) the adaptive component container.  Reported: resident
service instances over time and the idle-time memory each architecture
holds.
"""

import pytest

from repro.appserver import (
    ComponentContainer,
    ComponentDescriptor,
    ServletTierDeployment,
)
from repro.bench import ExperimentReport, save_report
from repro.util import VirtualClock

SERVICES = ("page-service", "unit-service", "operation-service")
CLONES = 4
INSTANCES_PER_SERVICE = 2

#: (duration seconds, concurrent demand per service)
LOAD_SCHEDULE = [
    (600, 1),   # early morning trickle
    (600, 8),   # morning burst
    (1200, 0),  # lunch lull
    (600, 4),   # afternoon
    (1800, 0),  # evening idle
]


class _BusinessComponent:
    def serve(self):
        return "ok"


def _drive(container_like, clock, adaptive: bool):
    """Run the schedule; samples resident instances after each phase."""
    samples = []
    for duration, demand in LOAD_SCHEDULE:
        if demand and adaptive:
            # concurrent demand: hold N instances at once, then release
            for name in SERVICES:
                pool = container_like._pool(name)
                held = [container_like._acquire(pool) for _ in range(demand)]
                for instance in held:
                    container_like._release(pool, instance)
        elif demand:
            for name in SERVICES:
                for _ in range(demand):
                    container_like.invoke(name, "serve")
        clock.advance(duration)
        if adaptive:
            container_like.sweep()
        samples.append(container_like.resident_instances())
    return samples


def test_e7_idle_occupancy(benchmark):
    clock = VirtualClock()
    adaptive = ComponentContainer(clock=clock)
    for name in SERVICES:
        adaptive.deploy(ComponentDescriptor(
            name, _BusinessComponent, min_instances=1, max_instances=32,
            idle_timeout=900.0,
        ))
    static = ServletTierDeployment(clone_count=CLONES,
                                   instances_per_service=INSTANCES_PER_SERVICE)
    for name in SERVICES:
        static.deploy(name, _BusinessComponent)

    def simulate():
        return (
            _drive(adaptive, clock, adaptive=True),
            _drive(static, VirtualClock(), adaptive=False),
        )

    adaptive_samples, static_samples = benchmark.pedantic(
        simulate, rounds=1, iterations=1
    )
    peak_adaptive = max(adaptive_samples)
    idle_adaptive = adaptive_samples[-1]
    static_resident = static.resident_instances()

    report = ExperimentReport(
        "E7", "resident service instances vs offered load", "§4 / Figure 6"
    )
    report.add("static clones resident (always)",
               f"{CLONES} clones x services", static_resident)
    report.add("adaptive resident at burst peak", "grows with demand",
               peak_adaptive)
    report.add("adaptive resident when idle", "shrinks to minimum",
               idle_adaptive)
    report.add("idle memory saved vs static", "the §4 motivation",
               f"{static_resident - idle_adaptive} instances")
    report.add("resident over schedule (adaptive)", "load-shaped",
               str(adaptive_samples))
    report.add("resident over schedule (static)", "flat",
               str(static_samples))
    save_report(report, json_payload=report.rows_payload())

    assert static_resident == CLONES * INSTANCES_PER_SERVICE * len(SERVICES)
    assert all(s == static_resident for s in static_samples)
    assert peak_adaptive > idle_adaptive
    assert idle_adaptive == len(SERVICES)  # min_instances each
    assert idle_adaptive < static_resident


def test_e7_shared_business_tier(benchmark):
    """§4's other half: one business tier, many kinds of client."""
    container = ComponentContainer(clock=VirtualClock())
    container.deploy(ComponentDescriptor(
        "page-service", _BusinessComponent, min_instances=1,
        max_instances=8,
    ))

    def web_request():
        return container.invoke("page-service", "serve")

    def batch_job():  # a non-Web application using the same components
        return [container.invoke("page-service", "serve") for _ in range(5)]

    def mixed():
        assert web_request() == "ok"
        assert batch_job() == ["ok"] * 5
        return container.invocations

    invocations = benchmark(mixed)
    assert invocations >= 6
    # both client kinds shared the single pooled instance
    assert container.pool_stats("page-service")["created_total"] == 1
