"""E14 — the cost-based query pipeline, from the rdb planner up to the
batched unit services.

Two claims of §1 ("the generated code should perform and scale well")
are measured against the seed's behaviour, which this PR keeps alive as
explicit baselines:

* **cost-based planning** — the seed planner used an index only for a
  full exact-equality match; ranges, IN-lists, and badly-ordered joins
  fell back to full scans.  ``Database.prepare(sql, optimize=False)``
  rebuilds exactly that naive plan, and this experiment runs both plans
  over a scaled bookstore catalogue: the optimized plan must pick an
  index (or reorder the join) on every probe query where the naive plan
  scans, and must be measurably faster.

* **batched unit loading** — the seed hierarchical index ran one
  ``:parent`` query per parent row (the classic N+1); the batch loader
  turns each level into a single IN-list query.  With a simulated wire
  delay per statement (``Database.io_delay``, as in E13) the page's
  query count drops from O(rows) to O(levels) and latency follows.

Run fast (CI smoke): ``REPRO_E14_FAST=1 pytest benchmarks/bench_e14_query_pipeline.py``.
"""

from __future__ import annotations

import os
import time

from repro.bench import ExperimentReport, save_report
from repro.rdb import Database
from repro.services import GenericUnitService
from repro.workloads.acm import build_acm_application

FAST = bool(os.environ.get("REPRO_E14_FAST"))

BOOKS = 2_000 if FAST else 12_000
#: wide enough that the year-filtered book set is smaller than the
#: genre table — the join-reorder probe needs the filtered side to win
GENRES = 600
TIMING_ROUNDS = 5 if FAST else 20
#: per-statement simulated data-tier round trip for the batching half
IO_DELAY = 0.002
ACM_SCALE = dict(volumes=2, issues_per_volume=6, papers_per_issue=4) \
    if FAST else dict(volumes=3, issues_per_volume=10, papers_per_issue=6)

_RESULTS: dict[str, dict] = {}


def _catalogue() -> Database:
    """A bookstore-shaped catalogue at benchmark scale, laid out the way
    the er mapping generates it (pk + secondary index per FK) plus the
    kind of attribute index a data expert adds while tuning (§6)."""
    db = Database()
    db.execute(
        "CREATE TABLE genre (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(60) NOT NULL, PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " title VARCHAR(160) NOT NULL, price FLOAT, year INTEGER,"
        " genre_oid INTEGER, PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_genre ON book (genre_oid)")
    db.execute("CREATE INDEX ix_book_year ON book (year)")
    for i in range(GENRES):
        db.insert_row("genre", {"name": f"genre-{i:02d}"})
    for i in range(BOOKS):
        db.insert_row("book", {
            "title": f"book-{i:05d}",
            "price": 10.0 + (i % 600) / 10.0,
            "year": 1980 + (i % 40),
            "genre_oid": (i % GENRES) + 1,
        })
    db.analyze()
    db.stats.reset()
    return db


#: (label, sql, naive marker, optimized marker) — queries the seed
#: planner could only answer by scanning; the cost-based planner must
#: find an index or a better join order for every one of them.
PROBE_QUERIES = [
    ("range on indexed year",
     "SELECT title FROM book WHERE year BETWEEN 2015 AND 2016",
     "SeqScan(book", "IndexRange(book"),
    ("inequality on indexed year",
     "SELECT title FROM book WHERE year >= 2018",
     "SeqScan(book", "IndexRange(book"),
    ("IN-list over the genre FK",
     "SELECT title FROM book WHERE genre_oid IN (2, 5)",
     "SeqScan(book", "IndexIn(book"),
    # The naive plan keeps the declared order: it seq-scans all of
    # genre and hash-builds all of book; the cost-based plan starts
    # from book narrowed by the year index.
    ("join reordered onto the filtered side",
     "SELECT g.name, b.title FROM genre g"
     " JOIN book b ON b.genre_oid = g.oid WHERE b.year = 2019",
     "SeqScan(genre AS g", "IndexLookup(book AS b"),
]


def _time_plan(plan, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        plan.execute({})
        best = min(best, time.perf_counter() - start)
    return best


def test_e14_cost_based_plans_beat_naive():
    db = _catalogue()
    rows = []
    for label, sql, naive_marker, opt_marker in PROBE_QUERIES:
        optimized = db.prepare(sql)
        naive = db.prepare(sql, optimize=False)
        optimized_rows = sorted(optimized.execute({}).as_tuples())
        naive_rows = sorted(naive.execute({}).as_tuples())
        assert optimized_rows == naive_rows  # same answer, new plan
        assert naive_marker in naive.explain()
        assert opt_marker in optimized.explain()
        t_opt = _time_plan(optimized, TIMING_ROUNDS)
        t_naive = _time_plan(naive, TIMING_ROUNDS)
        assert t_opt < t_naive, f"{label}: {t_opt:.6f}s !< {t_naive:.6f}s"
        rows.append((label, t_naive, t_opt, t_naive / t_opt))
    _RESULTS["plans"] = {"rows": rows}


def test_e14_join_reorder_starts_from_filtered_table():
    db = _catalogue()
    _, sql, _, _ = PROBE_QUERIES[3]
    opt_lines = db.prepare(sql).explain().splitlines()
    naive_lines = db.prepare(sql, optimize=False).explain().splitlines()
    # naive keeps the declared order (genre is the base scan); the
    # cost-based plan starts from the filtered book binding instead.
    assert "genre AS g" in naive_lines[-1]
    assert "book AS b" in opt_lines[-1]


def test_e14_batched_units_run_constant_queries():
    def _render(batched: bool):
        app, oids = build_acm_application(**ACM_SCALE)
        app.database.io_delay = IO_DELAY
        descriptor = next(
            deployed.parsed for deployed in app.ctx.registry.units.values()
            if deployed.parsed.kind == "hierarchical"
        )
        descriptor.batched = batched
        service = GenericUnitService(app.ctx)
        inputs = {"volume_to_issue": oids["volumes"][0]}
        start = time.perf_counter()
        bean = service.compute(descriptor, inputs)
        elapsed = time.perf_counter() - start
        return bean, app.ctx.stats, elapsed

    bean_batched, stats_batched, t_batched = _render(batched=True)
    bean_naive, stats_naive, t_naive = _render(batched=False)

    issues = len(bean_batched.rows)
    assert issues == ACM_SCALE["issues_per_volume"]
    assert bean_batched.rows == bean_naive.rows  # identical content
    # O(levels): root query + one IN-list for the whole Paper level
    assert stats_batched.queries_executed == 2
    assert stats_batched.batched_queries == 1
    # O(rows): root query + one query per issue row
    assert stats_naive.queries_executed == 1 + issues
    assert t_batched < t_naive
    _RESULTS["batching"] = {
        "issues": issues,
        "queries_batched": stats_batched.queries_executed,
        "queries_naive": stats_naive.queries_executed,
        "t_batched": t_batched,
        "t_naive": t_naive,
    }


def test_e14_report():
    plans = _RESULTS.get("plans")
    batching = _RESULTS.get("batching")
    if not (plans and batching):
        import pytest

        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E14", "cost-based planning and batched unit loading",
        "§1, §6 (ablation)",
    )
    for label, t_naive, t_opt, speedup in plans["rows"]:
        report.add(
            label, "full scan (seed planner)",
            f"{t_opt * 1e6:.0f} us vs {t_naive * 1e6:.0f} us naive",
            note=f"{speedup:.1f}x faster ({BOOKS} books)",
        )
    report.add(
        "hierarchical unit, queries per page",
        f"1 + {batching['issues']} (N+1)",
        f"{batching['queries_batched']} (root + 1 per level)",
        note="IN-list batch loader",
    )
    report.add(
        "hierarchical unit, latency",
        f"{batching['t_naive'] * 1e3:.1f} ms per-row",
        f"{batching['t_batched'] * 1e3:.1f} ms batched",
        note=f"{batching['t_naive'] / batching['t_batched']:.1f}x faster"
             f" at {IO_DELAY * 1e3:.0f} ms simulated wire delay",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "books": BOOKS,
        "plans": {
            label: {
                "naive_seconds": t_naive,
                "optimized_seconds": t_opt,
                "speedup": speedup,
            }
            for label, t_naive, t_opt, speedup in plans["rows"]
        },
        "batching": {
            "issues": batching["issues"],
            "queries_batched": batching["queries_batched"],
            "queries_naive": batching["queries_naive"],
            "batched_seconds": batching["t_batched"],
            "naive_seconds": batching["t_naive"],
            "speedup": batching["t_naive"] / batching["t_batched"],
        },
    })
