"""E17 — compiled query execution against the interpreted evaluator.

The rdb compiles every planned expression tree into a closed-over
Python function at ``prepare()`` time (``repro.rdb.compile``): scan
predicates and fused scan→filter→project pipelines run in row mode
without building per-row binding maps or ``RowScope`` objects, hash
joins extract keys with compiled tuple builders, and aggregates feed
compiled argument extractors.  This experiment measures that work on
the three interpreter-bound shapes of §1's "the generated code should
perform and scale well":

* **full-scan filter** — a multi-term predicate (range + LIKE +
  NULL test) with an arithmetic projection and an ORDER BY over the
  computed alias, fused into one row-mode pipeline;
* **hash join** — compiled build/probe key extraction plus a compiled
  prefilter on the probe side;
* **aggregation** — GROUP BY over the whole catalogue with compiled
  group keys and per-call argument extractors.

Each probe runs the same *optimized* plan twice — once compiled
(``db.prepare(sql, columnar=False)``) and once with compilation
switched off (``db.prepare(sql, compiled=False)``) — so the comparison
isolates expression evaluation from planning.  The explicit
``columnar=False`` pins the row engine: at this scale the cost model
would otherwise route the seq-scan probes to the columnar batch
pipeline, which is E20's subject, measured against exactly this
compiled-row path.  Answers must be byte-identical, and the seed
interpreter (``optimize=False``) must agree up to row order.  At
benchmark scale the compiled plan must be at least 2x faster on every
probe.

Run fast (CI smoke): ``REPRO_E17_FAST=1 pytest benchmarks/bench_e17_compiled_execution.py``.
"""

from __future__ import annotations

import os
import time

from repro.bench import ExperimentReport, save_report
from repro.rdb import Database

FAST = bool(os.environ.get("REPRO_E17_FAST"))

BOOKS = 2_000 if FAST else 12_000
GENRES = 12
TIMING_ROUNDS = 5 if FAST else 15
#: at full scale the compiled plan must clear this factor on every
#: probe; the fast smoke only checks direction (small runs are noisy)
MIN_SPEEDUP = 2.0

_RESULTS: dict[str, dict] = {}


def _catalogue() -> Database:
    """The bookstore catalogue at benchmark scale (same layout as E14:
    er-generated pk + FK index), with enough NULLs and string variety
    to exercise the three-valued predicates the compiler must honour."""
    db = Database()
    db.execute(
        "CREATE TABLE genre (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(60) NOT NULL, PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " title VARCHAR(160) NOT NULL, price FLOAT, year INTEGER,"
        " genre_oid INTEGER, PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_genre ON book (genre_oid)")
    for i in range(GENRES):
        db.insert_row("genre", {"name": f"genre-{i}"})
    for i in range(BOOKS):
        db.insert_row("book", {
            "title": f"b{i}",
            "price": 10.0 + (i % 890) / 10.0,
            "year": None if i % 3 == 0 else 1990 + i % 30,
            "genre_oid": i % GENRES + 1,
        })
    db.analyze()
    db.stats.reset()
    return db


#: (label, sql, params) — one probe per interpreter-bound shape
PROBE_QUERIES = [
    ("fused full-scan filter",
     "SELECT title, price * :rate + price AS px FROM book"
     " WHERE price > :lo AND price < :hi AND title LIKE 'b1%'"
     " AND year IS NOT NULL ORDER BY px DESC",
     {"rate": 1.1, "lo": 20.0, "hi": 60.0}),
    ("hash join, compiled keys",
     "SELECT g.name, b.title, b.price * :rate AS px FROM genre g"
     " JOIN book b ON b.genre_oid = g.oid"
     " WHERE b.price > :lo AND b.title LIKE 'b%' AND g.name <> :skip",
     {"lo": 50.0, "rate": 1.2, "skip": "genre-0"}),
    ("grouped aggregation",
     "SELECT genre_oid, COUNT(*) AS n, SUM(price) AS total,"
     " AVG(price) AS ap FROM book WHERE year IS NOT NULL"
     " GROUP BY genre_oid ORDER BY total DESC",
     {}),
]


def _time_plan(plan, params: dict, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        plan.execute(params)
        best = min(best, time.perf_counter() - start)
    return best


def test_e17_compiled_matches_and_beats_interpreted():
    db = _catalogue()
    rows = []
    for label, sql, params in PROBE_QUERIES:
        compiled = db.prepare(sql, columnar=False)
        interpreted = db.prepare(sql, compiled=False)
        seed = db.prepare(sql, optimize=False)
        assert compiled.exec_mode == "compiled", label
        assert interpreted.exec_mode == "interpreted", label
        assert "exec=compiled" in compiled.explain()
        # same optimized plan, same answer, byte for byte
        compiled_rows = compiled.execute(params).as_tuples()
        assert compiled_rows == interpreted.execute(params).as_tuples(), label
        # the seed interpreter agrees up to row order
        assert sorted(map(repr, compiled_rows)) == \
            sorted(map(repr, seed.execute(params).as_tuples())), label
        t_compiled = _time_plan(compiled, params, TIMING_ROUNDS)
        t_interpreted = _time_plan(interpreted, params, TIMING_ROUNDS)
        speedup = t_interpreted / t_compiled
        if FAST:
            assert t_compiled < t_interpreted, \
                f"{label}: {t_compiled:.6f}s !< {t_interpreted:.6f}s"
        else:
            assert speedup >= MIN_SPEEDUP, \
                f"{label}: {speedup:.2f}x < {MIN_SPEEDUP}x"
        rows.append((label, t_interpreted, t_compiled, speedup,
                     len(compiled_rows)))
    _RESULTS["probes"] = {"rows": rows}


def test_e17_scan_probe_runs_fused():
    db = _catalogue()
    _, sql, _ = PROBE_QUERIES[0]
    plan = db.prepare(sql, columnar=False)
    assert plan.compiled_row_emit is not None
    assert "fused" in plan.explain()


def test_e17_compile_cost_is_accounted():
    db = _catalogue()
    for _, sql, params in PROBE_QUERIES:
        # through the statement API, so the mode counters see it
        db.query(sql, params)
    stats = db.observability_stats()
    assert stats["plans_compiled"] >= len(PROBE_QUERIES)
    assert stats["compile_ms_total"] > 0.0
    # the cached default plans may run columnar on the seq-scan probes;
    # either way every select went through a compiled artifact
    assert stats["selects_compiled"] + stats["selects_columnar"] \
        >= len(PROBE_QUERIES)
    _RESULTS["compile"] = {
        "plans_compiled": stats["plans_compiled"],
        "compile_ms_total": stats["compile_ms_total"],
    }


def test_e17_report():
    probes = _RESULTS.get("probes")
    compile_stats = _RESULTS.get("compile")
    if not (probes and compile_stats):
        import pytest

        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E17", "compiled expressions and fused pipelines vs the"
        " interpreted evaluator", "§1 (performance of generated code)",
    )
    for label, t_interp, t_compiled, speedup, n_rows in probes["rows"]:
        report.add(
            label, f"{t_interp * 1e3:.2f} ms interpreted",
            f"{t_compiled * 1e3:.2f} ms compiled",
            note=f"{speedup:.1f}x faster"
                 f" ({BOOKS} books, {n_rows} result rows)",
        )
    report.add(
        "one-time compilation cost",
        "0 ms (interpreter builds nothing)",
        f"{compile_stats['compile_ms_total']:.2f} ms"
        f" for {compile_stats['plans_compiled']} plans",
        note="paid once per plan-cache entry at prepare() time",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "books": BOOKS,
        "min_speedup": MIN_SPEEDUP,
        "probes": {
            label: {
                "interpreted_seconds": t_interp,
                "compiled_seconds": t_compiled,
                "speedup": speedup,
                "rows": n_rows,
            }
            for label, t_interp, t_compiled, speedup, n_rows
            in probes["rows"]
        },
        "compile": {
            "plans_compiled": compile_stats["plans_compiled"],
            "compile_ms_total": compile_stats["compile_ms_total"],
        },
    })
