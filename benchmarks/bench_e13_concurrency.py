"""E13 — the thread-safe runtime under concurrent load.

The paper's architecture (§1, §4) exists to serve "a high number of
users": one servlet container dispatching requests to worker threads
over shared business components, pooled connections, and the two-level
cache.  This experiment drives the reproduction's
:class:`~repro.appserver.ThreadedAppServer` and verifies the two
properties a multithreaded runtime must deliver at once:

* **read-heavy traffic scales with workers** — data-tier round trips
  (simulated by ``Database.io_delay``, which sleeps outside the rdb
  locks exactly like a JDBC driver waiting on the wire) overlap across
  threads, so requests/sec grow with the worker count;
* **write traffic stays linearizable** — concurrent operations never
  lose updates, and the §6 model-driven bean cache never serves a bean
  that an operation already invalidated (each writer re-reads its own
  book through the full request path and must see its own price).

Run fast (CI smoke): ``REPRO_E13_FAST=1 pytest benchmarks/bench_e13_concurrency.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.app import WebApplication
from repro.appserver import ThreadedAppServer
from repro.bench import ExperimentReport, save_report
from repro.caching import UnitBeanCache
from repro.mvc.http import HttpRequest
from repro.workloads.acm import build_acm_application
from repro.workloads.bookstore import build_bookstore_model, seed_bookstore
from repro.workloads.traffic import page_url_pool

FAST = bool(os.environ.get("REPRO_E13_FAST"))

#: simulated data-tier round-trip per SQL statement (sleeps with the GIL
#: released, so worker threads overlap their waits — the mechanism that
#: makes threading pay off for I/O-bound page requests)
IO_DELAY = 0.003
WORKER_STEPS = (1, 4) if FAST else (1, 2, 4, 8)
READ_REQUESTS = 24 if FAST else 96
ACM_READ_REQUESTS = 24 if FAST else 64
WRITERS = 3
WRITES_PER_WRITER = 3 if FAST else 8
READERS = 3
READS_PER_READER = 6 if FAST else 24
#: full-mode acceptance: 4 workers at least double 1-worker throughput;
#: the CI smoke keeps a safety margin against noisy shared runners
SCALING_FLOOR = 1.5 if FAST else 2.0


def _content_renderer(page_result, request, controller) -> str:
    """A view that serializes bean *content*, so consistency checks can
    read the served price straight out of the response body."""
    payload = {
        bean.name: {"current": bean.current, "from_cache": bean.from_cache}
        for bean in page_result.beans.values()
    }
    return json.dumps(payload, default=str)


def _detail_url(app, view_name: str, page_name: str, unit_name: str,
                oid: int) -> str:
    """A page URL carrying the namespaced selection parameter of one
    unit (the same shape the controller's generated links use)."""
    view = app.model.find_site_view(view_name)
    page = view.find_page(page_name)
    unit = next(u for u in page.units if u.name == unit_name)
    return app.page_url(view_name, page_name, {f"{unit.id}.oid": oid})


def _build_bookstore(bean_cache=None, view_renderer=None):
    model = build_bookstore_model()
    if bean_cache is not None:
        # every content unit participates in the §6 bean cache
        for unit in model.all_units():
            if unit.kind != "entry":
                unit.cacheable = True
    app = WebApplication(model, view_renderer=view_renderer,
                         bean_cache=bean_cache)
    oids = seed_bookstore(app)
    app.ctx.stats.reset()
    app.database.stats.reset()
    return app, oids


def _bookstore_read_pool(app, oids) -> list[str]:
    pool = [app.page_url("shop", "Home"),
            app.page_url("shop", "Catalogue")]
    for genre in oids["genres"]:
        pool.append(_detail_url(app, "shop", "Genre Page", "Genre", genre))
    for book in oids["books"]:
        pool.append(_detail_url(app, "shop", "Book Page", "Book", book))
    return pool


def _throughput(app, pool: list[str], workers: int, requests: int) -> dict:
    """Serve ``requests`` URLs (round-robin) and measure requests/sec."""
    urls = [pool[i % len(pool)] for i in range(requests)]
    with ThreadedAppServer(app, workers=workers) as server:
        started = time.perf_counter()
        responses = server.serve(
            [HttpRequest.from_url(url) for url in urls], timeout=60.0
        )
        elapsed = time.perf_counter() - started
        stats = server.stats()
    assert all(r.status == 200 for r in responses)
    assert stats["failures"] == 0
    return {
        "workers": workers,
        "requests": requests,
        "seconds": elapsed,
        "rps": requests / elapsed,
    }


# -- read-heavy scaling ------------------------------------------------------


def test_e13_read_scaling(benchmark):
    app, oids = _build_bookstore()
    app.database.io_delay = IO_DELAY
    pool = _bookstore_read_pool(app, oids)

    acm_app, _acm_oids = build_acm_application(
        volumes=3, issues_per_volume=2, papers_per_issue=3
    )
    acm_app.database.io_delay = IO_DELAY
    acm_pool = page_url_pool(acm_app, "public")

    def simulate():
        bookstore = [_throughput(app, pool, w, READ_REQUESTS)
                     for w in WORKER_STEPS]
        acm = [_throughput(acm_app, acm_pool, w, ACM_READ_REQUESTS)
               for w in (WORKER_STEPS[0], WORKER_STEPS[-1])]
        return bookstore, acm

    bookstore_runs, acm_runs = benchmark.pedantic(
        simulate, rounds=1, iterations=1
    )

    by_workers = {run["workers"]: run["rps"] for run in bookstore_runs}
    four = 4 if 4 in by_workers else WORKER_STEPS[-1]
    speedup = by_workers[four] / by_workers[1]
    acm_speedup = acm_runs[-1]["rps"] / acm_runs[0]["rps"]

    report = ExperimentReport(
        "E13", "concurrent request throughput and consistency",
        "§1/§4 multithreaded runtime",
    )
    for run in bookstore_runs:
        report.add(
            f"bookstore req/s at {run['workers']} worker(s)",
            "grows with workers", round(run["rps"], 1),
            f"{run['requests']} requests",
        )
    report.add(f"bookstore speedup at {four} workers", ">= 2x",
               round(speedup, 2), "I/O waits overlap across threads")
    report.add(f"ACM speedup at {acm_runs[-1]['workers']} workers",
               ">= 2x", round(acm_speedup, 2))
    save_report(report, json_payload={
        "bookstore_runs": bookstore_runs,
        "acm_runs": acm_runs,
        "bookstore_speedup": round(speedup, 3),
        "acm_speedup": round(acm_speedup, 3),
        "scaling_floor": SCALING_FLOOR,
    })

    assert speedup >= SCALING_FLOOR, (
        f"4-worker throughput only {speedup:.2f}x the single-worker run"
    )
    assert acm_speedup >= SCALING_FLOOR


# -- mixed read/write consistency -------------------------------------------


class _Violations:
    """Thread-safe tally of consistency violations, with descriptions."""

    def __init__(self):
        self._lock = threading.Lock()
        self.items: list[str] = []

    def record(self, description: str) -> None:
        with self._lock:
            self.items.append(description)

    def __len__(self) -> int:
        return len(self.items)


def _login(server: ThreadedAppServer, app) -> str:
    request = HttpRequest.from_url(app.operation_url(
        "backoffice", "Login", {"username": "clerk", "password": "books"}
    ))
    server.submit(request).result(30.0)
    assert request.session_id is not None
    return request.session_id


def test_e13_mixed_consistency(benchmark):
    app, oids = _build_bookstore(bean_cache=UnitBeanCache(),
                                 view_renderer=_content_renderer)
    app.database.io_delay = IO_DELAY / 3
    violations = _Violations()
    read_pool = _bookstore_read_pool(app, oids)
    baseline_books = app.database.query(
        "SELECT COUNT(*) AS n FROM book", {}
    ).scalar()

    def writer(server, index: int, book_oid: int, final_price: list):
        """Reprice one book repeatedly; after every write, re-read the
        book through the full request path (bean cache included) and
        demand read-own-write — a stale invalidated bean fails here."""
        session_id = _login(server, app)
        read_url = _detail_url(app, "shop", "Book Page", "Book", book_oid)
        for step in range(WRITES_PER_WRITER):
            price = 100.0 + index * 100 + step
            server.submit(HttpRequest.from_url(
                app.operation_url("backoffice", "Reprice",
                                  {"oid": book_oid, "price": price}),
                session_id=session_id,
            )).result(30.0)
            final_price[index] = price
            response = server.submit(
                HttpRequest.from_url(read_url)
            ).result(30.0)
            served = json.loads(response.body)["Book"]["current"]
            if served is None or float(served["price"]) != price:
                violations.record(
                    f"writer {index}: wrote {price}, read "
                    f"{served and served['price']} (stale bean?)"
                )
        # one create per writer: concurrent inserts must not be lost
        server.submit(HttpRequest.from_url(
            app.operation_url("backoffice", "CreateBook", {
                "title": f"Concurrency in Practice vol. {index}",
                "price": 10.0 + index, "year": 2003,
            }),
            session_id=session_id,
        )).result(30.0)

    def reader(server):
        for step in range(READS_PER_READER):
            response = server.submit(HttpRequest.from_url(
                read_pool[step % len(read_pool)]
            )).result(30.0)
            if response.status != 200:
                violations.record(f"reader got HTTP {response.status}")

    def simulate():
        final_price = [None] * WRITERS
        with ThreadedAppServer(app, workers=4) as server:
            threads = [
                threading.Thread(
                    target=writer,
                    args=(server, i, oids["books"][i], final_price),
                )
                for i in range(WRITERS)
            ] + [
                threading.Thread(target=reader, args=(server,))
                for _ in range(READERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return final_price

    final_price = benchmark.pedantic(simulate, rounds=1, iterations=1)

    # no lost updates: the database holds each writer's last price...
    for index in range(WRITERS):
        stored = app.database.query(
            "SELECT price FROM book WHERE oid = :oid",
            {"oid": oids["books"][index]},
        ).scalar()
        assert stored == final_price[index], (
            f"book {index}: last write {final_price[index]} lost, "
            f"database holds {stored}"
        )
    # ...and every concurrent create landed
    book_count = app.database.query(
        "SELECT COUNT(*) AS n FROM book", {}
    ).scalar()
    assert book_count == baseline_books + WRITERS

    pool_stats = app.ctx.pool.wait_stats()
    cache_stats = app.ctx.bean_cache.stats

    report = ExperimentReport(
        "E13b", "mixed read/write consistency under concurrency",
        "§6 model-driven invalidation",
    )
    report.add("consistency violations", 0, len(violations),
               "read-own-write through the bean cache")
    report.add("lost updates", 0, 0,
               f"{WRITERS} writers x {WRITES_PER_WRITER} reprices")
    report.add("lost inserts", 0, 0, f"{WRITERS} concurrent creates")
    report.add("bean cache hits / misses", "both > 0",
               f"{cache_stats.hits} / {cache_stats.misses}")
    report.add("cache invalidations", "> 0", cache_stats.invalidations)
    report.add("pool waits (count / seconds)", "observed",
               f"{pool_stats['wait_count']} / "
               f"{pool_stats['total_wait_seconds']:.3f}")
    save_report(report, json_payload={
        "consistency_violations": len(violations),
        "writers": WRITERS,
        "readers": READERS,
        "cache": cache_stats.to_dict(),
        "pool_waits": pool_stats,
    })

    assert len(violations) == 0, "; ".join(violations.items[:5])
    assert cache_stats.invalidations > 0, (
        "operations never invalidated the bean cache — the consistency "
        "check would be vacuous"
    )
    assert cache_stats.hits > 0
