"""E3 — §8: presentation managed by three stylesheets.

"For all the 556 pages the look & feel has been produced by only three
XSL style sheets (one for the B2C site views, one for the B2B site
views, and one for the internal content management site views).  Less
than 5% of the HTML code produced by the XSL style has been retouched
manually to improve the rendition."

The benchmark builds exactly three stylesheets (one per site-view
family), applies them to all 556 generated skeletons, and measures rule
coverage: the fraction of generated markup (unit tags and page grids)
that the rules style without manual intervention.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.presentation.renderer import default_stylesheet
from repro.workloads import build_acer_model


@pytest.fixture(scope="module")
def acer_project():
    model = build_acer_model()
    return model, generate_project(model, validate=False)


def _family_of(site_view_name: str) -> str:
    return site_view_name.split("-")[0]  # b2c / b2b / cm


def test_e3_three_stylesheets_cover_all_pages(benchmark, acer_project):
    model, project = acer_project
    stylesheets = {
        "b2c": default_stylesheet("Acer Store"),
        "b2b": default_stylesheet("Acer Channel"),
        "cm": default_stylesheet("Acer Content Desk"),
    }
    page_family = {}
    for view in model.site_views:
        for page in view.all_pages():
            page_family[page.id] = _family_of(view.name)

    def style_everything():
        styled_pages = 0
        total_tags = 0
        styled_tags = 0
        unstyled_grids = 0
        for page_id, skeleton in project.skeletons.items():
            stylesheet = stylesheets[page_family[page_id]]
            coverage = stylesheet.coverage(skeleton)
            stylesheet.apply(skeleton)
            styled_pages += 1
            total_tags += coverage["unit_tags"]
            styled_tags += coverage["styled_unit_tags"]
            if not coverage["page_styled"]:
                unstyled_grids += 1
        return styled_pages, total_tags, styled_tags, unstyled_grids

    styled_pages, total_tags, styled_tags, unstyled_grids = benchmark.pedantic(
        style_everything, rounds=1, iterations=1
    )
    retouch_fraction = 1.0 - (styled_tags / total_tags)

    report = ExperimentReport(
        "E3", "three stylesheets style 556 pages", "§8"
    )
    report.add("XSL stylesheets", 3, len(stylesheets))
    report.add("pages styled", 556, styled_pages)
    report.add("unit tags styled by rules",
               "> 95%", f"{styled_tags / total_tags:.1%}")
    report.add("markup needing manual retouch", "< 5%",
               f"{retouch_fraction:.1%}")
    report.add("page grids left unstyled", 0, unstyled_grids)
    save_report(report, json_payload=report.rows_payload())

    assert styled_pages == 556
    assert retouch_fraction < 0.05
    assert unstyled_grids == 0


def test_e3_styled_templates_parse_and_keep_tags(acer_project, benchmark):
    """The transformation must preserve every dynamic tag (the custom
    tags are what render content at request time)."""
    from repro.xmlkit import parse_xml

    model, project = acer_project
    stylesheet = default_stylesheet("Acer Store")
    sample = list(project.skeletons.items())[:40]

    def check():
        kept = 0
        for page_id, skeleton in sample:
            before = sum(
                1 for e in parse_xml(skeleton).iter()
                if e.tag.startswith("webml:")
            )
            after_doc = parse_xml(stylesheet.apply(skeleton))
            after = sum(
                1 for e in after_doc.iter() if e.tag.startswith("webml:")
            )
            assert before == after
            kept += after
        return kept

    kept = benchmark.pedantic(check, rounds=1, iterations=1)
    assert kept > 0
