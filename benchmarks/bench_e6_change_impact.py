"""E6 — §2/§3/§7: change impact of re-linking the hypertext topology.

Template-based architecture (§2): "the control logic is scattered
through the templates and hard-wired; each template embeds the URLs
pointing to the other templates callable from that page, and thus any
change in the hypertext topology or control logic of operations (e.g.,
to which page redirect the user in case of operation failure) requires
intervention on the code of the template."

Model-driven MVC (§7): "the developer re-links the pages in the WebML
diagram and the code generator re-builds the new configuration file" —
zero manual edits.

Scenario: every content-management operation's failure (KO) must start
redirecting to its site view's home page instead of the triggering page.
We measure, for the full Acer-scale application:

- template-based: how many hard-wired page templates embed one of the
  affected failure URLs (each needs a manual edit),
- MVC: which generated files actually change on regeneration (and that
  no template/skeleton is among them).
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.webml.links import LinkKind
from repro.workloads import build_acer_model


@pytest.fixture(scope="module")
def acer_model():
    return build_acer_model()


def _hardwired_templates(model, project) -> dict[str, str]:
    """What a template-based implementation would ship: each template
    with the target URLs of its links embedded in the source."""
    templates = {}
    for descriptor in project.page_descriptors:
        urls = []
        for target in descriptor.navigation:
            if target.target_kind == "operation":
                operation = project_operation(project, target.target_id)
                urls.append(f"/do/{target.target_id}")
                # ...and the operation's outcome URLs are pasted inline too
                for outcome in (operation.ok, operation.ko):
                    if outcome is not None and outcome.target_page_id:
                        urls.append(f"/page/{outcome.target_page_id}")
            else:
                urls.append(f"/page/{target.target_page_id}")
        body = project.skeletons[descriptor.page_id]
        templates[descriptor.page_id] = body + "\n<!-- links: " + \
            " ".join(urls) + " -->"
    return templates


def project_operation(project, operation_id):
    return next(o for o in project.operation_descriptors
                if o.operation_id == operation_id)


def _relink_ko_targets(model) -> int:
    """Apply the scenario to the model; returns how many links moved."""
    moved = 0
    for view in model.site_views:
        if not view.requires_login:
            continue
        home_id = view.home_page_id
        for operation in view.operations:
            for link in model.links_from(operation):
                if link.kind == LinkKind.KO and link.target != home_id:
                    model.retarget_link(link, home_id)
                    moved += 1
    return moved


def test_e6_change_impact(benchmark, acer_model):
    before = generate_project(acer_model, validate=False)
    before_files = before.as_files()
    hardwired = _hardwired_templates(acer_model, before)

    # the failure pages whose URLs are hard-wired today
    affected_pages = set()
    for operation in before.operation_descriptors:
        if operation.ko is not None and operation.ko.target_page_id:
            affected_pages.add(operation.ko.target_page_id)

    moved = _relink_ko_targets(acer_model)
    after = benchmark.pedantic(
        lambda: generate_project(acer_model, validate=False),
        rounds=1, iterations=1,
    )
    after_files = after.as_files()

    # template-based: every template embedding an affected failure URL
    templates_to_edit = sum(
        1 for page_id, body in hardwired.items()
        if any(f"/page/{page}" in body for page in affected_pages)
    )
    # MVC: what regeneration actually rewrote
    changed = [
        path for path in before_files
        if before_files[path] != after_files.get(path)
    ]
    changed_templates = [p for p in changed if p.startswith("skeletons/")]
    changed_units = [p for p in changed
                     if p.startswith("descriptors/units/")]
    changed_configs = [p for p in changed if p.startswith("conf/")]

    report = ExperimentReport(
        "E6", "re-linking operation failure targets", "§2, §7"
    )
    report.add("KO links re-routed", "n/a", moved,
               note="all CM operations now fail to the view home")
    report.add("template-based: templates to edit by hand",
               "one per linking template", templates_to_edit)
    report.add("MVC: templates changed", 0, len(changed_templates))
    report.add("MVC: unit descriptors changed", 0, len(changed_units))
    report.add("MVC: controller config regenerated", 1, len(changed_configs))
    report.add("MVC: manual edits", 0, 0,
               note="re-link the diagram, regenerate")
    save_report(report, json_payload=report.rows_payload())

    assert moved > 100
    assert templates_to_edit > 100  # the template-based pain is real
    assert changed_templates == []
    assert changed_units == []
    assert changed_configs == ["conf/controller-config.xml"]


def test_e6_reload_without_restart(benchmark, acer_model):
    """The regenerated config hot-swaps into a live controller."""
    from repro.mvc import Controller

    project = generate_project(acer_model, validate=False)
    controller = Controller.from_config(project.controller_config)
    paths_before = set(controller.mappings)

    def reload():
        controller.load_config(project.controller_config)
        return len(controller.mappings)

    count = benchmark.pedantic(reload, rounds=1, iterations=1)
    assert count == len(paths_before)
