"""E4 — §5 / Figure 7: compile-time versus runtime rule application.

"Applying the rules at compile time yields a set of page templates
embodying the final look and feel ... this approach is more efficient,
because no template transformation is required at runtime.
Presentation rules can be applied also at runtime ... more expensive in
terms of execution time ... but more flexible and may be very effective
for multi-device applications."

The benchmark serves the same page through both modes (and through the
device-adaptive runtime variant) and reports the per-request latency.
The expected *shape*: compile-time strictly faster; runtime pays the
transformation on every request; device adaptation costs nothing extra
beyond runtime transformation.
"""

import pytest

from repro.app import Browser, WebApplication
from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.presentation import DeviceRegistry, PresentationRenderer
from repro.presentation.devices import compact_device_stylesheet
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data

_RESULTS: dict[str, float] = {}


def _serving_app(mode: str, device_adaptive: bool = False):
    model = build_acm_model()
    project = generate_project(model)
    if device_adaptive:
        registry = DeviceRegistry()
        registry.register_stylesheet(default_stylesheet("ACM"))
        registry.register_stylesheet(compact_device_stylesheet())
        renderer = PresentationRenderer(
            project.skeletons, mode="runtime", device_registry=registry
        )
    else:
        renderer = PresentationRenderer(
            project.skeletons, default_stylesheet("ACM"), mode=mode
        )
    app = WebApplication(model, view_renderer=renderer)
    seed_acm_data(app, volumes=4, issues_per_volume=3, papers_per_issue=4)
    browser = Browser(app)
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    url = app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 1})
    browser.get(url)  # warm
    return browser, url, renderer


def test_e4_compile_time_serving(benchmark):
    browser, url, renderer = _serving_app("compile-time")
    result = benchmark(lambda: browser.get(url))
    assert result.status == 200
    assert renderer.runtime_transformations == 0
    _RESULTS["compile-time"] = benchmark.stats["median"]


def test_e4_runtime_serving(benchmark):
    browser, url, renderer = _serving_app("runtime")
    result = benchmark(lambda: browser.get(url))
    assert result.status == 200
    assert renderer.runtime_transformations > 0
    _RESULTS["runtime"] = benchmark.stats["median"]


def test_e4_runtime_device_adaptive_serving(benchmark):
    browser, url, renderer = _serving_app("runtime", device_adaptive=True)
    result = benchmark(lambda: browser.get(url))
    assert result.status == 200
    _RESULTS["adaptive"] = benchmark.stats["median"]


def test_e4_report(benchmark):
    """Summarize after the three measurements (runs last in the file)."""
    # keep the benchmark fixture engaged so --benchmark-only collects us
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    compile_time = _RESULTS.get("compile-time")
    runtime = _RESULTS.get("runtime")
    adaptive = _RESULTS.get("adaptive")
    if not (compile_time and runtime and adaptive):
        pytest.skip("component measurements did not run")

    report = ExperimentReport(
        "E4", "compile-time vs runtime rule application", "§5 / Figure 7"
    )
    report.add("compile-time request latency", "baseline (faster)",
               f"{compile_time * 1e3:.2f} ms")
    report.add("runtime request latency", "slower (XSLT per request)",
               f"{runtime * 1e3:.2f} ms",
               note=f"{runtime / compile_time:.2f}x compile-time")
    report.add("device-adaptive runtime latency", "~= runtime",
               f"{adaptive * 1e3:.2f} ms",
               note=f"{adaptive / compile_time:.2f}x compile-time")
    save_report(report, json_payload=report.rows_payload())

    assert runtime > compile_time  # the paper's direction
    # adaptation costs roughly the runtime transformation, not more
    assert adaptive < runtime * 2
