"""E2 — §8: generic services versus the conventional MVC implementation.

"A conventional MVC implementation would require 556 Java classes for
page services and 3068 Java classes for unit services.  Using generic
services and XML descriptors, only one generic page service is required
(accompanied by 556 page descriptors, encoded as XML files) and 11 unit
services ... accompanied by 3068 unit descriptors."

The benchmark runs both generators over the same full-scale model and
reports the artifact populations plus the generated code volume each
architecture leaves to maintain.
"""

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_conventional, generate_project
from repro.er.mapping import map_to_relational
from repro.services import builtin_service_count
from repro.workloads import build_acer_model


@pytest.fixture(scope="module")
def acer_model():
    return build_acer_model()


def test_e2_artifact_population(benchmark, acer_model):
    mapping = map_to_relational(acer_model.data_model)
    conventional = benchmark.pedantic(
        lambda: generate_conventional(acer_model, mapping, validate=False),
        rounds=1, iterations=1,
    )
    project = generate_project(acer_model, validate=False)
    services = builtin_service_count()
    classes = conventional.class_count()
    counts = project.counts()

    generic_code_classes = services["page_services"] + services["unit_services"]
    conventional_code_classes = (
        classes["page_service_classes"] + classes["unit_service_classes"]
    )

    report = ExperimentReport(
        "E2", "service classes to maintain: conventional vs generic", "§8"
    )
    report.add("conventional page-service classes", 556,
               classes["page_service_classes"])
    report.add("conventional unit-service classes", 3068,
               classes["unit_service_classes"])
    report.add("generic page services", 1, services["page_services"])
    report.add("generic unit services", 11, services["paper_basic_services"],
               note=f"+{services['unit_services'] - services['paper_basic_services']}"
                    " extensions (hierarchical, login, logout)")
    report.add("page descriptors (XML)", 556, counts["page_descriptors"])
    report.add("unit descriptors (XML)", 3068, counts["unit_descriptors"])
    report.add("code classes ratio", "3624 : 12",
               f"{conventional_code_classes} : {generic_code_classes}",
               note="~300x fewer classes to maintain")
    report.add("generated service code (lines)", "n/a",
               conventional.total_loc(),
               note="what the conventional code base carries")
    save_report(report, json_payload=report.rows_payload())

    assert classes["page_service_classes"] == 556
    assert classes["unit_service_classes"] == 3068
    assert services["page_services"] == 1
    assert services["paper_basic_services"] == 11
    # the headline factor: conventional needs two orders of magnitude more
    assert conventional_code_classes / generic_code_classes > 100


def test_e2_conventional_sources_compile(benchmark, acer_model):
    """The baseline is real code: every generated class must compile."""
    mapping = map_to_relational(acer_model.data_model)
    conventional = generate_conventional(acer_model, mapping, validate=False)

    def compile_all():
        compiled = 0
        for path, source in conventional.files.items():
            compile(source, path, "exec")
            compiled += 1
        return compiled

    compiled = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    assert compiled == 556 + 3068
