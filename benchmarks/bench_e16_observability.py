"""E16 — observability overhead and the ``/_status`` endpoint.

The tracing/metrics layer (``repro.obs``) instruments every tier of
the request path: the front controller opens a span tree per request,
unit services and cache probes nest inside it, the rdb tier attaches a
span per statement, and the pool/caches/app server publish into one
metrics registry.  Instrumentation that distorts what it measures is
worthless, so this experiment holds the line from the ISSUE: with the
shipped defaults — counters and the slow-query check on *every*
request, span trees plus latency timestamps on every 32nd
(``Observability.trace_every``, with the ``X-Trace`` header forcing
one on demand) — the p50 of the E15 read-heavy workload stays within
**5%** of the same build with observability disabled.  Sampling is
what makes this possible: a full span tree costs a handful of
microseconds, which no accounting trick hides inside a ~25 µs
page-cache hit, but at one trace per thirty-two requests the median
request carries one plain dict increment and nothing else.

Second half: after a short mixed exercise the built-in ``/_status``
page must actually know where the time went — non-zero hit counters
for all three cache levels, recorded pool waits under a deliberately
small pool, and slow-query entries carrying the planner's chosen
access path under a deliberately low threshold.

Run fast (CI smoke): ``REPRO_E16_FAST=1 pytest benchmarks/bench_e16_observability.py``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time

import pytest

from repro.app import Browser, WebApplication
from repro.appserver import ThreadedAppServer
from repro.bench import ExperimentReport, save_report
from repro.caching import FragmentCache, PageCache, UnitBeanCache
from repro.codegen import generate_project
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data
from repro.workloads.traffic import TrafficGenerator

FAST = bool(os.environ.get("REPRO_E16_FAST"))
READ_REQUESTS = 300 if FAST else 600
#: paired-measurement trials; the best (minimum) p50 ratio is asserted,
#: which filters scheduler noise out of a 5% bound
TRIALS = 3 if FAST else 5
#: browser sessions per configuration (the E15 session fan-out)
SESSIONS = 4
#: the acceptance bound: instrumented p50 within 5% of disabled
OVERHEAD_BOUND = 1.05
SEED_SCALE = dict(volumes=10, issues_per_volume=8, papers_per_issue=8)

_RESULTS: dict[str, object] = {}


def _build(pool_size: int = 8):
    """The ACM application in the E15 "scoped" configuration — all
    three cache levels, model-driven invalidation, full presentation."""
    model = build_acm_model()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    stylesheet = default_stylesheet("ACM")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    renderer = PresentationRenderer(
        project.skeletons, stylesheet, fragment_cache=FragmentCache(),
    )
    app = WebApplication(
        model, view_renderer=renderer, bean_cache=UnitBeanCache(),
        page_cache=PageCache(), pool_size=pool_size,
    )
    seed_acm_data(app, **SEED_SCALE)
    app.ctx.stats.reset()
    return app


def _url_pool(app: WebApplication) -> list[str]:
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    paper_data = view.find_page("Paper details").unit("Paper data")
    return [
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 1}),
        app.page_url("public", "Volumes"),
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 2}),
        app.page_url("public", "Paper details", {f"{paper_data.id}.oid": 1}),
        app.page_url("public", "Paper details", {f"{paper_data.id}.oid": 2}),
        app.page_url("public", "Browse papers"),
    ]


def _warm(app: WebApplication, pool: list[str]) -> None:
    browser = Browser(app)
    for url in pool:
        assert browser.get(url).status == 200


# -- overhead ----------------------------------------------------------------


def test_e16_instrumentation_overhead_under_5_percent():
    """Replay the same E15 request sequence through two identically
    warmed builds, *pairing every request*: each zipf-picked URL is
    issued to both builds back to back (order alternating) before the
    next pick, and the per-build latency medians are compared.

    The measurement design matters as much as the bound: the host's
    CPU drifts between frequency regimes several microseconds apart,
    in bursts shorter than one whole traffic pass — so measuring the
    builds in separate passes can hand one of them all the fast
    windows, drowning a sub-microsecond overhead in multi-microsecond
    regime luck.  Pairing at the request level puts the two builds in
    the *same* regime for (almost) every sample; the surviving
    difference between the medians is the instrumentation itself.
    The best of several trials is asserted, squeezing out the
    residual noise of regime switches landing inside a pair.
    """
    apps = {False: _build(), True: _build()}
    apps[False].ctx.obs.disable()
    pools = {flag: _url_pool(app) for flag, app in apps.items()}
    for flag, app in apps.items():
        _warm(app, pools[flag])

    # one shared zipf-popularity URL sequence (by pool index), replayed
    # identically against both builds — the E15 read-heavy mixture
    sequencer = TrafficGenerator(apps[False], pools[False], seed=2016)
    indices = [
        pools[False].index(sequencer.pick_url())
        for _ in range(READ_REQUESTS)
    ]
    sessions = {
        flag: [Browser(app, conditional=True) for _ in range(SESSIONS)]
        for flag, app in apps.items()
    }
    gc.collect()

    perf = time.perf_counter
    measurements = []  # (ratio, base_p50_seconds, instrumented_p50_seconds)
    for _trial in range(TRIALS):
        times: dict[bool, list[float]] = {False: [], True: []}
        for position, index in enumerate(indices):
            first_instrumented = bool(position % 2)
            for flag in (first_instrumented, not first_instrumented):
                browser = sessions[flag][position % SESSIONS]
                url = pools[flag][index]
                started = perf()
                response = browser.get(url)
                times[flag].append(perf() - started)
                assert response.status in (200, 304)
        base = statistics.median(times[False])
        instr = statistics.median(times[True])
        measurements.append((instr / base, base, instr))

    ratio, base, instr = min(measurements)
    _RESULTS["overhead"] = {
        "base_p50_ms": base * 1000.0,
        "instrumented_p50_ms": instr * 1000.0,
        "overhead": ratio - 1.0,
    }
    assert ratio <= OVERHEAD_BOUND, (
        f"instrumented p50 {instr * 1e6:.2f} us exceeds 5% over the "
        f"uninstrumented {base * 1e6:.2f} us (best of "
        f"{[f'{r:.4f}' for r, _, _ in measurements]})"
    )


# -- the /_status endpoint ----------------------------------------------------


def _exercise_for_status(app: WebApplication) -> None:
    """Drive the app so every /_status section has something to show:
    misses then hits on all three cache levels, pool waits under a
    small pool, and slow queries under a lowered threshold."""
    pool = _url_pool(app)
    _warm(app, pool)               # cold pass: every level misses
    app.page_cache.flush()
    _warm(app, pool)               # page misses, bean/fragment HITS
    _warm(app, pool)               # page HITS
    # now force data-tier pressure: flush everything so concurrent
    # requests reach the (2-connection) pool together, with per-
    # statement wire time above the lowered slow threshold
    app.ctx.invalidation_bus.flush()
    app.database.io_delay = 0.002
    app.database.slow_log.threshold_seconds = 0.001
    with ThreadedAppServer(app, workers=4) as server:
        futures = [server.get(url) for url in pool * 2]
        for future in futures:
            assert future.result(30).status in (200, 304)
    app.database.io_delay = 0.0


def test_e16_status_endpoint_reports_every_tier():
    app = _build(pool_size=2)
    _exercise_for_status(app)

    response = app.get("/_status?format=json")
    assert response.status == 200
    doc = json.loads(response.body)
    _RESULTS["status"] = doc

    external = doc["metrics"]["external"]
    for level in ("bean", "fragment", "page"):
        assert external[f"cache.{level}"]["hits"] > 0, level
    assert external["rdb.pool"]["wait_count"] > 0
    assert doc["slow_query_log"]["recorded_total"] > 0
    assert all(entry["access"] for entry in doc["slow_queries"])
    counters = doc["metrics"]["counters"]
    assert counters["http.requests"] > 0
    assert "rdb.statement_seconds" in doc["metrics"]["histograms"]
    assert external["appserver"]["requests_served"] > 0

    # the text rendition serves the same document for humans
    text = app.get("/_status").body
    assert "repro status" in text and "[slow queries]" in text

    # and a client can ask any request for its own trace summary
    traced = app.get(_url_pool(app)[1], headers={"X-Trace": "1"})
    assert traced.headers["X-Trace"].startswith("GET /")


def test_e16_report():
    if "overhead" not in _RESULTS or "status" not in _RESULTS:
        pytest.skip("component measurements did not run")
    overhead = _RESULTS["overhead"]
    doc = _RESULTS["status"]
    external = doc["metrics"]["external"]

    report = ExperimentReport(
        "E16", "observability: tracing/metrics overhead and /_status",
        "§6",
    )
    report.add(
        "read-heavy p50, instrumented vs off",
        "within 5%",
        f"{overhead['instrumented_p50_ms']:.3f} ms vs "
        f"{overhead['base_p50_ms']:.3f} ms "
        f"({overhead['overhead']:+.1%})",
        note=f"best of {TRIALS} request-paired trials, "
             f"{READ_REQUESTS} requests each",
    )
    report.add(
        "/_status cache visibility",
        "hit counters on all three levels",
        ", ".join(
            f"{level}={external[f'cache.{level}']['hits']}"
            for level in ("bean", "fragment", "page")
        ),
    )
    report.add(
        "/_status data-tier visibility",
        "pool waits and slow queries recorded",
        f"{external['rdb.pool']['wait_count']} pool waits, "
        f"{doc['slow_query_log']['recorded_total']} slow queries "
        f"(threshold {doc['slow_query_log']['threshold_ms']} ms)",
        note="slow entries carry the planner's chosen access path",
    )
    save_report(report, json_payload={
        "fast_mode": FAST,
        "overhead": {
            "base_p50_ms": overhead["base_p50_ms"],
            "instrumented_p50_ms": overhead["instrumented_p50_ms"],
            "overhead_fraction": overhead["overhead"],
            "bound_fraction": OVERHEAD_BOUND - 1.0,
        },
        "status": {
            "cache_hits": {
                level: external[f"cache.{level}"]["hits"]
                for level in ("bean", "fragment", "page")
            },
            "pool_waits": external["rdb.pool"]["wait_count"],
            "slow_queries_recorded":
                doc["slow_query_log"]["recorded_total"],
        },
    })
