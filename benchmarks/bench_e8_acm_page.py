"""E8 — Figures 1-2: the ACM Digital Library Volume Page, end to end.

Figure 1 models "a real page taken from the ACM Digital Library Web
site, which displays the details of an ACM TODS volume": a data unit on
Volume, a transport link into a hierarchical index over
Issue[VolumeToIssue] NEST Paper[IssueToPaper], an entry unit for keyword
search, and outgoing links to the paper-details and search-results
pages.

The benchmark renders the page through the full pipeline and verifies
every structural element of Figure 2's screenshot analogue, then times
the request.
"""

import pytest

from repro.app import Browser, WebApplication
from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data


@pytest.fixture(scope="module")
def acm_figure1():
    model = build_acm_model()
    project = generate_project(model)
    renderer = PresentationRenderer(project.skeletons,
                                    default_stylesheet("ACM Digital Library"))
    app = WebApplication(model, view_renderer=renderer)
    oids = seed_acm_data(app, volumes=3, issues_per_volume=4,
                         papers_per_issue=3)
    return app, oids


def test_e8_volume_page_structure(benchmark, acm_figure1):
    app, oids = acm_figure1
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    url = app.page_url("public", "Volume Page",
                       {f"{volume_data.id}.oid": oids["volumes"][0]})
    browser = Browser(app)

    response = benchmark(lambda: browser.get(url))
    body = response.body

    paper_page = view.find_page("Paper details")
    checks = {
        "volume data unit rendered": "unit-data" in body,
        "volume attributes shown": "TODS Volume 27" in body,
        "hierarchical index rendered": "unit-hierarchical" in body,
        "issues at level 0": 'class="hierarchy-level level-0"' in body,
        "papers nested at level 1": 'class="hierarchy-level level-1"' in body,
        "papers link to details page": any(
            f"/{paper_page.id}?" in link for link in browser.links()
        ),
        "keyword entry form rendered": "entry-form" in body,
        "search submits the keyword": "keyword" in body,
    }
    # count the real rows: 4 issues, each with 3 papers
    issue_rows = body.count('class="hierarchy-node"')
    paper_links = body.count("hierarchy-level level-1")

    report = ExperimentReport(
        "E8", "Figure 1's Volume Page reproduced end to end", "§1, Figs 1-2"
    )
    for label, ok in checks.items():
        if isinstance(ok, bool):
            report.add(label, "present", "yes" if ok else "MISSING")
    report.add("issues listed", 4, issue_rows)
    report.add("nested paper lists", 4, paper_links)
    report.add("request latency", "n/a",
               f"{benchmark.stats['mean'] * 1e3:.2f} ms")
    save_report(report, json_payload=report.rows_payload())

    assert all(v for v in checks.values() if isinstance(v, bool))
    assert issue_rows == 4
    assert paper_links == 4


def test_e8_figure1_links_navigate(benchmark, acm_figure1):
    """Following the modelled links reaches the modelled pages."""
    app, oids = acm_figure1
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    url = app.page_url("public", "Volume Page",
                       {f"{volume_data.id}.oid": oids["volumes"][0]})

    def walk():
        browser = Browser(app)
        browser.get(url)
        paper_page = view.find_page("Paper details")
        link = next(l for l in browser.links() if f"/{paper_page.id}?" in l)
        browser.get(link)
        return browser.body

    body = benchmark(walk)
    assert "Paper" in body and "unit-data" in body
