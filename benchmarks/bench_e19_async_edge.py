"""E19: the delivery stack's edge tier — threaded vs event-loop.

The paper's architecture serves "a high number of users" (§1) from a
threaded servlet container; E13 showed compute scales with workers.
This experiment measures what the *connections* cost: a
thread-per-connection edge pins a worker for a connection's whole
keep-alive lifetime — mostly idle — while the async edge owns every
socket on one event loop and spends threads only on work that
computes.  Both edges share the sans-IO :mod:`repro.httpcore` protocol
machine, which the byte-identity phase proves: same requests, same
wire bytes, modulo ``Date``.

Phases:

- **byte identity** — replay a probe set (fresh renders, cache hits,
  gzip, 304 revalidations, redirects, 404s) against both edges and
  diff raw wire bytes;
- **sustained connections** — open many keep-alive connections at
  equal worker counts: the threaded edge serves exactly ``workers`` of
  them, the async edge serves all;
- **TTFB** — cached pages served inline on the loop answer faster
  than a full render computes; a cache-miss *streamed* page gets its
  first bytes out while the unit services still run;
- **slow client** — a trickle-reading client must not move another
  client's p99.

``REPRO_E19_FAST=1`` (CI) shrinks request counts, not the assertions.
"""

from __future__ import annotations

import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.app import WebApplication
from repro.appserver import AsyncAppServer, ThreadedAppServer
from repro.bench import ExperimentReport, save_report
from repro.caching import FragmentCache, PageCache, UnitBeanCache
from repro.codegen import generate_project
from repro.httpcore.client import WireClient
from repro.presentation import PresentationRenderer
from repro.presentation.renderer import default_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data

FAST = bool(os.environ.get("REPRO_E19_FAST"))
#: compute pool size, identical on both edges — the comparison isolates
#: who owns idle connections, not how much computes
WORKERS = 4
#: concurrent keep-alive connections opened against each edge
CONNECTIONS = 24
TTFB_SAMPLES = 15 if FAST else 60
FAST_CLIENT_REQUESTS = 25 if FAST else 100
SEED_SCALE = dict(volumes=4, issues_per_volume=3, papers_per_issue=4)

_RESULTS: dict[str, dict] = {}


def _build() -> WebApplication:
    model = build_acm_model()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)
    renderer = PresentationRenderer(
        project.skeletons, default_stylesheet("ACM"),
        fragment_cache=FragmentCache(),
    )
    app = WebApplication(
        model, view_renderer=renderer, bean_cache=UnitBeanCache(),
        page_cache=PageCache(),
    )
    seed_acm_data(app, **SEED_SCALE)
    app.ctx.stats.reset()
    return app


def _url_pool(app: WebApplication) -> list[str]:
    view = app.model.find_site_view("public")
    volume_data = view.find_page("Volume Page").unit("Volume data")
    paper_data = view.find_page("Paper details").unit("Paper data")
    return [
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 1}),
        app.page_url("public", "Volumes"),
        app.page_url("public", "Volume Page", {f"{volume_data.id}.oid": 2}),
        app.page_url("public", "Paper details", {f"{paper_data.id}.oid": 1}),
        app.page_url("public", "Browse papers"),
    ]


def _strip_date(raw: bytes) -> bytes:
    return b"\r\n".join(
        line for line in raw.split(b"\r\n")
        if not line.startswith(b"Date: ")
    )


# -- byte identity ------------------------------------------------------------


def test_e19_byte_identity():
    """Both edges answer an identical request sequence with identical
    wire bytes (modulo Date).  Streaming is off on the async side: a
    streamed first visit is chunk-framed — same body, different
    framing — so the oracle compares the shared buffered path.
    """
    app_a, app_b = _build(), _build()
    threaded = ThreadedAppServer(app_a, workers=WORKERS)
    edge = AsyncAppServer(app_b, workers=WORKERS, stream=False)
    addr_a, addr_b = threaded.listen(), edge.listen()
    pool = _url_pool(app_a)
    home = f"/{app_a.model.find_site_view('public').id}"

    probes: list[tuple[str, dict]] = []
    for url in pool:
        probes.append((url, {}))                       # fresh render
    for url in pool:
        probes.append((url, {}))                       # page-cache hit
        probes.append((url, {"Accept-Encoding": "gzip"}))
    probes.append((home, {}))                          # home redirect
    probes.append(("/nope/nothing", {}))               # 404

    mismatches = 0
    compared = 0
    try:
        with WireClient(addr_a, cookies=True) as ca, \
                WireClient(addr_b, cookies=True) as cb:
            etags: dict[str, str] = {}
            for target, headers in probes:
                ra = ca.request(target, headers=dict(headers))
                rb = cb.request(target, headers=dict(headers))
                compared += 1
                if _strip_date(ra.raw) != _strip_date(rb.raw):
                    mismatches += 1
                if ra.status == 200 and "ETag" in ra.headers:
                    etags[target] = ra.headers["ETag"]
            for target, etag in etags.items():         # 304 revalidation
                ra = ca.request(target, headers={"If-None-Match": etag})
                rb = cb.request(target, headers={"If-None-Match": etag})
                compared += 1
                assert ra.status == rb.status == 304
                if _strip_date(ra.raw) != _strip_date(rb.raw):
                    mismatches += 1
    finally:
        threaded.stop()
        edge.stop()

    _RESULTS["byte_identity"] = {
        "probes": compared, "mismatches": mismatches,
    }
    assert mismatches == 0, f"{mismatches}/{compared} probe responses differ"


# -- sustained keep-alive connections -----------------------------------------


def _serve_count(address: tuple, url: str, connections: int,
                 window: float) -> int:
    """Open ``connections`` keep-alive sockets, fire one request on
    each, and count how many get a response within ``window``."""
    clients = [WireClient(address, timeout=window).connect()
               for _ in range(connections)]
    try:
        for client in clients:
            client.send_raw(client.build_request(url))

        def try_read(client: WireClient) -> bool:
            try:
                return client.read_response().status == 200
            except Exception:
                return False

        with ThreadPoolExecutor(max_workers=connections) as pool:
            served = sum(pool.map(try_read, clients))
        return served
    finally:
        for client in clients:
            client.close()


def test_e19_sustained_connections():
    """At equal worker counts the async edge sustains every keep-alive
    connection; the threaded edge serves exactly its worker count —
    the rest wait in the backlog behind idle-but-held threads."""
    app_a, app_b = _build(), _build()
    # idle_timeout far above the window: served threaded connections
    # keep holding their slots, which is precisely the architecture
    # under measurement
    threaded = ThreadedAppServer(app_a, workers=WORKERS, idle_timeout=60.0)
    edge = AsyncAppServer(app_b, workers=WORKERS, idle_timeout=60.0)
    addr_a, addr_b = threaded.listen(), edge.listen()
    url_a, url_b = _url_pool(app_a)[0], _url_pool(app_b)[0]
    try:
        with WireClient(addr_a) as warm:
            warm.request(url_a)
        with WireClient(addr_b) as warm:
            warm.request(url_b)
        window = 3.0
        threaded_served = _serve_count(addr_a, url_a, CONNECTIONS, window)
        async_served = _serve_count(addr_b, url_b, CONNECTIONS, window)
    finally:
        threaded.stop()
        edge.stop()

    ratio = async_served / max(threaded_served, 1)
    _RESULTS["sustained_connections"] = {
        "workers": WORKERS,
        "connections": CONNECTIONS,
        "threaded_served": threaded_served,
        "async_served": async_served,
        "ratio": round(ratio, 2),
    }
    assert threaded_served <= WORKERS + 1, (
        "thread-per-connection edge served past its worker count"
    )
    assert async_served == CONNECTIONS
    assert ratio >= 5.0, (
        f"async edge sustained only {ratio:.1f}x the threaded "
        f"connections ({async_served} vs {threaded_served})"
    )


# -- time to first byte -------------------------------------------------------


def _ttfb_once(client: WireClient, url: str,
               headers: dict | None = None) -> float:
    """Seconds from request sent to the response head's first bytes."""
    client.send_raw(client.build_request(url, headers=headers))
    started = time.perf_counter()
    client._fill()
    elapsed = time.perf_counter() - started
    client.read_response()
    return elapsed


def test_e19_ttfb_cached_vs_render():
    """Inline cache hits answer in less than a full render's p50, and
    a cache-miss streamed page still gets its head out faster than the
    buffered render completes (the static prefix leaves while the unit
    services run)."""
    app = _build()
    edge = AsyncAppServer(app, workers=WORKERS)
    address = edge.listen()
    url = _url_pool(app)[0]
    try:
        with WireClient(address, cookies=True) as client:
            client.request(url)  # warm

            cached = []
            for _ in range(TTFB_SAMPLES):
                cached.append(_ttfb_once(client, url))

            render = []
            for _ in range(TTFB_SAMPLES):
                app.page_cache.flush()
                started = time.perf_counter()
                response = client.request(url)
                render.append(time.perf_counter() - started)
                assert response.status == 200

            streamed_ttfb = []
            for _ in range(TTFB_SAMPLES):
                app.page_cache.flush()
                streamed_ttfb.append(_ttfb_once(client, url))
    finally:
        edge.stop()

    cached_p50 = statistics.median(cached)
    render_p50 = statistics.median(render)
    stream_p50 = statistics.median(streamed_ttfb)
    ttfb_stats = edge.metrics.histogram("edge.ttfb_seconds").to_dict()
    _RESULTS["ttfb"] = {
        "cached_p50_ms": round(cached_p50 * 1e3, 3),
        "full_render_p50_ms": round(render_p50 * 1e3, 3),
        "streamed_first_byte_p50_ms": round(stream_p50 * 1e3, 3),
        "edge_histogram": ttfb_stats,
        "streamed_responses": edge.metrics.counter(
            "edge.streamed_responses").value,
    }
    assert cached_p50 < render_p50, (
        f"inline cached TTFB {cached_p50 * 1e3:.2f}ms not below full "
        f"render p50 {render_p50 * 1e3:.2f}ms"
    )
    assert stream_p50 < render_p50, (
        f"streamed first byte {stream_p50 * 1e3:.2f}ms not below full "
        f"render completion {render_p50 * 1e3:.2f}ms"
    )


# -- slow clients -------------------------------------------------------------


def test_e19_slow_client_isolation():
    """A trickle-reading client is its own problem: other clients' p99
    on the async edge stays flat while the trickler drains."""
    app = _build()
    edge = AsyncAppServer(app, workers=WORKERS)
    address = edge.listen()
    url = _url_pool(app)[0]
    try:
        with WireClient(address) as warm:
            warm.request(url)

        trickler = WireClient(address).connect()
        trickler.send_raw(trickler.build_request(url))

        latencies = []
        with WireClient(address) as fast:
            for _ in range(FAST_CLIENT_REQUESTS):
                started = time.perf_counter()
                assert fast.request(url).status == 200
                latencies.append(time.perf_counter() - started)
        trickler.trickle_read(total_timeout=2.0)
        trickler.close()
    finally:
        edge.stop()

    latencies.sort()
    p99 = latencies[int(len(latencies) * 0.99) - 1]
    _RESULTS["slow_client"] = {
        "fast_requests": len(latencies),
        "fast_p50_ms": round(statistics.median(latencies) * 1e3, 3),
        "fast_p99_ms": round(p99 * 1e3, 3),
    }
    assert p99 < 1.0, (
        f"fast clients' p99 {p99 * 1e3:.1f}ms while a trickler drains"
    )


# -- the report ---------------------------------------------------------------


def test_e19_report():
    needed = ("byte_identity", "sustained_connections", "ttfb",
              "slow_client")
    if not all(key in _RESULTS for key in needed):
        pytest.skip("needs the measuring tests in this module run first")

    identity = _RESULTS["byte_identity"]
    sustained = _RESULTS["sustained_connections"]
    ttfb = _RESULTS["ttfb"]
    slow = _RESULTS["slow_client"]

    report = ExperimentReport(
        "E19", "transport-agnostic delivery: threaded vs async edge",
        "§1/§4 high number of users",
    )
    report.add("byte-identical responses", "all probes",
               f"{identity['probes'] - identity['mismatches']}"
               f"/{identity['probes']}",
               "threaded vs async, Date header excluded")
    report.add(
        f"keep-alive connections sustained at {sustained['workers']} "
        "workers",
        f">= 5x threaded",
        f"{sustained['async_served']} vs {sustained['threaded_served']} "
        f"({sustained['ratio']}x)",
        f"{sustained['connections']} concurrent connections",
    )
    report.add("cached-page TTFB vs full render p50",
               "faster inline",
               f"{ttfb['cached_p50_ms']}ms vs "
               f"{ttfb['full_render_p50_ms']}ms",
               "page-cache hit served on the event loop")
    report.add("streamed first byte on a cache miss",
               "before render completes",
               f"{ttfb['streamed_first_byte_p50_ms']}ms vs "
               f"{ttfb['full_render_p50_ms']}ms",
               "static prefix streams while unit services run")
    report.add("fast-client p99 beside a trickle reader",
               "< 1s", f"{slow['fast_p99_ms']}ms",
               f"{slow['fast_requests']} requests on the loop")
    save_report(report, json_payload=dict(_RESULTS))
