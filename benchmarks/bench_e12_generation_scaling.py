"""E12 — §1: "the design and code generation process should scale to
thousands of dynamic page templates and hundreds of thousands database
queries."

A generation-time scaling sweep: the Acer generator is run at 1/4x,
1/2x, 1x and 2x the published scale and the wall time of full project
generation is recorded.  The claim reproduced is the *shape*: generation
cost grows roughly linearly with the artifact count (no quadratic
blow-up), so thousands of templates stay practical.
"""

import time

import pytest

from repro.bench import ExperimentReport, save_report
from repro.codegen import generate_project
from repro.workloads import AcerScale, build_acer_model

SWEEP = [0.25, 0.5, 1.0, 2.0]


def test_e12_generation_scales_linearly(benchmark):
    measurements = []

    def run_sweep():
        results = []
        for factor in SWEEP:
            scale = AcerScale().scaled(factor)
            model = build_acer_model(scale)
            started = time.perf_counter()
            project = generate_project(model, validate=False)
            elapsed = time.perf_counter() - started
            counts = project.counts()
            results.append({
                "factor": factor,
                "pages": counts["page_templates"],
                "units": counts["unit_descriptors"],
                "sql": counts["sql_statements"],
                "seconds": elapsed,
            })
        return results

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E12", "code generation scaling sweep", "§1"
    )
    base = measurements[0]
    for m in measurements:
        per_unit = m["seconds"] / m["units"] * 1e3
        report.add(
            f"{m['factor']}x scale ({m['pages']} pages, {m['units']} units)",
            "grows ~linearly",
            f"{m['seconds']:.2f}s",
            note=f"{per_unit:.2f} ms/unit, {m['sql']} SQL statements",
        )
    largest = measurements[-1]
    growth = (largest["seconds"] / base["seconds"])
    size_growth = largest["units"] / base["units"]
    report.add("time growth vs size growth (2x vs 0.25x)",
               "close to 1:1", f"{growth:.1f}x vs {size_growth:.1f}x")
    save_report(report, json_payload=report.rows_payload())

    # shape: per-unit cost must not explode as the model grows 8x
    base_per_unit = base["seconds"] / base["units"]
    largest_per_unit = largest["seconds"] / largest["units"]
    assert largest_per_unit < base_per_unit * 3
    assert largest["pages"] == 1112
    assert largest["units"] == 6136


def test_e12_descriptor_lookup_stays_flat(benchmark):
    """Serving must not degrade with deployment size: descriptor lookup
    is O(1) whatever the application's scale."""
    from repro.descriptors import DescriptorRegistry

    model = build_acer_model()
    project = generate_project(model, validate=False)
    registry = DescriptorRegistry()
    project.deploy(registry)
    sample_unit = project.unit_descriptors[1234].unit_id

    lookup = benchmark(lambda: registry.unit(sample_unit))
    assert lookup.unit_id == sample_unit
