#!/usr/bin/env python
"""Plan-space scanner CLI.

Builds a demonstration catalogue (or, with ``--rows``, a larger one),
runs :func:`repro.bench.plan_scanner.scan_plan_space` over a small mixed
workload, prints the human-readable table, and (with ``--out``) writes
the machine-readable findings report as JSON — the empirical substrate
for cost-model fixes (see DESIGN.md §16).

Usage::

    PYTHONPATH=src python tools/plan_scanner.py [--rows N] [--rounds N]
        [--out findings.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.plan_scanner import render_report, scan_plan_space  # noqa: E402
from repro.rdb import Database  # noqa: E402


def build_demo_database(rows: int) -> Database:
    """A two-table author/book catalogue with indexes and statistics —
    enough surface for every scanner variant to produce a distinct plan."""
    db = Database("plan-scanner-demo")
    db.execute(
        "CREATE TABLE author (oid INTEGER NOT NULL AUTOINCREMENT,"
        " name VARCHAR(40) NOT NULL, country VARCHAR(20),"
        " PRIMARY KEY (oid))"
    )
    db.execute(
        "CREATE TABLE book (oid INTEGER NOT NULL AUTOINCREMENT,"
        " author_oid INTEGER NOT NULL, year INTEGER, price FLOAT,"
        " title VARCHAR(80), PRIMARY KEY (oid))"
    )
    db.execute("CREATE INDEX ix_book_author ON book (author_oid)")
    db.execute("CREATE INDEX ix_book_year ON book (year)")
    authors = max(10, rows // 40)
    for i in range(authors):
        db.insert_row("author", {
            "name": f"author-{i}", "country": f"c{i % 7}",
        })
    for i in range(rows):
        db.insert_row("book", {
            "author_oid": (i % authors) + 1,
            "year": 1990 + (i % 30),
            "price": float(i % 50) + 0.99,
            "title": f"book-{i}",
        })
    db.analyze()
    return db


WORKLOAD = [
    {
        "name": "point-lookup",
        "sql": ("SELECT title, price FROM book WHERE year = :y"
                " ORDER BY title"),
        "params": {"y": 2001},
    },
    {
        "name": "range-aggregate",
        "sql": ("SELECT year, COUNT(*) AS n, AVG(price) AS avg_price"
                " FROM book WHERE price > :floor GROUP BY year"),
        "params": {"floor": 10.0},
    },
    {
        "name": "join",
        "sql": ("SELECT a.name, b.title FROM book AS b"
                " JOIN author AS a ON b.author_oid = a.oid"
                " WHERE b.year = :y AND a.country = :c ORDER BY b.title"),
        "params": {"y": 2005, "c": "c3"},
    },
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=4000,
                        help="book rows in the demo catalogue")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing passes per variant")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON findings report here")
    args = parser.parse_args(argv)

    db = build_demo_database(args.rows)
    report = scan_plan_space(db, WORKLOAD, rounds=args.rounds)
    print(render_report(report))
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"\nwrote {args.out}")
    return 1 if report["mismatches"] else 0


if __name__ == "__main__":
    sys.exit(main())
