#!/usr/bin/env python
"""Benchmark-trajectory aggregator and regression gate.

Reads every ``benchmarks/reports/BENCH_*.json`` artifact committed by
the experiment suite and prints a one-line-per-experiment trajectory
summary — the cross-PR view of how the reproduction's headline numbers
evolve.  With ``--check`` it applies a *lenient* numeric gate per
experiment (direction-of-effect, not exact magnitudes, so fast-mode CI
artifacts pass while real regressions — a speedup dropping below 1x, a
correctness counter going non-zero — fail loudly) and exits 1 with one
line per violated gate.

Usage::

    python tools/bench_trajectory.py [--reports DIR] [--check]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REPORTS = Path(__file__).resolve().parent.parent / "benchmarks" / "reports"


def _get(payload: dict, path: str):
    """Fetch ``a/b/c`` from nested dicts; None when any step is missing."""
    node = payload
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _each(payload: dict, section: str, key: str):
    """(label, value) for ``section/<label>/key`` across all labels."""
    block = payload.get(section)
    if not isinstance(block, dict):
        return []
    out = []
    for label, entry in sorted(block.items()):
        if isinstance(entry, dict) and key in entry:
            out.append((label, entry[key]))
    return out


class Gate:
    """Collects violations for one experiment's payload."""

    def __init__(self, name: str, payload: dict):
        self.name = name
        self.payload = payload
        self.violations: list[str] = []

    def require(self, ok: bool, message: str) -> None:
        if not ok:
            self.violations.append(f"{self.name}: {message}")

    def ge(self, path: str, floor: float) -> None:
        value = _get(self.payload, path)
        self.require(
            value is not None and value >= floor,
            f"{path} = {value!r}, expected >= {floor}",
        )

    def le(self, path: str, ceiling: float) -> None:
        value = _get(self.payload, path)
        self.require(
            value is not None and value <= ceiling,
            f"{path} = {value!r}, expected <= {ceiling}",
        )

    def eq(self, path: str, expected) -> None:
        value = _get(self.payload, path)
        self.require(
            value == expected, f"{path} = {value!r}, expected {expected!r}"
        )

    def truthy(self, path: str) -> None:
        value = _get(self.payload, path)
        self.require(bool(value), f"{path} = {value!r}, expected true")

    def each_gt(self, section: str, key: str, floor: float) -> None:
        entries = _each(self.payload, section, key)
        self.require(bool(entries), f"{section}/*/{key} missing")
        for label, value in entries:
            self.require(
                value > floor,
                f"{section}/{label}/{key} = {value!r}, expected > {floor}",
            )

    def each_eq(self, section: str, key: str, expected) -> None:
        entries = _each(self.payload, section, key)
        self.require(bool(entries), f"{section}/*/{key} missing")
        for label, value in entries:
            self.require(
                value == expected,
                f"{section}/{label}/{key} = {value!r}, "
                f"expected {expected!r}",
            )


def _gate_e13(g: Gate) -> None:
    floor = _get(g.payload, "scaling_floor") or 1.5
    g.ge("acm_speedup", floor)
    g.ge("bookstore_speedup", floor)


def _gate_e13b(g: Gate) -> None:
    g.eq("consistency_violations", 0)
    g.eq("pool_waits/exhausted_failures", 0)


def _gate_e14(g: Gate) -> None:
    g.each_gt("plans", "speedup", 1.0)
    g.ge("batching/speedup", 1.0)


def _gate_e15(g: Gate) -> None:
    g.each_eq("phases", "staleness_violations", 0)


def _gate_e16(g: Gate) -> None:
    bound = _get(g.payload, "overhead/bound_fraction")
    g.require(bound is not None, "overhead/bound_fraction missing")
    if bound is not None:
        g.le("overhead/overhead_fraction", bound)


def _gate_e17(g: Gate) -> None:
    g.each_gt("probes", "speedup", 1.0)


def _gate_e18(g: Gate) -> None:
    g.eq("oracle/lost_committed_transactions", 0)


def _gate_e19(g: Gate) -> None:
    g.eq("byte_identity/mismatches", 0)
    g.ge("sustained_connections/ratio", 5.0)


def _gate_e20(g: Gate) -> None:
    g.eq("byte_identity/mismatches", 0)
    g.each_gt("probes", "speedup_vs_compiled", 1.0)


def _gate_e21(g: Gate) -> None:
    g.eq("identity/mismatches", 0)
    g.eq("staleness/waited_stale", 0)
    floor = _get(g.payload, "scaling_floor") or 2.0
    g.ge("scaling/ratio", floor)
    g.truthy("failover/converged")
    g.truthy("failover/identical")


def _gate_e22(g: Gate) -> None:
    g.eq("identity/mismatches", 0)
    g.truthy("adaptive/converged")
    g.ge("adaptive/replans", 1)
    g.le("adaptive/replans", 3)
    g.ge("adaptive/speedup", 1.0)
    g.ge("scanner/findings", 1)


GATES = {
    "E13": _gate_e13,
    "E13b": _gate_e13b,
    "E14": _gate_e14,
    "E15": _gate_e15,
    "E16": _gate_e16,
    "E17": _gate_e17,
    "E18": _gate_e18,
    "E19": _gate_e19,
    "E20": _gate_e20,
    "E21": _gate_e21,
    "E22": _gate_e22,
}

#: one headline ``label=path`` per experiment for the trajectory line
HEADLINES = {
    "E13": [("acm", "acm_speedup"), ("bookstore", "bookstore_speedup")],
    "E13b": [("violations", "consistency_violations")],
    "E14": [("batching", "batching/speedup")],
    "E15": [],
    "E16": [("overhead", "overhead/overhead_fraction")],
    "E17": [("plans_compiled", "compile/plans_compiled")],
    "E18": [("lost_tx", "oracle/lost_committed_transactions")],
    "E19": [("mismatches", "byte_identity/mismatches"),
            ("conn_ratio", "sustained_connections/ratio")],
    "E20": [("mismatches", "byte_identity/mismatches")],
    "E21": [("scaling", "scaling/ratio"),
            ("waited_stale", "staleness/waited_stale")],
    "E22": [("replans", "adaptive/replans"),
            ("speedup", "adaptive/speedup"),
            ("findings", "scanner/findings")],
}


def _experiment_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits or 0), name)


def load_reports(reports_dir: Path) -> list[tuple[str, dict]]:
    """(experiment, payload) for every BENCH_*.json, in E-number order."""
    loaded = []
    for path in reports_dir.glob("BENCH_*.json"):
        name = path.stem.removeprefix("BENCH_")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            loaded.append((name, {"_error": str(exc)}))
            continue
        loaded.append((name, payload))
    loaded.sort(key=lambda pair: _experiment_key(pair[0]))
    return loaded


def summarize(name: str, payload: dict) -> str:
    """One trajectory line for an experiment."""
    if "_error" in payload:
        return f"{name:<5} UNREADABLE: {payload['_error']}"
    title = payload.get("title", "")
    bits = []
    for label, path in HEADLINES.get(name, []):
        value = _get(payload, path)
        if value is not None:
            bits.append(f"{label}={value}")
    if name == "E15":
        phases = _each(payload, "phases", "staleness_violations")
        if phases:
            bits.append(
                f"staleness_violations={sum(v for _, v in phases)}"
                f"/{len(phases)} phases"
            )
    if name == "E8":
        rows = payload.get("rows", [])
        measured = sum(1 for r in rows if r.get("measured") == "yes")
        bits.append(f"measured={measured}/{len(rows)}")
    if payload.get("fast_mode"):
        bits.append("fast_mode")
    detail = "  ".join(bits) if bits else "(rows-style payload, no gates)"
    return f"{name:<5} {detail}  — {title}"


def check(loaded: list[tuple[str, dict]]) -> list[str]:
    """All gate violations across the loaded reports."""
    violations = []
    for name, payload in loaded:
        if "_error" in payload:
            violations.append(f"{name}: unreadable ({payload['_error']})")
            continue
        gate_fn = GATES.get(name)
        if gate_fn is None:
            continue
        gate = Gate(name, payload)
        gate_fn(gate)
        violations.extend(gate.violations)
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reports", type=Path, default=DEFAULT_REPORTS,
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("--check", action="store_true",
                        help="apply per-experiment regression gates")
    args = parser.parse_args(argv)

    loaded = load_reports(args.reports)
    if not loaded:
        print(f"no BENCH_*.json reports under {args.reports}",
              file=sys.stderr)
        return 1

    print(f"benchmark trajectory ({len(loaded)} experiments)")
    for name, payload in loaded:
        print("  " + summarize(name, payload))

    if not args.check:
        return 0
    violations = check(loaded)
    if violations:
        print(f"\n{len(violations)} gate violation(s):")
        for line in violations:
            print(f"  FAIL {line}")
        return 1
    gated = sum(1 for name, _ in loaded if name in GATES)
    print(f"\nall gates passed ({gated} gated experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
