#!/usr/bin/env python
"""Documentation lint, run in CI.

Two checks, both cheap and dependency-free:

1. **Module docstrings** — every module under ``src/repro`` must open
   with a docstring (the repo's convention: each module states its
   role and its invariants up top). Parsed with :mod:`ast`, so the
   modules are never imported.
2. **Markdown links** — every *relative* link target in the tracked
   markdown files (``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md``,
   ``docs/*.md``) must exist on disk, so the docs cannot silently rot
   as files move. External (``http``/``https``/``mailto``) links are
   not fetched.

Exit status 0 when clean; 1 with one line per finding otherwise.

Usage: ``python tools/check_docs.py`` (from the repository root, or
anywhere — the root is located relative to this file).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: markdown files whose relative links must resolve
MARKDOWN_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs")

#: inline markdown links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_module_docstrings(source_root: Path) -> list[str]:
    """Relative paths of python modules lacking a module docstring."""
    findings = []
    for path in sorted(source_root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if ast.get_docstring(tree) is None:
            findings.append(str(path.relative_to(REPO_ROOT)))
    return findings


def _markdown_paths() -> list[Path]:
    paths = []
    for name in MARKDOWN_FILES:
        candidate = REPO_ROOT / name
        if candidate.is_dir():
            paths.extend(sorted(candidate.glob("*.md")))
        elif candidate.exists():
            paths.append(candidate)
    return paths


def broken_links(markdown_paths: list[Path]) -> list[str]:
    """``file: target`` lines for relative link targets that don't exist."""
    findings = []
    for doc in markdown_paths:
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            # strip an in-page anchor; the file part must still exist
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (doc.parent / file_part).resolve()
            if not resolved.exists():
                findings.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return findings


def main() -> int:
    problems = []
    for path in missing_module_docstrings(SOURCE_ROOT):
        problems.append(f"{path}: missing module docstring")
    problems.extend(broken_links(_markdown_paths()))
    if problems:
        for line in problems:
            print(line)
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs check: all module docstrings present, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
