#!/usr/bin/env python
"""Documentation lint, run in CI.

Five checks, all cheap and dependency-free:

1. **Module docstrings** — every module under ``src/repro`` must open
   with a docstring (the repo's convention: each module states its
   role and its invariants up top). Parsed with :mod:`ast`, so the
   modules are never imported.
2. **Markdown links** — every *relative* link target in the tracked
   markdown files (``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md``,
   ``docs/*.md``) must exist on disk, so the docs cannot silently rot
   as files move. External (``http``/``https``/``mailto``) links are
   not fetched.
3. **Markdown anchors** — a relative link carrying a ``#fragment``
   (``DESIGN.md#12-the-storage-engine...``, or in-page ``#section``)
   must name a heading that actually exists in the target file, under
   GitHub's slug rules (lowercase, punctuation dropped, spaces to
   hyphens). Renaming a DESIGN.md chapter breaks every stale deep
   link loudly instead of silently.
4. **DESIGN.md chapter numbering** — the ``## N. Title`` chapters
   must run 1, 2, 3, ... with no gaps or duplicates, so a new chapter
   cannot land misnumbered.
5. **Required cross-links** — load-bearing "see also" edges the docs
   promise each other (e.g. ARCHITECTURE.md and OBSERVABILITY.md each
   link docs/REPLICATION.md) must stay present.

Exit status 0 when clean; 1 with one line per finding otherwise.

Usage: ``python tools/check_docs.py`` (from the repository root, or
anywhere — the root is located relative to this file).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

#: markdown files whose relative links must resolve
MARKDOWN_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs")

#: inline markdown links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: markdown headings: leading #'s then the title
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)

#: DESIGN.md numbered chapters: "## 12. Title"
_CHAPTER = re.compile(r"^## (\d+)\.\s", re.MULTILINE)

#: cross-links the documentation set promises itself: (source file,
#: link target that must appear in some [text](target) in it)
REQUIRED_LINKS = (
    ("docs/ARCHITECTURE.md", "REPLICATION.md"),
    ("docs/OBSERVABILITY.md", "REPLICATION.md"),
    ("docs/REPLICATION.md", "OBSERVABILITY.md"),
    ("README.md", "docs/ARCHITECTURE.md"),
    ("README.md", "docs/OBSERVABILITY.md"),
    ("README.md", "docs/REPLICATION.md"),
)


def missing_module_docstrings(source_root: Path) -> list[str]:
    """Relative paths of python modules lacking a module docstring."""
    findings = []
    for path in sorted(source_root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if ast.get_docstring(tree) is None:
            findings.append(str(path.relative_to(REPO_ROOT)))
    return findings


def _markdown_paths() -> list[Path]:
    paths = []
    for name in MARKDOWN_FILES:
        candidate = REPO_ROOT / name
        if candidate.is_dir():
            paths.extend(sorted(candidate.glob("*.md")))
        elif candidate.exists():
            paths.append(candidate)
    return paths


def github_slug(title: str) -> str:
    """GitHub's heading→anchor slug, close enough for our headings.

    Lowercase; markdown emphasis/code markers and punctuation dropped;
    spaces and hyphens collapse to single hyphens.
    """
    text = title.strip().lower()
    text = re.sub(r"[`*_]", "", text)           # inline markup
    text = re.sub(r"[^\w\- ]", "", text)        # punctuation
    text = re.sub(r"[ ]+", "-", text)
    return text


def _heading_slugs(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        body = _strip_code_fences(path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(m.group(2)) for m in _HEADING.finditer(body)}
    return cache[path]


def _strip_code_fences(text: str) -> str:
    """Drop fenced code blocks so ``# comments`` inside them aren't headings."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def broken_links(markdown_paths: list[Path]) -> list[str]:
    """``file: target`` lines for relative links whose file or anchor is dead."""
    findings = []
    slug_cache: dict[Path, set[str]] = {}
    for doc in markdown_paths:
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            resolved = (doc.parent / file_part).resolve() if file_part else doc
            if not resolved.exists():
                findings.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in _heading_slugs(resolved, slug_cache):
                    findings.append(
                        f"{doc.relative_to(REPO_ROOT)}: dead anchor -> {target}"
                    )
    return findings


def design_numbering_gaps(design_path: Path) -> list[str]:
    """Findings when DESIGN.md's ``## N.`` chapters aren't 1..N contiguous."""
    if not design_path.exists():
        return [f"{design_path.name}: missing"]
    numbers = [int(m.group(1)) for m in _CHAPTER.finditer(
        _strip_code_fences(design_path.read_text(encoding="utf-8")))]
    expected = list(range(1, len(numbers) + 1))
    if numbers != expected:
        return [
            f"DESIGN.md: chapter numbers {numbers} are not contiguous 1..{len(numbers)}"
        ]
    return []


def missing_required_links() -> list[str]:
    """Findings for promised cross-links that no longer exist."""
    findings = []
    for source, required in REQUIRED_LINKS:
        path = REPO_ROOT / source
        if not path.exists():
            findings.append(f"{source}: missing (required to link {required})")
            continue
        targets = _LINK.findall(path.read_text(encoding="utf-8"))
        if not any(t.split("#", 1)[0] == required for t in targets):
            findings.append(f"{source}: required link to {required} not found")
    return findings


def main() -> int:
    problems = []
    for path in missing_module_docstrings(SOURCE_ROOT):
        problems.append(f"{path}: missing module docstring")
    problems.extend(broken_links(_markdown_paths()))
    problems.extend(design_numbering_gaps(REPO_ROOT / "DESIGN.md"))
    problems.extend(missing_required_links())
    if problems:
        for line in problems:
            print(line)
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs check: docstrings present, links + anchors resolve, "
          "DESIGN.md chapters contiguous, required cross-links in place")
    return 0


if __name__ == "__main__":
    sys.exit(main())
