"""Quickstart: model, generate, serve, browse — in one file.

Builds the bookstore application from its ER + WebML models, renders it
through the full presentation pipeline, and walks a user journey:
home → genre → book details → keyword search, then a back-office
session that logs in and adds a book.

Run:  python examples/quickstart.py
"""

from repro import Browser, PresentationRenderer, WebApplication, default_stylesheet
from repro.codegen import generate_project
from repro.workloads.bookstore import build_bookstore_model, seed_bookstore


def main() -> None:
    # 1. The models: data (ER) + hypertext (WebML).
    model = build_bookstore_model()
    print(f"model: {model.statistics()}")

    # 2. Generate every artifact and assemble the application.
    project = generate_project(model)
    renderer = PresentationRenderer(
        project.skeletons, default_stylesheet("The Model-Driven Bookstore")
    )
    app = WebApplication(model, view_renderer=renderer)
    oids = seed_bookstore(app)
    print(f"generated: {project.counts()}")

    # 3. A shopper browses.
    shopper = Browser(app)
    shopper.get("/")
    print(f"\nhome page -> {shopper.status}, {len(shopper.links())} links")

    shopper.click(shopper.links()[0])  # first genre
    print(f"genre page shows: {_titles(shopper.body)}")

    book_link = next(l for l in shopper.links() if "oid=" in l)
    shopper.get(book_link)
    print(f"book page rendered: {'unit-data' in shopper.body}")

    # back home via the landmark menu, then search through the real form
    shopper.get("/")
    shopper.submit({"keyword": "Web"})
    print(f"search 'Web' hits: {_titles(shopper.body)}")

    # 4. The back office: protected until login, then operational.
    clerk = Browser(app)
    desk_url = app.page_url("backoffice", "Desk")
    print(f"\ndesk before login -> {clerk.get(desk_url).status} (forbidden)")
    clerk.get(app.operation_url("backoffice", "Login",
                                {"username": "clerk", "password": "books"}))
    print(f"desk after login  -> {clerk.get(desk_url).status}")

    clerk.get(app.operation_url("backoffice", "CreateBook", {
        "title": "WebML in Practice", "price": "42.0", "year": "2003",
    }))
    count = app.database.query("SELECT COUNT(*) AS n FROM book").scalar()
    print(f"books after CreateBook: {count}")

    # 5. What the runtime did.
    print(f"\nruntime stats: {app.ctx.stats}")


def _titles(body: str) -> list[str]:
    """Crude scrape of link texts for the demo printout."""
    import re

    return re.findall(r"<a[^>]*>([^<]{4,60})</a>", body)[:4]


if __name__ == "__main__":
    main()
