"""The §8 case study: the Acer-Euro portal at its published scale.

Generates the full 22-site-view / 556-page / 3068-unit application,
reports the artifact inventory the paper quotes, contrasts it with the
conventional architecture's class population, styles all pages with
three stylesheets, and serves a smaller live instance of the same
generator end to end (public browsing + a content-management session).

Run:  python examples/acer_euro_portal.py
"""

import time

from repro import Browser, WebApplication
from repro.codegen import generate_conventional, generate_project
from repro.presentation.renderer import default_stylesheet
from repro.services import builtin_service_count
from repro.workloads.acer import (
    AcerScale,
    acer_statistics,
    build_acer_model,
    seed_acer_data,
)


def full_scale_inventory() -> None:
    print("=" * 72)
    print("Acer-Euro at published scale (paper §8)")
    print("=" * 72)
    started = time.perf_counter()
    model = build_acer_model()
    model.validate()
    project = generate_project(model, validate=False)
    elapsed = time.perf_counter() - started

    stats = acer_statistics(model)
    counts = project.counts()
    print(f"  site views        : {stats['site_views']}   (paper: 22)")
    print(f"  page templates    : {counts['page_templates']}  (paper: 556)")
    print(f"  units             : {stats['units']} (paper: 3068)")
    print(f"  SQL statements    : {counts['sql_statements']} (paper: >3000)")
    print(f"  model+generation  : {elapsed:.1f}s on this machine")

    conventional = generate_conventional(model, project.mapping,
                                         validate=False)
    classes = conventional.class_count()
    services = builtin_service_count()
    print("\n  conventional MVC would need:")
    print(f"    {classes['page_service_classes']} page-service classes "
          f"+ {classes['unit_service_classes']} unit-service classes "
          f"({conventional.total_loc()} generated lines)")
    print("  the generic architecture ships:")
    print(f"    {services['page_services']} generic page service + "
          f"{services['paper_basic_services']} unit services "
          f"(+{services['unit_services'] - services['paper_basic_services']}"
          " extensions) + XML descriptors")

    stylesheets = {
        "b2c": default_stylesheet("Acer Store"),
        "b2b": default_stylesheet("Acer Channel"),
        "cm": default_stylesheet("Acer Content Desk"),
    }
    styled = 0
    for view in model.site_views:
        family = view.name.split("-")[0]
        for page in view.all_pages():
            stylesheets[family].apply(project.skeletons[page.id])
            styled += 1
    print(f"\n  {styled} pages styled by {len(stylesheets)} stylesheets "
          "(paper: 556 pages, 3 XSL sheets)")


def live_portal() -> None:
    print("\n" + "=" * 72)
    print("A live (scaled-down) instance of the same generator")
    print("=" * 72)
    scale = AcerScale(site_views=4, pages=24, units=124)
    model = build_acer_model(scale)
    app = WebApplication(model)
    seed_acer_data(app, rows_per_entity=8)
    print(f"  scale: {acer_statistics(model)}")

    visitor = Browser(app)
    visitor.get("/")
    print(f"  B2C home -> {visitor.status}")

    cm_view = next(v for v in model.site_views if v.requires_login)
    home_url = f"/{cm_view.id}/{cm_view.home_page_id}"
    print(f"  CM desk before login -> {visitor.get(home_url).status}")

    editor = Browser(app)
    editor.get(app.operation_url(cm_view.name, "Login",
                                 {"username": "editor", "password": "acer"}))
    print(f"  CM desk after login  -> {editor.get(home_url).status}")

    create = next(o for o in cm_view.operations if o.kind == "create")
    table = app.project.mapping.table_for(create.entity)
    before = app.database.row_count(table)
    editor.get(app.operation_url(cm_view.name, create.name,
                                 {"name": "Launched from the example"}))
    print(f"  {create.name}: {before} -> {app.database.row_count(table)} "
          f"rows in {table}")
    print(f"  runtime: {app.ctx.stats}")


if __name__ == "__main__":
    full_scale_inventory()
    live_portal()
