"""The paper's running example: Figures 1-2, the ACM Digital Library.

Reconstructs the "Volume Page" exactly as Figure 1 models it — data
unit, transport link, hierarchical index (Issue[VolumeToIssue] NEST
Paper[IssueToPaper]), keyword entry — generates the application, and
shows the artifacts the paper's architecture produces for it: the unit
descriptor XML (with its SQL), the page descriptor (computation order +
parameter bindings), the controller configuration, and the final
rendered page.  Then it demonstrates the §6 optimization hook by hot
redeploying a hand-tuned descriptor query.

Run:  python examples/acm_digital_library.py
"""

from repro import Browser, PresentationRenderer, WebApplication, default_stylesheet
from repro.codegen import generate_project
from repro.workloads.acm import build_acm_model, seed_acm_data


def main() -> None:
    model = build_acm_model()
    project = generate_project(model)
    renderer = PresentationRenderer(project.skeletons,
                                    default_stylesheet("ACM Digital Library"))
    app = WebApplication(model, view_renderer=renderer)
    oids = seed_acm_data(app, volumes=2, issues_per_volume=2,
                         papers_per_issue=2)

    view = model.find_site_view("public")
    volume_page = view.find_page("Volume Page")
    hierarchy = volume_page.unit("Issues&Papers")
    volume_data = volume_page.unit("Volume data")

    print("=" * 72)
    print("1. The generated unit descriptor for Figure 1's nested index")
    print("=" * 72)
    print(app.registry.units[hierarchy.id].xml)

    print("=" * 72)
    print("2. The page descriptor: topology, order, parameter bindings")
    print("=" * 72)
    print(app.registry.pages[volume_page.id].xml)

    print("=" * 72)
    print("3. The controller configuration (excerpt)")
    print("=" * 72)
    config_lines = project.controller_config.splitlines()
    print("\n".join(config_lines[:14]) + "\n  ...")

    print("=" * 72)
    print("4. The rendered Volume Page (Figure 2's analogue)")
    print("=" * 72)
    browser = Browser(app)
    browser.get(app.page_url("public", "Volume Page",
                             {f"{volume_data.id}.oid": oids['volumes'][0]}))
    print(_strip_css(browser.body)[:1600])
    print("  ...")

    print("=" * 72)
    print("5. §6: hot-redeploying an optimized descriptor query")
    print("=" * 72)
    descriptor = app.registry.unit(hierarchy.id)
    print(f"before: {descriptor.query}")
    tuned = descriptor.to_xml().replace(
        "ORDER BY t0.oid", "ORDER BY t0.number DESC", 1  # root query only
    ).replace("<unitDescriptor ", '<unitDescriptor optimized="true" ', 1)
    app.registry.redeploy_unit(tuned)
    tuned_descriptor = app.registry.unit(hierarchy.id)
    print(f"after:  {tuned_descriptor.query}")
    print(f"descriptor version: {app.registry.unit_version(hierarchy.id)}")
    browser.get(app.page_url("public", "Volume Page",
                             {f"{volume_data.id}.oid": oids['volumes'][0]}))
    print(f"page still serves: {browser.status} "
          "(no restart, issues now newest-first)")

    print("=" * 72)
    print("6. The WebML diagram (Figure 1's notation, as Graphviz DOT)")
    print("=" * 72)
    from repro.webml.diagram import model_to_dot

    dot = model_to_dot(model, site_view_names=["public"])
    print("\n".join(dot.splitlines()[:20]) + "\n  ...")


def _strip_css(body: str) -> str:
    import re

    return re.sub(r"<style.*?</style>", "<style>...</style>", body,
                  flags=re.DOTALL)


if __name__ == "__main__":
    main()
