"""Plug-in units (§7): extending the tool without touching its core.

> "We have added to WebRatio the notion of 'plug-in units', i.e. of new
> components, which can be easily plugged into the design and runtime
> environment, by providing their graphical icon, their unit service and
> rendition tags and the XSL rules for building their descriptors.
> Plug-in units are being used for adding to WebRatio content and
> operation units interacting with Web services and implementing
> workflow functionalities."

This example registers exactly those two §7 plug-ins:

1. ``availabilityUnit`` — a content unit that calls an external *Web
   service* (simulated: a stock-availability endpoint) and publishes its
   response next to database-backed units on the same page;
2. ``advance`` — a *workflow* operation unit that moves an order through
   the states draft → approved → shipped, refusing illegal transitions
   (KO link).

Both plug into the unchanged pipeline: the model builder accepts the new
kinds, the code generator emits their descriptors and skeleton tags, the
generic dispatcher routes to their services, and the template engine
renders their tags.

Run:  python examples/plugin_units.py
"""

from repro import (
    Browser,
    ERModel,
    LinkKind,
    PresentationRenderer,
    WebApplication,
    WebMLModel,
    default_stylesheet,
)
from repro.codegen import generate_project
from repro.descriptors import OperationDescriptor, UnitDescriptor
from repro.presentation.xslt import UnitRule
from repro.services import OperationResult, UnitBean
from repro.services.plugins import PluginUnit, plugin_registry
from repro.xmlkit import Element

# ---------------------------------------------------------------------------
# Plug-in 1: a Web-service content unit
# ---------------------------------------------------------------------------


class StockWebService:
    """The simulated external SOAP endpoint."""

    calls = 0

    @classmethod
    def availability(cls, product_name: str) -> dict:
        cls.calls += 1
        level = (sum(map(ord, product_name)) % 40) + 1  # deterministic
        return {"product": product_name, "in_stock": level,
                "warehouse": "Como" if level > 20 else "Milano"}


class AvailabilityUnitService:
    kind = "availabilityUnit"

    def compute(self, descriptor, inputs, ctx) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        product = inputs.get("product")
        if product:
            bean.current = StockWebService.availability(str(product))
            bean.outputs = dict(bean.current)
        return bean


class AvailabilityTag:
    def render(self, bean, tag, context) -> Element:
        box = Element("div", {"class": "unit unit-availability",
                              "id": bean.unit_id})
        if bean.current is None:
            box.add("p", {"class": "empty"}, text="No availability data")
            return box
        box.add("p", {"class": "ws-result"},
                text=(f"{bean.current['product']}: "
                      f"{bean.current['in_stock']} in stock "
                      f"({bean.current['warehouse']})"))
        return box


def availability_descriptor_builder(unit, mapping) -> UnitDescriptor:
    """§7: the plug-in ships the rules for building its descriptors."""
    return UnitDescriptor(
        unit_id=unit.id, name=unit.name, kind=unit.kind,
        entry_fields=[],  # the service consumes the 'product' input slot
    )


# ---------------------------------------------------------------------------
# Plug-in 2: a workflow operation unit
# ---------------------------------------------------------------------------

WORKFLOW = {"draft": "approved", "approved": "shipped"}


class AdvanceWorkflowService:
    kind = "advance"

    def execute(self, descriptor: OperationDescriptor, inputs, ctx,
                session) -> OperationResult:
        oid = int(inputs["oid"])
        row = ctx.query(
            "SELECT status AS status FROM purchase WHERE oid = :oid",
            {"oid": oid},
        ).first()
        if row is None:
            return OperationResult(descriptor.operation_id, ok=False,
                                   message="no such order")
        next_status = WORKFLOW.get(row["status"])
        if next_status is None:
            return OperationResult(
                descriptor.operation_id, ok=False,
                message=f"cannot advance from {row['status']!r}",
            )
        ctx.execute(
            "UPDATE purchase SET status = :s WHERE oid = :oid",
            {"s": next_status, "oid": oid},
        )
        if ctx.bean_cache is not None:
            ctx.bean_cache.invalidate_writes(entities=["Purchase"])
        return OperationResult(descriptor.operation_id, ok=True,
                               outputs={"oid": oid, "status": next_status})


# ---------------------------------------------------------------------------


def main() -> None:
    plugin_registry.register(PluginUnit(
        kind="availabilityUnit",
        tag_name="webml:availabilityUnit",
        service=AvailabilityUnitService(),
        renderer=AvailabilityTag(),
        presentation_rule=UnitRule(pattern="webml:availabilityUnit",
                                   set_attrs={"class": "ws-box"}),
        descriptor_builder=availability_descriptor_builder,
    ))
    plugin_registry.register(PluginUnit(
        kind="advance",
        tag_name="webml:advanceOp",
        operation_service=AdvanceWorkflowService(),
    ))
    try:
        run_application()
    finally:
        plugin_registry.unregister("availabilityUnit")
        plugin_registry.unregister("advance")


def run_application() -> None:
    data = ERModel(name="orders")
    data.entity("Purchase", [("product", "VARCHAR(80)", True),
                             ("status", "VARCHAR(20)", True)])

    model = WebMLModel(data, name="orders")
    view = model.site_view("desk")
    page = view.page("Orders", home=True)
    orders = page.index_unit("Open orders", "Purchase",
                             display_attributes=["product", "status"])
    order_data = page.data_unit("Order detail", "Purchase",
                                display_attributes=["product", "status"])
    availability = page.plugin_unit("Stock check", "availabilityUnit",
                                    extra_inputs=["product"])
    model.link(orders, order_data, kind=LinkKind.TRANSPORT,
               params=[("oid", "oid")])
    model.link(order_data, availability, kind=LinkKind.TRANSPORT,
               params=[("product", "product")])

    # the workflow operation is declared directly at descriptor level
    # (operation plug-ins extend the runtime; the model keeps built-ins)
    project = generate_project(model, validate=False)
    stylesheet = default_stylesheet("Order Desk")
    stylesheet.unit_rules.append(
        plugin_registry.get("availabilityUnit").presentation_rule
    )
    renderer = PresentationRenderer(project.skeletons, stylesheet)
    app = WebApplication(model, view_renderer=renderer)
    app.seed_entity("Purchase", [
        {"product": "TravelMate 720", "status": "draft"},
        {"product": "Aspire 1700", "status": "approved"},
    ])

    # register the workflow operation descriptor + service
    advance = OperationDescriptor(
        operation_id="wf1", name="AdvanceOrder", kind="advance",
        site_view_id=view.id,
        writes_entities=["Purchase"],
    )
    app.registry.deploy_operation(advance)

    print("1. the plug-in unit renders inside a generated page")
    browser = Browser(app)
    browser.get("/")
    marker = "unit-availability"
    print(f"   skeleton tag resolved by plug-in renderer: "
          f"{marker in browser.body}")
    print(f"   web service calls so far: {StockWebService.calls}")

    print("\n2. the workflow operation advances orders with KO on illegal"
          " transitions")
    from repro.services import GenericOperationService
    from repro.mvc.http import Session

    service = GenericOperationService(app.ctx)
    session = Session("s")
    for oid in (1, 1, 1):
        outcome = service.execute(advance, {"oid": oid}, session)
        status = app.ctx.database.query(
            "SELECT status AS s FROM purchase WHERE oid = 1").scalar()
        print(f"   advance(order 1) -> ok={outcome.ok} "
              f"({outcome.message or 'now ' + status})")


if __name__ == "__main__":
    main()
