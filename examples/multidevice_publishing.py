"""Multi-device publishing (§5) and the two-level cache (§6), live.

One application, one set of template skeletons — served three ways:

1. compile-time styled templates for desktop browsers (fast path),
2. runtime rule application with device adaptation: a WAP phone gets the
   compact stylesheet picked from its User-Agent,
3. the two-level cache in front of the same pages, showing which level
   spares what (fragment hits vs spared queries) and the automatic
   invalidation when a content operation writes.

Run:  python examples/multidevice_publishing.py
"""

from repro import (
    Browser,
    DeviceRegistry,
    FragmentCache,
    PresentationRenderer,
    UnitBeanCache,
    WebApplication,
    default_stylesheet,
)
from repro.codegen import generate_project
from repro.presentation.devices import compact_device_stylesheet
from repro.workloads.acm import build_acm_model, seed_acm_data


def device_adaptation() -> None:
    print("=" * 72)
    print("1. Device adaptation: same skeletons, per-device rules (§5)")
    print("=" * 72)
    model = build_acm_model()
    project = generate_project(model)

    registry = DeviceRegistry()
    registry.register_stylesheet(default_stylesheet("ACM Digital Library"))
    registry.register_stylesheet(compact_device_stylesheet())
    renderer = PresentationRenderer(project.skeletons, mode="runtime",
                                    device_registry=registry)
    app = WebApplication(model, view_renderer=renderer)
    seed_acm_data(app)

    desktop = Browser(app, user_agent="Mozilla/5.0 (X11; Linux)")
    desktop.get("/")
    phone = Browser(app, user_agent="Nokia7110/1.0 WAP-Browser")
    phone.get("/")

    table_markup = '<table class="index-rows">'
    list_markup = '<ul class="index-rows">'
    print(f"  desktop rendition uses a table : {table_markup in desktop.body}")
    print(f"  WAP rendition uses a list      : {list_markup in phone.body}")
    print(f"  runtime transformations so far : "
          f"{renderer.runtime_transformations}")


def two_level_cache() -> None:
    print("\n" + "=" * 72)
    print("2. The two-level cache (§6)")
    print("=" * 72)
    model = build_acm_model()
    for unit in model.all_units():
        if unit.kind != "entry":
            unit.cacheable = True
    project = generate_project(model)

    stylesheet = default_stylesheet("ACM Digital Library")
    for rule in stylesheet.unit_rules:
        rule.set_attrs["fragment"] = "cache"
    fragment_cache = FragmentCache()
    bean_cache = UnitBeanCache()
    renderer = PresentationRenderer(project.skeletons, stylesheet,
                                    fragment_cache=fragment_cache)
    app = WebApplication(model, view_renderer=renderer,
                         bean_cache=bean_cache)
    seed_acm_data(app)
    app.ctx.stats.reset()

    browser = Browser(app)
    papers_url = app.page_url("public", "Browse papers")
    for _ in range(5):
        browser.get(papers_url)
    print(f"  5 identical requests executed "
          f"{app.ctx.stats.queries_executed} data queries "
          f"(bean hits: {bean_cache.stats.hits}, "
          f"fragment hits: {fragment_cache.stats.hits})")

    # a write through the operations layer invalidates precisely
    editor = Browser(app)
    editor.get(app.operation_url("admin", "Login",
                                 {"username": "admin", "password": "secret"}))
    editor.get(app.operation_url("admin", "CreatePaper",
                                 {"title": "Fresh Result", "pages": "9"}))
    print(f"  CreatePaper invalidated {bean_cache.stats.invalidations} "
          "dependent bean(s) automatically")

    before = app.ctx.stats.queries_executed
    response = browser.get(papers_url)
    print(f"  next request recomputed with "
          f"{app.ctx.stats.queries_executed - before} quer(ies) and shows "
          f"the new paper: {'Fresh Result' in response.body} — "
          "no stale content, no manual cache code")


if __name__ == "__main__":
    device_adaptation()
    two_level_cache()
