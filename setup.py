"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP-517 editable
installs (which build a wheel) fail; this shim enables the legacy
``pip install -e . --no-use-pep517 --no-build-isolation`` path.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
