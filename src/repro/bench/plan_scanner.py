"""Plan-space scanner: measure where the cost model lies.

For each workload query, the scanner prepares the statement repeatedly
with individual planner decisions switched off (join reordering, access
paths, predicate pushdown via :class:`~repro.rdb.planner.PlannerFeatures`)
and with each execution mode pinned (seed, interpreted, compiled rows,
columnar).  Every variant is executed for wall time and compared to the
default plan on two axes:

- **cost ratio** — variant root ``est_cost`` over the default plan's:
  what the cost model *predicts* the variant is worth;
- **wall ratio** — measured execution time over the default plan's:
  what the variant is *actually* worth.

Where the two disagree, the scanner emits a machine-readable *finding*:

- ``mode-blind`` — the model prices the variants identically (cost
  ratio ~1) but wall time diverges materially.  Execution-mode choices
  (compiled vs interpreted rows) are invisible to a row-count cost
  model by construction, so this finding is expected wherever mode
  dominates — it quantifies how much the model cannot see.
- ``inversion`` — the model predicts one ordering and the stopwatch
  measures the opposite (predicted worse but ran faster, or predicted
  better but ran slower).  These are the direct targets for future
  cost-model fixes.

Results never vary across variants (every variant re-checks its
predicates); the scanner asserts that identity on every run and counts
violations in the report, so a correctness bug cannot masquerade as a
perf finding.
"""

from __future__ import annotations

import time

from repro.rdb.planner import PlannerFeatures

#: |cost_ratio - 1| below this counts as "the model sees no difference"
COST_PARITY_BAND = 0.05
#: wall ratio beyond these bounds counts as a material divergence
WALL_SLOWER = 1.25
WALL_FASTER = 0.8
#: cost ratio beyond these bounds counts as a predicted difference
COST_WORSE = 1.2
COST_BETTER = 0.8


def _variant_plans(db, sql: str):
    """(label, plan) pairs for every probed planner/executor variant.
    The ``default`` variant is the plan the database actually runs (the
    cached one, corrections and all); the others are uncached probes."""
    return [
        ("default", db.prepare(sql)),
        ("seed", db.prepare(sql, optimize=False)),
        ("interpreted", db.prepare(sql, compiled=False)),
        ("row-mode", db.prepare(sql, columnar=False)),
        ("columnar", db.prepare(sql, columnar=True)),
        ("no-join-reorder",
         db.prepare(sql, features=PlannerFeatures(join_reorder=False))),
        ("no-access-paths",
         db.prepare(sql, features=PlannerFeatures(access_paths=False))),
        ("no-pushdown",
         db.prepare(sql, features=PlannerFeatures(pushdown=False))),
    ]


def _time_plan(plan, params_list, rounds: int) -> float:
    """Mean seconds per execution across ``rounds`` passes over the
    parameter sets (one warmup pass first)."""
    for params in params_list:
        plan.execute(params)
    started = time.perf_counter()
    for _ in range(rounds):
        for params in params_list:
            plan.execute(params)
    return (time.perf_counter() - started) / (rounds * len(params_list))


def _result_signature(plan, params_list) -> tuple:
    """An order-insensitive fingerprint of the variant's results (the
    workload may omit ORDER BY; row order is then not part of the
    contract between variants)."""
    signature = []
    for params in params_list:
        tuples = plan.execute(params).as_tuples()
        signature.append(tuple(sorted(repr(t) for t in tuples)))
    return tuple(signature)


def scan_query(db, name: str, sql: str, params_list, rounds: int = 3) -> dict:
    """Scan one query's plan space; returns the per-variant table plus
    any findings."""
    variants = _variant_plans(db, sql)
    default_plan = variants[0][1]
    baseline_sig = _result_signature(default_plan, params_list)
    baseline_cost = default_plan.root.est_cost
    baseline_wall = _time_plan(default_plan, params_list, rounds)

    rows = []
    findings = []
    mismatches = 0
    for label, plan in variants:
        if label == "default":
            rows.append({
                "variant": label, "exec_mode": plan.exec_mode,
                "access": plan.access_summary(),
                "cost_ratio": 1.0, "wall_ratio": 1.0,
                "wall_ms": round(baseline_wall * 1000.0, 4),
                "identical": True,
            })
            continue
        identical = _result_signature(plan, params_list) == baseline_sig
        if not identical:
            mismatches += 1
        wall = _time_plan(plan, params_list, rounds)
        wall_ratio = wall / baseline_wall if baseline_wall > 0 else 1.0
        cost = plan.root.est_cost
        cost_ratio = (
            cost / baseline_cost
            if cost is not None and baseline_cost else None
        )
        rows.append({
            "variant": label, "exec_mode": plan.exec_mode,
            "access": plan.access_summary(),
            "cost_ratio": (
                round(cost_ratio, 3) if cost_ratio is not None else None
            ),
            "wall_ratio": round(wall_ratio, 3),
            "wall_ms": round(wall * 1000.0, 4),
            "identical": identical,
        })
        finding = _classify(name, label, cost_ratio, wall_ratio)
        if finding is not None:
            findings.append(finding)
    return {
        "query": name, "sql": sql,
        "baseline_ms": round(baseline_wall * 1000.0, 4),
        "baseline_cost": baseline_cost,
        "variants": rows,
        "findings": findings,
        "mismatches": mismatches,
    }


def _classify(query: str, variant: str, cost_ratio, wall_ratio) -> dict | None:
    """One finding when prediction and measurement disagree, else None."""
    if cost_ratio is None:
        return None  # seed plans carry no estimates — nothing to test
    base = {
        "query": query, "variant": variant,
        "cost_ratio": round(cost_ratio, 3),
        "wall_ratio": round(wall_ratio, 3),
    }
    if abs(cost_ratio - 1.0) <= COST_PARITY_BAND:
        if wall_ratio >= WALL_SLOWER or wall_ratio <= WALL_FASTER:
            return {
                **base, "kind": "mode-blind",
                "detail": (
                    "cost model prices both plans the same; wall time "
                    f"diverges {wall_ratio:.2f}x"
                ),
            }
        return None
    if cost_ratio >= COST_WORSE and wall_ratio <= WALL_FASTER:
        return {
            **base, "kind": "inversion",
            "detail": (
                f"predicted {cost_ratio:.2f}x worse but ran "
                f"{1 / wall_ratio:.2f}x faster"
            ),
        }
    if cost_ratio <= COST_BETTER and wall_ratio >= WALL_SLOWER:
        return {
            **base, "kind": "inversion",
            "detail": (
                f"predicted {1 / cost_ratio:.2f}x better but ran "
                f"{wall_ratio:.2f}x slower"
            ),
        }
    return None


def scan_plan_space(db, workload, rounds: int = 3) -> dict:
    """Scan every workload entry; ``workload`` is a list of
    ``{"name", "sql", "params"}`` dicts (``params`` a dict or a list of
    dicts).  Returns the machine-readable report consumed by
    ``tools/plan_scanner.py`` and the E22 benchmark."""
    queries = []
    findings = []
    mismatches = 0
    for entry in workload:
        params = entry.get("params") or {}
        params_list = params if isinstance(params, list) else [params]
        scanned = scan_query(
            db, entry["name"], entry["sql"], params_list, rounds=rounds
        )
        queries.append(scanned)
        findings.extend(scanned["findings"])
        mismatches += scanned["mismatches"]
    return {
        "queries": queries,
        "findings": findings,
        "finding_count": len(findings),
        "mismatches": mismatches,
    }


def render_report(report: dict) -> str:
    """A human-readable rendition of :func:`scan_plan_space` output."""
    lines = []
    for scanned in report["queries"]:
        lines.append(f"query: {scanned['query']}")
        lines.append(f"  sql: {scanned['sql']}")
        lines.append(
            f"  baseline: {scanned['baseline_ms']:.3f} ms"
            f"  cost~{scanned['baseline_cost']:.1f}"
        )
        header = (
            f"  {'variant':<16} {'exec':<12} {'cost×':>7} {'wall×':>7}"
            f" {'ms':>9}  access"
        )
        lines.append(header)
        for row in scanned["variants"]:
            cost = (
                f"{row['cost_ratio']:.2f}" if row["cost_ratio"] is not None
                else "-"
            )
            flag = "" if row["identical"] else "  MISMATCH"
            lines.append(
                f"  {row['variant']:<16} {row['exec_mode']:<12} {cost:>7}"
                f" {row['wall_ratio']:>7.2f} {row['wall_ms']:>9.3f}"
                f"  {row['access']}{flag}"
            )
        lines.append("")
    lines.append(f"findings: {report['finding_count']}"
                 f"  result mismatches: {report['mismatches']}")
    for finding in report["findings"]:
        lines.append(
            f"  [{finding['kind']}] {finding['query']}/{finding['variant']}:"
            f" {finding['detail']}"
        )
    return "\n".join(lines)
