"""Experiment harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import ExperimentReport, report_path, save_report

__all__ = ["ExperimentReport", "save_report", "report_path"]
