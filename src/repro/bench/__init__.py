"""Experiment harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    ExperimentReport,
    json_path,
    report_path,
    save_json,
    save_report,
)

__all__ = [
    "ExperimentReport",
    "save_report",
    "save_json",
    "report_path",
    "json_path",
]
