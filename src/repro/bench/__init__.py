"""Experiment harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    ExperimentReport,
    json_path,
    report_path,
    save_json,
    save_report,
)
from repro.bench.plan_scanner import render_report, scan_plan_space

__all__ = [
    "ExperimentReport",
    "save_report",
    "save_json",
    "report_path",
    "json_path",
    "scan_plan_space",
    "render_report",
]
