"""Experiment reporting.

Every benchmark builds an :class:`ExperimentReport` with one row per
figure/number the paper states, alongside the value measured by the
reproduction.  Reports are printed (visible with ``pytest -s``) and
written to ``benchmarks/reports/<experiment>.txt`` so EXPERIMENTS.md
can quote real runs.

Benchmarks that want machine-readable output pass ``json_payload`` to
:func:`save_report` (or call :func:`save_json` directly): the payload is
written next to the text report as ``BENCH_<experiment>.json``, so CI
steps and tooling can assert on measured numbers without scraping the
rendered table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field


@dataclass
class _Row:
    metric: str
    paper: str
    measured: str
    note: str = ""


@dataclass
class ExperimentReport:
    """A paper-vs-measured comparison table."""

    experiment_id: str
    title: str
    paper_source: str  # e.g. "§8" or "Figure 7"
    rows: list[_Row] = field(default_factory=list)

    def add(self, metric: str, paper, measured, note: str = "") -> None:
        self.rows.append(_Row(metric, _fmt(paper), _fmt(measured), note))

    def rows_payload(self) -> dict:
        """The table as a JSON-ready payload, for ``save_report``.

        Text-only experiments (no bespoke measured dict) pass this as
        ``json_payload`` so every ``BENCH_<id>.json`` exists and carries
        at least the rendered rows; values are the formatted strings the
        table prints, which is what EXPERIMENTS.md quotes anyway.
        """
        return {
            "paper_source": self.paper_source,
            "rows": [
                {"metric": r.metric, "paper": r.paper,
                 "measured": r.measured, "note": r.note}
                for r in self.rows
            ],
        }

    def render(self) -> str:
        headers = ("metric", "paper", "measured", "note")
        table = [headers] + [
            (r.metric, r.paper, r.measured, r.note) for r in self.rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(4)]
        lines = [
            f"{self.experiment_id}: {self.title}   [{self.paper_source}]",
            "-" * (sum(widths) + 9),
        ]
        for position, row in enumerate(table):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)).rstrip())
            if position == 0:
                lines.append("-" * (sum(widths) + 9))
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def report_path(experiment_id: str) -> str:
    base = os.environ.get("REPRO_REPORT_DIR",
                          os.path.join("benchmarks", "reports"))
    os.makedirs(base, exist_ok=True)
    return os.path.join(base, f"{experiment_id}.txt")


def json_path(experiment_id: str) -> str:
    base = os.environ.get("REPRO_REPORT_DIR",
                          os.path.join("benchmarks", "reports"))
    os.makedirs(base, exist_ok=True)
    return os.path.join(base, f"BENCH_{experiment_id}.json")


def save_json(experiment_id: str, payload: dict) -> str:
    """Write an experiment's machine-readable results; returns the path."""
    path = json_path(experiment_id)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def save_report(report: ExperimentReport, echo: bool = True,
                json_payload: dict | None = None) -> str:
    """Write the report file; returns the rendered text.

    ``json_payload``, when given, also lands in ``BENCH_<id>.json``
    (augmented with the experiment id and title for self-description).
    """
    text = report.render()
    with open(report_path(report.experiment_id), "w") as handle:
        handle.write(text)
    if json_payload is not None:
        payload = {
            "experiment": report.experiment_id,
            "title": report.title,
            **json_payload,
        }
        save_json(report.experiment_id, payload)
    if echo:
        print("\n" + text)
    return text
