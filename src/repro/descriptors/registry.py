"""The deployed descriptor store.

At deployment, generated descriptors are written here as XML documents
(the in-memory equivalent of WebRatio's descriptor files).  The registry
supports the two §6 optimization hooks:

- *query override*: ``redeploy_unit``/``redeploy_operation`` replace a
  descriptor at runtime, bumping its version — "deploying the optimized
  version without interrupting the service" (§8);
- *optimized flag*: when the code generator re-runs, ``deploy_unit``
  keeps a deployed descriptor marked ``optimized`` instead of
  overwriting it with the regenerated default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors.operation_descriptor import OperationDescriptor
from repro.descriptors.page_descriptor import PageDescriptor
from repro.descriptors.unit_descriptor import UnitDescriptor
from repro.errors import DescriptorError


@dataclass
class _Deployed:
    xml: str
    version: int = 1
    parsed: object = None


@dataclass
class DescriptorRegistry:
    units: dict[str, _Deployed] = field(default_factory=dict)
    pages: dict[str, _Deployed] = field(default_factory=dict)
    operations: dict[str, _Deployed] = field(default_factory=dict)

    # -- deployment -----------------------------------------------------------

    def deploy_unit(self, descriptor: UnitDescriptor) -> bool:
        """Deploy a generated unit descriptor.

        Returns False (and keeps the deployed version) when the deployed
        descriptor is marked optimized and the incoming one is not.
        """
        existing = self.units.get(descriptor.unit_id)
        if existing is not None:
            deployed: UnitDescriptor = existing.parsed
            if deployed.optimized and not descriptor.optimized:
                return False
        self._store(self.units, descriptor.unit_id, descriptor.to_xml(), descriptor)
        return True

    def deploy_page(self, descriptor: PageDescriptor) -> None:
        self._store(self.pages, descriptor.page_id, descriptor.to_xml(), descriptor)

    def deploy_operation(self, descriptor: OperationDescriptor) -> bool:
        existing = self.operations.get(descriptor.operation_id)
        if existing is not None:
            deployed: OperationDescriptor = existing.parsed
            if deployed.optimized and not descriptor.optimized:
                return False
        self._store(
            self.operations, descriptor.operation_id, descriptor.to_xml(), descriptor
        )
        return True

    def _store(self, table: dict, key: str, xml: str, parsed) -> None:
        version = table[key].version + 1 if key in table else 1
        table[key] = _Deployed(xml=xml, version=version, parsed=parsed)

    # -- hot redeploy (XML in, as a human editor would produce) ---------------

    def redeploy_unit(self, xml: str) -> UnitDescriptor:
        descriptor = UnitDescriptor.from_xml(xml)
        self._store(self.units, descriptor.unit_id, xml, descriptor)
        return descriptor

    def redeploy_operation(self, xml: str) -> OperationDescriptor:
        descriptor = OperationDescriptor.from_xml(xml)
        self._store(self.operations, descriptor.operation_id, xml, descriptor)
        return descriptor

    # -- lookup ------------------------------------------------------------------

    def unit(self, unit_id: str) -> UnitDescriptor:
        try:
            return self.units[unit_id].parsed
        except KeyError:
            raise DescriptorError(f"no unit descriptor deployed for {unit_id!r}") \
                from None

    def page(self, page_id: str) -> PageDescriptor:
        try:
            return self.pages[page_id].parsed
        except KeyError:
            raise DescriptorError(f"no page descriptor deployed for {page_id!r}") \
                from None

    def operation(self, operation_id: str) -> OperationDescriptor:
        try:
            return self.operations[operation_id].parsed
        except KeyError:
            raise DescriptorError(
                f"no operation descriptor deployed for {operation_id!r}"
            ) from None

    def unit_version(self, unit_id: str) -> int:
        return self.units[unit_id].version if unit_id in self.units else 0

    # -- file view (what would sit on disk) -----------------------------------------

    def as_files(self) -> dict[str, str]:
        files: dict[str, str] = {}
        for unit_id, deployed in self.units.items():
            files[f"descriptors/units/{unit_id}.xml"] = deployed.xml
        for page_id, deployed in self.pages.items():
            files[f"descriptors/pages/{page_id}.xml"] = deployed.xml
        for operation_id, deployed in self.operations.items():
            files[f"descriptors/operations/{operation_id}.xml"] = deployed.xml
        return files

    def counts(self) -> dict[str, int]:
        return {
            "unit_descriptors": len(self.units),
            "page_descriptors": len(self.pages),
            "operation_descriptors": len(self.operations),
        }
