"""Operation descriptors.

Operations map to "an operation service in the business layer, and an
action mapping in the Controller's configuration file, which dictates
the flow of control after the operation is executed" (§3).  The
descriptor carries both halves: the DML statements the generic operation
service runs, and the OK/KO targets with their parameter forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.xmlkit import Element, parse_xml, pretty_print


@dataclass
class StatementSpec:
    """One DML statement: the SQL plus slot→parameter bindings.

    ``params`` entries are ``(slot, sql_param, value_type)``;
    ``value_type`` (``int``/``auto``...) drives request-string coercion.
    ``captures_new_oid`` marks the INSERT whose auto-increment key
    becomes the operation's ``oid`` output.
    """

    sql: str
    params: list[tuple[str, str, str]] = field(default_factory=list)
    captures_new_oid: bool = False

    def __post_init__(self) -> None:
        # Accept legacy 2-tuples for convenience; default the type.
        self.params = [
            (p[0], p[1], p[2] if len(p) > 2 else "auto") for p in self.params
        ]


@dataclass
class OutcomeTarget:
    """Where an OK or KO link leads, and which outputs it forwards."""

    target_kind: str  # "page" | "operation"
    target_id: str
    target_page_id: str | None = None
    parameters: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class OperationDescriptor:
    operation_id: str
    name: str
    kind: str
    site_view_id: str | None = None
    entity: str | None = None
    role: str | None = None
    statements: list[StatementSpec] = field(default_factory=list)
    ok: OutcomeTarget | None = None
    ko: OutcomeTarget | None = None
    writes_entities: list[str] = field(default_factory=list)
    writes_roles: list[str] = field(default_factory=list)
    # login specifics
    user_query: str | None = None
    optimized: bool = False
    custom_service: str | None = None

    # -- XML -----------------------------------------------------------------

    def to_xml(self) -> str:
        root = Element(
            "operationDescriptor",
            {"id": self.operation_id, "name": self.name, "kind": self.kind},
        )
        if self.site_view_id:
            root.set("siteview", self.site_view_id)
        if self.entity:
            root.set("entity", self.entity)
        if self.role:
            root.set("role", self.role)
        if self.optimized:
            root.set("optimized", "true")
        if self.custom_service:
            root.set("customService", self.custom_service)
        for statement in self.statements:
            statement_el = root.add("statement")
            if statement.captures_new_oid:
                statement_el.set("capturesNewOid", "true")
            statement_el.add("sql", text=statement.sql)
            for slot, sql_param, value_type in statement.params:
                statement_el.add(
                    "param",
                    {"slot": slot, "sqlParam": sql_param, "type": value_type},
                )
        if self.user_query:
            root.add("userQuery", text=self.user_query)
        for label, outcome in (("ok", self.ok), ("ko", self.ko)):
            if outcome is None:
                continue
            outcome_el = root.add(
                label,
                {"targetKind": outcome.target_kind, "target": outcome.target_id},
            )
            if outcome.target_page_id:
                outcome_el.set("targetPage", outcome.target_page_id)
            for output, request_param in outcome.parameters:
                outcome_el.add("param", {"output": output, "request": request_param})
        writes_el = root.add("writes")
        for entity in self.writes_entities:
            writes_el.add("entity", {"name": entity})
        for role in self.writes_roles:
            writes_el.add("role", {"name": role})
        return pretty_print(root)

    @classmethod
    def from_xml(cls, document: str) -> "OperationDescriptor":
        root = parse_xml(document)
        if root.tag != "operationDescriptor":
            raise DescriptorError(
                f"expected <operationDescriptor>, got <{root.tag}>"
            )
        descriptor = cls(
            operation_id=root.require_attr("id"),
            name=root.require_attr("name"),
            kind=root.require_attr("kind"),
            site_view_id=root.get("siteview"),
            entity=root.get("entity"),
            role=root.get("role"),
            optimized=root.get("optimized") == "true",
            custom_service=root.get("customService"),
        )
        for statement_el in root.find_all("statement"):
            descriptor.statements.append(
                StatementSpec(
                    sql=statement_el.required("sql").text(),
                    params=[
                        (
                            p.require_attr("slot"),
                            p.require_attr("sqlParam"),
                            p.get("type", "auto"),
                        )
                        for p in statement_el.find_all("param")
                    ],
                    captures_new_oid=statement_el.get("capturesNewOid") == "true",
                )
            )
        user_query_el = root.find("userQuery")
        if user_query_el is not None:
            descriptor.user_query = user_query_el.text()
        for label in ("ok", "ko"):
            outcome_el = root.find(label)
            if outcome_el is None:
                continue
            outcome = OutcomeTarget(
                target_kind=outcome_el.require_attr("targetKind"),
                target_id=outcome_el.require_attr("target"),
                target_page_id=outcome_el.get("targetPage"),
                parameters=[
                    (p.require_attr("output"), p.require_attr("request"))
                    for p in outcome_el.find_all("param")
                ],
            )
            if label == "ok":
                descriptor.ok = outcome
            else:
                descriptor.ko = outcome
        writes_el = root.find("writes")
        if writes_el is not None:
            descriptor.writes_entities = [
                e.require_attr("name") for e in writes_el.find_all("entity")
            ]
            descriptor.writes_roles = [
                r.require_attr("name") for r in writes_el.find_all("role")
            ]
        return descriptor
