"""Unit descriptors.

A :class:`UnitDescriptor` carries everything the generic unit service
needs to act as a concrete unit (paper Figure 5: "SQL query, I/O
parameters"):

- the data-extraction ``query`` with named parameters,
- the ordered :class:`InputParameter` list (unit slot → SQL parameter,
  plus the match mode for LIKE-style searches),
- the :class:`BeanProperty` list describing the unit bean's fields,
- for hierarchical units, one :class:`LevelQuery` per nesting level,
- the cache-dependency sets (entities/roles) used by §6 invalidation,
- the ``optimized`` flag: when a developer replaces the generated query
  and marks the descriptor optimized, regeneration must preserve it.

Descriptors serialize to XML so the data expert can edit them "both in
the design stage and after the application is deployed" (§1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.xmlkit import Element, parse_xml, pretty_print


@dataclass
class InputParameter:
    """One input slot of the unit, bound to a named SQL parameter.

    ``match`` is ``"exact"`` or ``"contains"``; contains-parameters are
    wrapped in ``%...%`` before execution (keyword search fields).
    ``value_type`` tells the generic service how to coerce the raw HTTP
    request string before binding (``int``/``float``/``bool``/``auto``).
    """

    slot: str
    sql_param: str
    match: str = "exact"
    required: bool = True
    value_type: str = "auto"

    def __post_init__(self) -> None:
        if self.match not in ("exact", "contains"):
            raise DescriptorError(f"unknown match mode {self.match!r}")
        if self.value_type not in ("auto", "int", "float", "bool", "string"):
            raise DescriptorError(f"unknown value type {self.value_type!r}")


@dataclass
class BeanProperty:
    """One property of the unit bean: the SQL output column it comes
    from and the attribute name it exposes."""

    name: str
    column: str


@dataclass
class LevelQuery:
    """One hierarchy level: the query fetching the children of a parent
    instance (``:parent`` parameter), plus its bean properties."""

    entity: str
    query: str
    properties: list[BeanProperty] = field(default_factory=list)


@dataclass
class UnitDescriptor:
    unit_id: str
    name: str
    kind: str
    entity: str | None = None
    query: str | None = None
    count_query: str | None = None  # scrollers: total instance count
    inputs: list[InputParameter] = field(default_factory=list)
    properties: list[BeanProperty] = field(default_factory=list)
    levels: list[LevelQuery] = field(default_factory=list)
    block_size: int | None = None
    entry_fields: list[dict] = field(default_factory=list)
    depends_on_entities: list[str] = field(default_factory=list)
    depends_on_roles: list[str] = field(default_factory=list)
    cacheable: bool = False
    cache_policy: str = "model-driven"
    optimized: bool = False
    #: allow the runtime to rewrite per-instance queries into IN-list
    #: batches; data experts can switch it off per descriptor when a
    #: hand-optimised query must run exactly as written.
    batched: bool = True
    custom_service: str | None = None  # §6: override the business component

    def input_for_slot(self, slot: str) -> InputParameter:
        for parameter in self.inputs:
            if parameter.slot == slot:
                return parameter
        raise DescriptorError(
            f"unit descriptor {self.name!r} has no input slot {slot!r}"
        )

    # -- XML -----------------------------------------------------------------

    def to_xml(self) -> str:
        root = Element(
            "unitDescriptor",
            {"id": self.unit_id, "name": self.name, "kind": self.kind},
        )
        if self.entity:
            root.set("entity", self.entity)
        if self.optimized:
            root.set("optimized", "true")
        if not self.batched:
            root.set("batched", "false")
        if self.cacheable:
            root.set("cacheable", "true")
            root.set("cachePolicy", self.cache_policy)
        if self.block_size is not None:
            root.set("blockSize", str(self.block_size))
        if self.custom_service:
            root.set("customService", self.custom_service)
        if self.query:
            root.add("query", text=self.query)
        if self.count_query:
            root.add("countQuery", text=self.count_query)
        inputs_el = root.add("inputs")
        for parameter in self.inputs:
            inputs_el.add(
                "input",
                {
                    "slot": parameter.slot,
                    "param": parameter.sql_param,
                    "match": parameter.match,
                    "required": "true" if parameter.required else "false",
                    "type": parameter.value_type,
                },
            )
        bean_el = root.add("bean")
        for prop in self.properties:
            bean_el.add("property", {"name": prop.name, "column": prop.column})
        for level in self.levels:
            level_el = root.add("level", {"entity": level.entity})
            level_el.add("query", text=level.query)
            for prop in level.properties:
                level_el.add(
                    "property", {"name": prop.name, "column": prop.column}
                )
        for entry_field in self.entry_fields:
            root.add("field", {k: str(v) for k, v in entry_field.items()})
        depends_el = root.add("dependsOn")
        for entity in self.depends_on_entities:
            depends_el.add("entity", {"name": entity})
        for role in self.depends_on_roles:
            depends_el.add("role", {"name": role})
        return pretty_print(root)

    @classmethod
    def from_xml(cls, document: str) -> "UnitDescriptor":
        root = parse_xml(document)
        if root.tag != "unitDescriptor":
            raise DescriptorError(
                f"expected <unitDescriptor>, got <{root.tag}>"
            )
        query_el = root.find("query")
        count_el = root.find("countQuery")
        descriptor = cls(
            unit_id=root.require_attr("id"),
            name=root.require_attr("name"),
            kind=root.require_attr("kind"),
            entity=root.get("entity"),
            query=query_el.text() if query_el is not None else None,
            count_query=count_el.text() if count_el is not None else None,
            block_size=int(root.get("blockSize")) if root.get("blockSize") else None,
            cacheable=root.get("cacheable") == "true",
            cache_policy=root.get("cachePolicy", "model-driven"),
            optimized=root.get("optimized") == "true",
            batched=root.get("batched", "true") == "true",
            custom_service=root.get("customService"),
        )
        inputs_el = root.find("inputs")
        if inputs_el is not None:
            for input_el in inputs_el.find_all("input"):
                descriptor.inputs.append(
                    InputParameter(
                        slot=input_el.require_attr("slot"),
                        sql_param=input_el.require_attr("param"),
                        match=input_el.get("match", "exact"),
                        required=input_el.get("required", "true") == "true",
                        value_type=input_el.get("type", "auto"),
                    )
                )
        bean_el = root.find("bean")
        if bean_el is not None:
            for prop_el in bean_el.find_all("property"):
                descriptor.properties.append(
                    BeanProperty(
                        prop_el.require_attr("name"),
                        prop_el.require_attr("column"),
                    )
                )
        for level_el in root.find_all("level"):
            descriptor.levels.append(
                LevelQuery(
                    entity=level_el.require_attr("entity"),
                    query=level_el.required("query").text(),
                    properties=[
                        BeanProperty(p.require_attr("name"), p.require_attr("column"))
                        for p in level_el.find_all("property")
                    ],
                )
            )
        for field_el in root.find_all("field"):
            descriptor.entry_fields.append(dict(field_el.attrs))
        depends_el = root.find("dependsOn")
        if depends_el is not None:
            descriptor.depends_on_entities = [
                e.require_attr("name") for e in depends_el.find_all("entity")
            ]
            descriptor.depends_on_roles = [
                r.require_attr("name") for r in depends_el.find_all("role")
            ]
        return descriptor
