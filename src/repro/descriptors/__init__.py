"""Unit, page and operation descriptors.

The paper's answer to service proliferation (§4, Figure 5): "for each
type of unit, a single generic service is designed ... the unit-specific
information can be stored in a descriptor file, for instance written in
XML, used at runtime to instantiate the generic service into a concrete,
unit-specific service."

- :mod:`repro.descriptors.unit_descriptor` — per-unit descriptors: the
  SQL query, its input parameters, the bean properties, and the cache
  dependency set; supports the §6 *optimized-query override*,
- :mod:`repro.descriptors.page_descriptor` — per-page descriptors: unit
  list, parameter topology, computation order, navigation targets,
- :mod:`repro.descriptors.operation_descriptor` — per-operation
  descriptors: DML statements, OK/KO targets, invalidation writes,
- :mod:`repro.descriptors.registry` — the deployed descriptor store with
  hot redeploy ("deploying the optimized version without interrupting
  the service", §8).
"""

from repro.descriptors.operation_descriptor import (
    OperationDescriptor,
    OutcomeTarget,
    StatementSpec,
)
from repro.descriptors.page_descriptor import (
    NavigationTarget,
    PageDescriptor,
    SlotBinding,
)
from repro.descriptors.registry import DescriptorRegistry
from repro.descriptors.unit_descriptor import (
    BeanProperty,
    InputParameter,
    LevelQuery,
    UnitDescriptor,
)

__all__ = [
    "UnitDescriptor",
    "InputParameter",
    "BeanProperty",
    "LevelQuery",
    "PageDescriptor",
    "SlotBinding",
    "NavigationTarget",
    "OperationDescriptor",
    "OutcomeTarget",
    "StatementSpec",
    "DescriptorRegistry",
]
