"""Page descriptors.

The paper (§4): "the descriptor associated to an individual page is more
complex, because it describes the topology of the page units and links,
which is needed for computing units in the proper order and with the
correct input parameters."

A :class:`PageDescriptor` therefore records:

- the page's units in *computation order* (topologically sorted over the
  intra-page transport links),
- one :class:`SlotBinding` per unit input slot, saying where the value
  comes from: an HTTP request parameter or another unit's output,
- the :class:`NavigationTarget` list: every outgoing navigational link a
  rendered page may offer, with the request parameters it must carry —
  this is what the controller configuration is generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.xmlkit import Element, parse_xml, pretty_print


@dataclass
class SlotBinding:
    """Feed ``unit_id.slot`` from a request parameter or a unit output."""

    unit_id: str
    slot: str
    source: str  # "request" | "unit"
    request_param: str | None = None
    source_unit_id: str | None = None
    source_output: str | None = None

    def __post_init__(self) -> None:
        if self.source == "request" and not self.request_param:
            raise DescriptorError("request binding needs a request_param")
        if self.source == "unit" and not (self.source_unit_id and self.source_output):
            raise DescriptorError("unit binding needs source unit and output")
        if self.source not in ("request", "unit"):
            raise DescriptorError(f"unknown binding source {self.source!r}")


@dataclass
class NavigationTarget:
    """One outgoing navigational link of the page (an anchor to render).

    ``parameters`` maps the source unit's outputs to the request
    parameters of the target (``(source_output, request_param)``).
    """

    link_id: str
    source_unit_id: str | None  # None when the link leaves the page itself
    target_kind: str  # "page" | "operation"
    target_id: str  # page id or operation id
    target_page_id: str | None = None  # page to show (unit targets resolve to it)
    parameters: list[tuple[str, str]] = field(default_factory=list)
    label: str | None = None


@dataclass
class PageDescriptor:
    page_id: str
    name: str
    site_view_id: str
    layout_category: str = "one-column"
    unit_order: list[str] = field(default_factory=list)
    bindings: list[SlotBinding] = field(default_factory=list)
    navigation: list[NavigationTarget] = field(default_factory=list)

    def bindings_for(self, unit_id: str) -> list[SlotBinding]:
        return [b for b in self.bindings if b.unit_id == unit_id]

    def navigation_from(self, unit_id: str | None) -> list[NavigationTarget]:
        return [n for n in self.navigation if n.source_unit_id == unit_id]

    # -- XML -----------------------------------------------------------------

    def to_xml(self) -> str:
        root = Element(
            "pageDescriptor",
            {
                "id": self.page_id,
                "name": self.name,
                "siteview": self.site_view_id,
                "layout": self.layout_category,
            },
        )
        order_el = root.add("computationOrder")
        for unit_id in self.unit_order:
            order_el.add("unit", {"id": unit_id})
        bindings_el = root.add("bindings")
        for binding in self.bindings:
            attrs = {
                "unit": binding.unit_id,
                "slot": binding.slot,
                "source": binding.source,
            }
            if binding.source == "request":
                attrs["param"] = binding.request_param
            else:
                attrs["fromUnit"] = binding.source_unit_id
                attrs["output"] = binding.source_output
            bindings_el.add("binding", attrs)
        navigation_el = root.add("navigation")
        for target in self.navigation:
            attrs = {
                "link": target.link_id,
                "targetKind": target.target_kind,
                "target": target.target_id,
            }
            if target.source_unit_id:
                attrs["fromUnit"] = target.source_unit_id
            if target.target_page_id:
                attrs["targetPage"] = target.target_page_id
            if target.label:
                attrs["label"] = target.label
            target_el = navigation_el.add("navTarget", attrs)
            for output, request_param in target.parameters:
                target_el.add("param", {"output": output, "request": request_param})
        return pretty_print(root)

    @classmethod
    def from_xml(cls, document: str) -> "PageDescriptor":
        root = parse_xml(document)
        if root.tag != "pageDescriptor":
            raise DescriptorError(f"expected <pageDescriptor>, got <{root.tag}>")
        descriptor = cls(
            page_id=root.require_attr("id"),
            name=root.require_attr("name"),
            site_view_id=root.require_attr("siteview"),
            layout_category=root.get("layout", "one-column"),
        )
        order_el = root.find("computationOrder")
        if order_el is not None:
            descriptor.unit_order = [
                u.require_attr("id") for u in order_el.find_all("unit")
            ]
        bindings_el = root.find("bindings")
        if bindings_el is not None:
            for binding_el in bindings_el.find_all("binding"):
                source = binding_el.require_attr("source")
                descriptor.bindings.append(
                    SlotBinding(
                        unit_id=binding_el.require_attr("unit"),
                        slot=binding_el.require_attr("slot"),
                        source=source,
                        request_param=binding_el.get("param"),
                        source_unit_id=binding_el.get("fromUnit"),
                        source_output=binding_el.get("output"),
                    )
                )
        navigation_el = root.find("navigation")
        if navigation_el is not None:
            for target_el in navigation_el.find_all("navTarget"):
                descriptor.navigation.append(
                    NavigationTarget(
                        link_id=target_el.require_attr("link"),
                        source_unit_id=target_el.get("fromUnit"),
                        target_kind=target_el.require_attr("targetKind"),
                        target_id=target_el.require_attr("target"),
                        target_page_id=target_el.get("targetPage"),
                        parameters=[
                            (p.require_attr("output"), p.require_attr("request"))
                            for p in target_el.find_all("param")
                        ],
                        label=target_el.get("label"),
                    )
                )
        return descriptor
