"""Batched data access for unit services.

The generated unit queries are *per-instance*: a hierarchical index
fetches the children of each parent with one ``:parent`` query, and an
index fed a multichoice selection runs one query per chosen oid.  That
is the classic N+1 pattern — correct, but it pays the per-query wire
latency N times.

This module rewrites such queries at the AST level: the single
``column = :param`` conjunct becomes ``column IN (:param__0, ...,
:param__k)`` and the equality column is projected as ``__parent`` so
the caller can regroup the flat result by parent.  Parameter lists are
padded to power-of-two bucket sizes so the rdb plan cache sees only a
handful of distinct statements per descriptor query instead of one per
batch width.

The rewrite refuses anything it cannot regroup faithfully (DISTINCT,
GROUP BY, aggregates, LIMIT/OFFSET, params used more than once); the
caller then falls back to the per-instance loop, so batching is always
an optimisation, never a semantics change.

Invariants the rewrite preserves (preconditions checked per statement):

- the batch parameter appears in exactly one ``X = :param`` equality
  conjunct and nowhere else, so substituting the IN-list cannot change
  any other predicate;
- the statement has no DISTINCT, grouping, aggregates, or LIMIT/OFFSET
  — any of those make per-parent results depend on the *set* of rows
  fetched, which an IN-list over many parents would merge;
- padding repeats the last key, which is harmless because duplicate
  IN-list members match the same rows exactly once;
- regrouping by the projected ``__parent`` column reproduces the rows
  each per-parent query would have returned, in the same relative
  order within a parent.

Observed savings (per-parent queries avoided) are counted into the
``services.batch.saved_queries`` metric when observability is on.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro.rdb.expr import Comparison, Expr, InList, Param
from repro.rdb.executor import collect_aggregates
from repro.rdb.sqlparser import Select, SelectItem, parse_select

#: alias under which the rewritten query exposes the parent key.
PARENT_COLUMN = "__parent"

#: largest IN-list a single batched query carries; wider parent sets
#: are chunked so bucket sizes stay bounded (1, 2, 4, ..., 64).
MAX_BATCH_SIZE = 64


def _subexpressions(expr: Expr):
    """``expr`` and every expression nested inside it."""
    yield expr
    if not dataclasses.is_dataclass(expr):
        return
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expr):
            yield from _subexpressions(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Expr):
                    yield from _subexpressions(item)


def _params_in(expr: Expr | None) -> list[str]:
    if expr is None:
        return []
    return [
        node.name for node in _subexpressions(expr) if isinstance(node, Param)
    ]


def _select_expressions(select: Select):
    """Every expression the statement evaluates (for param accounting)."""
    for item in select.items:
        if item.expr is not None:
            yield item.expr
    for join in select.joins:
        yield join.condition
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expr


def select_params(select: Select) -> set[str]:
    """All named parameters the statement references."""
    names: set[str] = set()
    for expr in _select_expressions(select):
        names.update(_params_in(expr))
    return names


def _conjuncts(expr: Expr | None) -> list[Expr]:
    from repro.rdb.expr import And

    if expr is None:
        return []
    if isinstance(expr, And):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _and_all(parts: list[Expr]) -> Expr | None:
    from repro.rdb.expr import And

    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = And(combined, part)
    return combined


def _match_eq_param(conjunct: Expr, param: str) -> Expr | None:
    """The column-side expression of ``X = :param`` (either side)."""
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for key_side, other in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if (
            isinstance(other, Param)
            and other.name == param
            and key_side.column_refs()
            and not _params_in(key_side)
        ):
            return key_side
    return None


def bucket_size(count: int) -> int:
    """Smallest power of two ≥ ``count``, capped at MAX_BATCH_SIZE."""
    size = 1
    while size < count and size < MAX_BATCH_SIZE:
        size *= 2
    return size


@lru_cache(maxsize=256)
def batched_select(sql: str, param: str, size: int) -> Select | None:
    """Rewrite ``sql`` so ``X = :param`` becomes an IN-list of ``size``
    placeholders and ``X`` is projected as ``__parent``.

    Returns ``None`` when the statement cannot be batched faithfully.
    Cached because the same descriptor query is rewritten on every
    request for only a handful of bucket sizes.
    """
    select = parse_select(sql)
    if (
        select.distinct
        or select.group_by
        or select.having is not None
        or select.limit is not None
        or select.offset
    ):
        return None
    if any(
        item.expr is not None and collect_aggregates(item.expr)
        for item in select.items
    ):
        return None

    conjuncts = _conjuncts(select.where)
    key_expr = None
    rest: list[Expr] = []
    for conjunct in conjuncts:
        matched = _match_eq_param(conjunct, param) if key_expr is None else None
        if matched is not None:
            key_expr = matched
        else:
            rest.append(conjunct)
    if key_expr is None:
        return None
    # The param may appear exactly once — anywhere else and substituting
    # an IN-list would change the meaning of the other occurrence.
    all_params = []
    for expr in _select_expressions(select):
        all_params.extend(_params_in(expr))
    if all_params.count(param) != 1:
        return None

    placeholders = tuple(Param(f"{param}__{i}") for i in range(size))
    in_conjunct = InList(key_expr, placeholders)
    new_where = _and_all(rest + [in_conjunct])
    new_items = select.items + (
        SelectItem(expr=key_expr, alias=PARENT_COLUMN),
    )
    return dataclasses.replace(select, items=new_items, where=new_where)


def batch_params(param: str, values: list, size: int) -> dict:
    """Placeholder bindings for one bucket, padded by repeating the
    last value (duplicate IN-list members select no extra rows)."""
    padded = list(values) + [values[-1]] * (size - len(values))
    return {f"{param}__{i}": padded[i] for i in range(size)}


def _chunks(values: list, width: int):
    for start in range(0, len(values), width):
        yield values[start:start + width]


def _distinct_keys(values) -> list:
    """Order-preserving dedup, Nones dropped (NULL never equi-matches)."""
    seen = set()
    out = []
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        out.append(value)
    return out


def load_grouped(ctx, sql: str, param: str, parents) -> dict | None:
    """Fetch ``sql`` for every parent key in one IN-list query per
    bucket and regroup the rows by parent.

    Returns ``{parent: [row, ...]}`` (parents with no rows absent), or
    ``None`` when the query cannot be batched — callers keep their
    per-parent loop as the fallback path.
    """
    keys = _distinct_keys(parents)
    if not keys:
        return {}
    grouped: dict = {}
    queries_run = 0
    for chunk in _chunks(keys, MAX_BATCH_SIZE):
        size = bucket_size(len(chunk))
        select = batched_select(sql, param, size)
        if select is None:
            return None
        cache_key = f"__batch__:{param}:{size}:{sql}"
        result = ctx.query_statement(
            select, batch_params(param, chunk, size), cache_key
        )
        queries_run += 1
        for row in result:
            grouped.setdefault(row[PARENT_COLUMN], []).append(row)
    saved = len(keys) - queries_run
    obs = getattr(ctx, "obs", None)
    if saved > 0 and obs is not None and obs.enabled:
        obs.metrics.counter("services.batch.saved_queries").inc(saved)
    return grouped


def query_list_param(ctx, sql: str, params: dict) -> list | None:
    """Run ``sql`` once per batch for a list-valued parameter.

    When exactly one parameter the statement references holds a list,
    the rows matching *any* of its values are fetched with IN-list
    queries (or a per-value loop if the rewrite is refused) and
    returned flat.  Returns ``None`` when no referenced parameter is
    list-valued — the caller runs its normal single query.
    """
    select = _parsed(sql)
    listy = [
        name
        for name in sorted(select_params(select))
        if isinstance(params.get(name), (list, tuple))
    ]
    if len(listy) != 1:
        return None
    param = listy[0]
    values = _distinct_keys(params[param])
    if not values:
        return []
    grouped = load_grouped(ctx, sql, param, values)
    if grouped is not None:
        return [row for value in values for row in grouped.get(value, [])]
    rows: list = []
    for value in values:
        rows.extend(ctx.query(sql, {**params, param: value}))
    return rows


@lru_cache(maxsize=256)
def _parsed(sql: str) -> Select:
    return parse_select(sql)
