"""Runtime context and service base classes.

The :class:`RuntimeContext` is what the paper's business tier sees: the
data tier (through pooled connections), the deployed descriptors, the
optional unit-bean cache (§6), custom service overrides (§6), and the
runtime statistics the experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors import DescriptorRegistry
from repro.errors import ServiceError
from repro.rdb import ConnectionPool, Database
from repro.rdb.executor import ResultSet
from repro.services.beans import UnitBean
from repro.util.concurrency import AtomicCounters


@dataclass
class RuntimeStats(AtomicCounters):
    """Counters the experiments read (E5 counts spared queries here).

    Updated through :meth:`AtomicCounters.increment` — worker threads
    bump them concurrently."""

    pages_computed: int = 0
    units_computed: int = 0
    operations_executed: int = 0
    queries_executed: int = 0
    batched_queries: int = 0
    bean_cache_hits: int = 0
    bean_cache_misses: int = 0

    def reset(self) -> None:
        self.pages_computed = 0
        self.units_computed = 0
        self.operations_executed = 0
        self.queries_executed = 0
        self.batched_queries = 0
        self.bean_cache_hits = 0
        self.bean_cache_misses = 0


class RuntimeContext:
    """Shared runtime wiring for every service.

    ``bean_cache`` is duck-typed (see
    :class:`repro.caching.bean_cache.UnitBeanCache`): it must offer
    ``get(key)``, ``put(key, bean, entities, roles, policy)`` and
    ``invalidate_writes(entities, roles)``.
    """

    #: upper bound on waiting for a pooled connection — a safety net
    #: against deadlocked workers, generous enough for real contention.
    POOL_ACQUIRE_TIMEOUT = 30.0

    def __init__(
        self,
        database: Database,
        registry: DescriptorRegistry,
        bean_cache=None,
        pool_size: int = 8,
        obs=None,
    ):
        from repro.caching.bus import InvalidationBus
        from repro.obs import Observability

        self.database = database
        self.registry = registry
        self.bean_cache = bean_cache
        self.pool = ConnectionPool(database, size=pool_size)
        self.stats = RuntimeStats()
        self.custom_services: dict[str, object] = {}
        # One Observability root per application: the data tier and the
        # pool publish into its registry, cache levels and the runtime
        # stats surface through snapshot-time collectors, the front
        # controller serves it all at /_status.
        self.obs = obs or Observability()
        self.database.bind_observability(self.obs)
        self.pool.bind_observability(self.obs)
        self.obs.metrics.register_collector(
            "rdb.database", self.database.observability_stats
        )
        self.obs.metrics.register_collector(
            "services.runtime", self._runtime_stats_snapshot
        )
        self.obs.metrics.register_collector(
            "rdb.storage", self.database.storage_stats
        )
        # §6's write notifications fan out to every cache level through
        # one bus; deeper tiers must be registered first (bean →
        # fragment → page) so a rebuilding request finds clean levels.
        self.invalidation_bus = InvalidationBus()
        # Commit-driven invalidation (off by default, byte-for-byte seed
        # behaviour): when enabled, entity invalidations ride the storage
        # engine's commit stream instead of the operation services'
        # ad-hoc calls.  See :meth:`enable_commit_invalidation`.
        self.commit_invalidation_enabled = False
        self._commit_table_entities: dict[str, tuple[str, ...]] = {}
        self.commit_invalidations = 0
        if bean_cache is not None:
            self.invalidation_bus.register("bean", bean_cache)
            self._register_cache_collector("bean", bean_cache)

    def register_cache_level(self, name: str, cache) -> None:
        """Attach another cache level (fragment, page) to the bus."""
        self.invalidation_bus.register(name, cache)
        self._register_cache_collector(name, cache)

    def _register_cache_collector(self, name: str, cache) -> None:
        """Surface a cache level's own counters in the unified registry
        (polled at snapshot time — the hot path pays nothing extra)."""
        stats = getattr(cache, "stats", None)
        if stats is not None and hasattr(stats, "to_dict"):
            self.obs.metrics.register_collector(f"cache.{name}", stats.to_dict)

    def _runtime_stats_snapshot(self) -> dict:
        return {
            "pages_computed": self.stats.pages_computed,
            "units_computed": self.stats.units_computed,
            "operations_executed": self.stats.operations_executed,
            "queries_executed": self.stats.queries_executed,
            "batched_queries": self.stats.batched_queries,
            "bean_cache_hits": self.stats.bean_cache_hits,
            "bean_cache_misses": self.stats.bean_cache_misses,
            "commit_invalidation_enabled": self.commit_invalidation_enabled,
            "commit_invalidations": self.commit_invalidations,
        }

    def invalidate_writes(self, entities=(), roles=()) -> dict[str, int]:
        """Publish an operation's write sets to every cache level."""
        return self.invalidation_bus.invalidate_writes(entities, roles)

    # -- commit-driven invalidation ----------------------------------------

    def enable_commit_invalidation(
        self, table_entities: dict[str, tuple[str, ...]] | None = None
    ) -> None:
        """Invalidate caches from the engine's durable commit stream.

        Every committed transaction — DML through any path, not just
        descriptor operations — publishes a
        :class:`~repro.rdb.engine.CommitEvent`; this subscription
        translates the tables it touched into ER entities (via
        ``table_entities``, usually
        :meth:`repro.er.mapping.RelationalMapping.table_entities`;
        unmapped tables fall back to their own name) and fans the
        invalidation out to every cache level.  Once enabled, operation
        services stop publishing their descriptors' *entity* write sets
        ad hoc (role write sets still ride the descriptor path — roles
        are a hypertext concept the storage tier cannot see).  This is
        the hook WAL-shipping replication attaches to: replicas replay
        the same stream into their own buses.
        """
        if table_entities is not None:
            self._commit_table_entities = dict(table_entities)
        if not self.commit_invalidation_enabled:
            self.database.commit_stream.subscribe(self._on_commit_event)
            self.commit_invalidation_enabled = True

    def _on_commit_event(self, event) -> None:
        if getattr(event, "bootstrap", False):
            # A replica installed a whole snapshot: no per-entity write
            # set exists, so every cache level flushes outright.
            self.commit_invalidations += 1
            self.invalidation_bus.flush()
            return
        entities: set[str] = set()
        for table in event.tables:
            entities.update(
                self._commit_table_entities.get(table, (table,))
            )
        if entities:
            self.commit_invalidations += 1
            self.invalidation_bus.invalidate_writes(sorted(entities), ())

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Deterministic data-tier shutdown: flush and close the
        storage engine.  Idempotent — safe from any shutdown path."""
        self.database.close()

    # -- data access (the paper's JDBC layer) -------------------------------

    def query(self, sql: str, params: dict) -> ResultSet:
        """Run a data-extraction query through a pooled connection.

        Repeated descriptor queries behave like prepared statements: the
        database keys its plan cache by this SQL text, so every call
        after the first skips parsing *and* planning and runs the cached
        plan's compiled form directly (``Database.stats.prepared_reuse``
        counts these)."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            result = self.database.query(sql, params)
            self.stats.increment("queries_executed")
            return result
        finally:
            connection.close()

    def query_statement(self, select, params: dict,
                        cache_key: str | None = None) -> ResultSet:
        """Run a pre-built SELECT AST (the batch loader's rewritten
        IN-list queries) through a pooled connection."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            result = self.database.query_statement(
                select, params, cache_key=cache_key
            )
            self.stats.increment("queries_executed")
            self.stats.increment("batched_queries")
            return result
        finally:
            connection.close()

    def execute(self, sql: str, params: dict) -> int:
        """Run a DML statement; returns affected row count."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            outcome = self.database.execute(sql, params)
            if not isinstance(outcome, int):
                raise ServiceError(f"operation statement was not DML: {sql!r}")
            return outcome
        finally:
            connection.close()

    @property
    def last_insert_id(self) -> int | None:
        return self.database.last_insert_id

    # -- §6 hooks -------------------------------------------------------------

    def register_custom_service(self, name: str, service) -> None:
        """Register a developer-supplied component that overrides a
        generated unit service (descriptor ``customService`` attribute)."""
        self.custom_services[name] = service

    def custom_service(self, name: str):
        try:
            return self.custom_services[name]
        except KeyError:
            raise ServiceError(
                f"descriptor references unknown custom service {name!r}"
            ) from None


class UnitServiceBase:
    """Service contract for one unit *kind* (paper Figure 5's generic
    unit service, instantiated by a descriptor)."""

    kind = "abstract"

    def compute(self, descriptor, inputs: dict, ctx: RuntimeContext) -> UnitBean:
        raise NotImplementedError


class OperationServiceBase:
    """Service contract for one operation kind."""

    kind = "abstract"

    def execute(self, descriptor, inputs: dict, ctx: RuntimeContext, session):
        raise NotImplementedError


def coerce_value(value, value_type: str):
    """Coerce a raw request value according to a descriptor type hint."""
    if value is None or value_type in ("auto", "string"):
        return value
    if value_type == "int":
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return int(str(value))
    if value_type == "float":
        return float(value) if not isinstance(value, float) else value
    if value_type == "bool":
        if isinstance(value, bool):
            return value
        return str(value).lower() in ("true", "1", "yes", "on")
    raise ServiceError(f"unknown value type {value_type!r}")
