"""Runtime context and service base classes.

The :class:`RuntimeContext` is what the paper's business tier sees: the
data tier (through pooled connections), the deployed descriptors, the
optional unit-bean cache (§6), custom service overrides (§6), and the
runtime statistics the experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors import DescriptorRegistry
from repro.errors import ServiceError
from repro.rdb import ConnectionPool, Database
from repro.rdb.executor import ResultSet
from repro.services.beans import UnitBean
from repro.util.concurrency import AtomicCounters


@dataclass
class RuntimeStats(AtomicCounters):
    """Counters the experiments read (E5 counts spared queries here).

    Updated through :meth:`AtomicCounters.increment` — worker threads
    bump them concurrently."""

    pages_computed: int = 0
    units_computed: int = 0
    operations_executed: int = 0
    queries_executed: int = 0
    batched_queries: int = 0
    bean_cache_hits: int = 0
    bean_cache_misses: int = 0

    def reset(self) -> None:
        self.pages_computed = 0
        self.units_computed = 0
        self.operations_executed = 0
        self.queries_executed = 0
        self.batched_queries = 0
        self.bean_cache_hits = 0
        self.bean_cache_misses = 0


class RuntimeContext:
    """Shared runtime wiring for every service.

    ``bean_cache`` is duck-typed (see
    :class:`repro.caching.bean_cache.UnitBeanCache`): it must offer
    ``get(key)``, ``put(key, bean, entities, roles, policy)`` and
    ``invalidate_writes(entities, roles)``.
    """

    #: upper bound on waiting for a pooled connection — a safety net
    #: against deadlocked workers, generous enough for real contention.
    POOL_ACQUIRE_TIMEOUT = 30.0

    def __init__(
        self,
        database: Database,
        registry: DescriptorRegistry,
        bean_cache=None,
        pool_size: int = 8,
    ):
        from repro.caching.bus import InvalidationBus

        self.database = database
        self.registry = registry
        self.bean_cache = bean_cache
        self.pool = ConnectionPool(database, size=pool_size)
        self.stats = RuntimeStats()
        self.custom_services: dict[str, object] = {}
        # §6's write notifications fan out to every cache level through
        # one bus; deeper tiers must be registered first (bean →
        # fragment → page) so a rebuilding request finds clean levels.
        self.invalidation_bus = InvalidationBus()
        if bean_cache is not None:
            self.invalidation_bus.register("bean", bean_cache)

    def register_cache_level(self, name: str, cache) -> None:
        """Attach another cache level (fragment, page) to the bus."""
        self.invalidation_bus.register(name, cache)

    def invalidate_writes(self, entities=(), roles=()) -> dict[str, int]:
        """Publish an operation's write sets to every cache level."""
        return self.invalidation_bus.invalidate_writes(entities, roles)

    # -- data access (the paper's JDBC layer) -------------------------------

    def query(self, sql: str, params: dict) -> ResultSet:
        """Run a data-extraction query through a pooled connection."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            result = self.database.query(sql, params)
            self.stats.increment("queries_executed")
            return result
        finally:
            connection.close()

    def query_statement(self, select, params: dict,
                        cache_key: str | None = None) -> ResultSet:
        """Run a pre-built SELECT AST (the batch loader's rewritten
        IN-list queries) through a pooled connection."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            result = self.database.query_statement(
                select, params, cache_key=cache_key
            )
            self.stats.increment("queries_executed")
            self.stats.increment("batched_queries")
            return result
        finally:
            connection.close()

    def execute(self, sql: str, params: dict) -> int:
        """Run a DML statement; returns affected row count."""
        connection = self.pool.acquire(timeout=self.POOL_ACQUIRE_TIMEOUT)
        try:
            outcome = self.database.execute(sql, params)
            if not isinstance(outcome, int):
                raise ServiceError(f"operation statement was not DML: {sql!r}")
            return outcome
        finally:
            connection.close()

    @property
    def last_insert_id(self) -> int | None:
        return self.database.last_insert_id

    # -- §6 hooks -------------------------------------------------------------

    def register_custom_service(self, name: str, service) -> None:
        """Register a developer-supplied component that overrides a
        generated unit service (descriptor ``customService`` attribute)."""
        self.custom_services[name] = service

    def custom_service(self, name: str):
        try:
            return self.custom_services[name]
        except KeyError:
            raise ServiceError(
                f"descriptor references unknown custom service {name!r}"
            ) from None


class UnitServiceBase:
    """Service contract for one unit *kind* (paper Figure 5's generic
    unit service, instantiated by a descriptor)."""

    kind = "abstract"

    def compute(self, descriptor, inputs: dict, ctx: RuntimeContext) -> UnitBean:
        raise NotImplementedError


class OperationServiceBase:
    """Service contract for one operation kind."""

    kind = "abstract"

    def execute(self, descriptor, inputs: dict, ctx: RuntimeContext, session):
        raise NotImplementedError


def coerce_value(value, value_type: str):
    """Coerce a raw request value according to a descriptor type hint."""
    if value is None or value_type in ("auto", "string"):
        return value
    if value_type == "int":
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        return int(str(value))
    if value_type == "float":
        return float(value) if not isinstance(value, float) else value
    if value_type == "bool":
        if isinstance(value, bool):
            return value
        return str(value).lower() in ("true", "1", "yes", "on")
    raise ServiceError(f"unknown value type {value_type!r}")
