"""Plug-in units (§7).

"We have added to WebRatio the notion of 'plug-in units', i.e. of new
components, which can be easily plugged into the design and runtime
environment, by providing their graphical icon, their unit service and
rendition tags and the XSL rules for building their descriptors."

A :class:`PluginUnit` bundles exactly those pieces: the new unit kind's
name, the service computing its bean, the custom tag rendering it, and
(optionally) an operation service and presentation rule.  Registering a
plug-in makes the kind available to the code generators, the generic
dispatcher, and the template engine — no core change needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError


@dataclass
class PluginUnit:
    """A pluggable unit kind."""

    kind: str
    tag_name: str  # custom tag in templates, e.g. "webml:mapUnit"
    service: object = None  # UnitServiceBase-compatible
    operation_service: object = None  # OperationServiceBase-compatible
    renderer: object = None  # object with render(bean, element, context)
    presentation_rule: object = None  # an xslt rule applied to its tag
    descriptor_builder: object = None  # callable(unit, mapping) -> UnitDescriptor

    def __post_init__(self) -> None:
        if not self.kind:
            raise ServiceError("plug-in unit needs a kind name")
        if not self.tag_name:
            raise ServiceError("plug-in unit needs a tag name")
        if self.service is None and self.operation_service is None:
            raise ServiceError(
                f"plug-in unit {self.kind!r} needs a unit or operation service"
            )


class PluginRegistry:
    """The runtime registry of plug-in units."""

    def __init__(self) -> None:
        self._plugins: dict[str, PluginUnit] = {}

    def register(self, plugin: PluginUnit) -> PluginUnit:
        from repro.services.operations import OPERATION_SERVICES
        from repro.services.units import CONTENT_UNIT_SERVICES

        if plugin.kind in CONTENT_UNIT_SERVICES or plugin.kind in OPERATION_SERVICES:
            raise ServiceError(
                f"plug-in kind {plugin.kind!r} collides with a built-in unit"
            )
        if plugin.kind in self._plugins:
            raise ServiceError(f"plug-in kind {plugin.kind!r} already registered")
        self._plugins[plugin.kind] = plugin
        return plugin

    def unregister(self, kind: str) -> None:
        self._plugins.pop(kind, None)

    def get(self, kind: str) -> PluginUnit | None:
        return self._plugins.get(kind)

    def kinds(self) -> list[str]:
        return sorted(self._plugins)


#: process-wide registry (tests unregister what they add)
plugin_registry = PluginRegistry()
