"""Descriptor-driven dispatch — the Figure 5 architecture.

:class:`GenericUnitService` is the single entry point the page service
calls for *any* unit: it coerces the inputs per the descriptor, honours
the §6 bean cache and custom-service override, and delegates to the
per-kind implementation (or a registered plug-in unit, §7).

``builtin_service_count()`` is the number the paper's §8 comparison
quotes ("only one generic page service is required ... and 11 unit
services").
"""

from __future__ import annotations

from repro.descriptors import OperationDescriptor, UnitDescriptor
from repro.errors import ServiceError
from repro.obs import span
from repro.services.base import RuntimeContext, coerce_value
from repro.services.beans import OperationResult, UnitBean
from repro.services.operations import OPERATION_SERVICES
from repro.services.plugins import plugin_registry
from repro.services.units import CONTENT_UNIT_SERVICES


#: the 11 "basic WebML units" §8 counts services for
PAPER_BASIC_KINDS = (
    "data", "index", "multidata", "multichoice", "scroller", "entry",
    "create", "delete", "modify", "connect", "disconnect",
)


def builtin_service_count() -> dict[str, int]:
    """How many distinct service classes the generic architecture needs."""
    all_kinds = set(CONTENT_UNIT_SERVICES) | set(OPERATION_SERVICES)
    return {
        "page_services": 1,
        "unit_services": len(all_kinds),
        "content_unit_services": len(CONTENT_UNIT_SERVICES),
        "operation_services": len(OPERATION_SERVICES),
        "paper_basic_services": sum(
            1 for kind in PAPER_BASIC_KINDS if kind in all_kinds
        ),
    }


class GenericUnitService:
    """The generic unit service: descriptor in, unit bean out."""

    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx

    def compute(self, descriptor: UnitDescriptor, inputs: dict) -> UnitBean:
        with span("services.unit", tier="services",
                  unit=descriptor.name, kind=descriptor.kind):
            return self._compute(descriptor, inputs)

    def _compute(self, descriptor: UnitDescriptor, inputs: dict) -> UnitBean:
        prepared, missing = self._prepare_inputs(descriptor, inputs)
        if missing:
            # A required input was never supplied: the unit displays
            # nothing (e.g. a data unit before any selection was made).
            return UnitBean(descriptor.unit_id, descriptor.name, descriptor.kind)

        cache = self.ctx.bean_cache if descriptor.cacheable else None
        if cache is None:
            bean = self._compute_fresh(descriptor, prepared, inputs)
            self.ctx.stats.increment("units_computed")
            return bean

        cache_key = self._cache_key(descriptor, prepared)
        computed_fresh = False

        def _fresh() -> UnitBean:
            nonlocal computed_fresh
            computed_fresh = True
            bean = self._compute_fresh(descriptor, prepared, inputs)
            self.ctx.stats.increment("units_computed")
            return bean

        with span("cache.bean", tier="cache", level="bean") as probe:
            if hasattr(cache, "get_or_compute"):
                # Single-flight: under concurrent misses of the same key
                # one thread computes, the rest wait and share the result.
                bean = cache.get_or_compute(
                    cache_key, _fresh,
                    entities=descriptor.depends_on_entities,
                    roles=descriptor.depends_on_roles,
                    policy=descriptor.cache_policy,
                )
            else:  # duck-typed caches keep the plain get/put protocol
                bean = cache.get(cache_key)
                if bean is None:
                    bean = _fresh()
                    if bean is not None:
                        cache.put(
                            cache_key, bean,
                            entities=descriptor.depends_on_entities,
                            roles=descriptor.depends_on_roles,
                            policy=descriptor.cache_policy,
                        )
            if probe is not None:
                probe.tags["hit"] = not computed_fresh
        if computed_fresh:
            self.ctx.stats.increment("bean_cache_misses")
        else:
            self.ctx.stats.increment("bean_cache_hits")
        return bean

    def _compute_fresh(self, descriptor: UnitDescriptor, prepared: dict,
                       raw_inputs: dict) -> UnitBean:
        bean = self._compute_bean(descriptor, prepared)
        # Stamp the §6 dependency sets on the bean so the fragment and
        # page caches can index entries without consulting the registry.
        bean.depends_entities = tuple(descriptor.depends_on_entities)
        bean.depends_roles = tuple(descriptor.depends_on_roles)
        return bean

    def _compute_bean(self, descriptor: UnitDescriptor,
                      prepared: dict) -> UnitBean:
        if descriptor.custom_service:
            service = self.ctx.custom_service(descriptor.custom_service)
            return service.compute(descriptor, prepared, self.ctx)
        implementation = CONTENT_UNIT_SERVICES.get(descriptor.kind)
        if implementation is None:
            plugin = plugin_registry.get(descriptor.kind)
            if plugin is None:
                raise ServiceError(
                    f"no unit service for kind {descriptor.kind!r}"
                )
            implementation = plugin.service
        return implementation.compute(descriptor, prepared, self.ctx)

    def _prepare_inputs(self, descriptor: UnitDescriptor,
                        inputs: dict) -> tuple[dict, list[str]]:
        """Coerce and decorate inputs; returns (prepared, missing-required)."""
        prepared = dict(inputs)
        missing: list[str] = []
        for parameter in descriptor.inputs:
            value = inputs.get(parameter.slot)
            if value is None or value == "":
                if parameter.required:
                    missing.append(parameter.slot)
                continue
            try:
                value = coerce_value(value, parameter.value_type)
            except (TypeError, ValueError):
                missing.append(parameter.slot)
                continue
            if parameter.match == "contains":
                value = f"%{value}%"
            prepared[parameter.sql_param] = value
        return prepared, missing

    @staticmethod
    def _cache_key(descriptor: UnitDescriptor, prepared: dict) -> tuple:
        relevant = tuple(
            (p.sql_param, _freeze(prepared.get(p.sql_param)))
            for p in descriptor.inputs
        )
        extra = ()
        if descriptor.kind == "scroller":
            extra = (("block", _freeze(prepared.get("block"))),)
        return (descriptor.unit_id, relevant + extra)


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


class GenericOperationService:
    """The generic operation service: descriptor in, OK/KO result out."""

    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx

    def execute(self, descriptor: OperationDescriptor, inputs: dict,
                session) -> OperationResult:
        if descriptor.custom_service:
            service = self.ctx.custom_service(descriptor.custom_service)
            return service.execute(descriptor, inputs, self.ctx, session)
        implementation = OPERATION_SERVICES.get(descriptor.kind)
        if implementation is None:
            plugin = plugin_registry.get(descriptor.kind)
            if plugin is None or plugin.operation_service is None:
                raise ServiceError(
                    f"no operation service for kind {descriptor.kind!r}"
                )
            implementation = plugin.operation_service
        return implementation.execute(descriptor, inputs, self.ctx, session)
