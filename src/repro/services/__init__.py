"""The business tier: generic services driven by descriptors.

Implements §3-§4 of the paper: unit beans (the Model's state objects),
the generic unit service with one implementation per unit *kind* (11 in
the paper's Acer-Euro count), generic operation services, and the
generic page service whose ``compute_page()`` "carries out the parameter
propagation and unit computation process".

- :mod:`repro.services.beans` — unit beans and operation results,
- :mod:`repro.services.base` — the runtime context and service ABCs,
- :mod:`repro.services.units` — content-unit service implementations,
- :mod:`repro.services.operations` — operation service implementations,
- :mod:`repro.services.generic` — descriptor-driven dispatch (Figure 5),
- :mod:`repro.services.page_service` — the generic page service,
- :mod:`repro.services.plugins` — §7's plug-in units.
"""

from repro.services.base import RuntimeContext, RuntimeStats
from repro.services.beans import OperationResult, UnitBean
from repro.services.generic import (
    GenericOperationService,
    GenericUnitService,
    builtin_service_count,
)
from repro.services.page_service import GenericPageService, PageResult
from repro.services.plugins import PluginUnit, plugin_registry

__all__ = [
    "UnitBean",
    "OperationResult",
    "RuntimeContext",
    "RuntimeStats",
    "GenericUnitService",
    "GenericOperationService",
    "GenericPageService",
    "PageResult",
    "builtin_service_count",
    "PluginUnit",
    "plugin_registry",
]
