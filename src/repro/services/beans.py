"""Unit beans and operation results.

"At the end of the page service execution, all the JavaBeans storing the
result of the data retrieval queries of the page units (called unit
beans) are available to the View" (§3).  A :class:`UnitBean` is that
object: the computed content of one unit plus the output values other
units may receive over links.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UnitBean:
    """The computed content of one unit.

    - ``current`` — the single row of a data unit,
    - ``rows`` — the row list of index/multidata/multichoice/scroller
      units; hierarchical units nest children under the ``_children``
      key of each row,
    - ``fields`` — the form fields of an entry unit,
    - ``total``/``block``/``block_count`` — scroller window state,
    - ``outputs`` — slot→value pairs transportable over links,
    - ``from_cache`` — True when the bean was served by the §6
      business-tier cache instead of being recomputed,
    - ``depends_entities``/``depends_roles`` — the descriptor's cache
      dependency sets, carried on the bean so downstream cache levels
      (fragment, page) can index their entries without a registry
      round-trip.
    """

    unit_id: str
    name: str
    kind: str
    current: dict | None = None
    rows: list[dict] = field(default_factory=list)
    fields: list[dict] = field(default_factory=list)
    total: int | None = None
    block: int | None = None
    block_count: int | None = None
    outputs: dict = field(default_factory=dict)
    from_cache: bool = False
    depends_entities: tuple = ()
    depends_roles: tuple = ()

    def output(self, slot: str):
        return self.outputs.get(slot)

    @property
    def is_empty(self) -> bool:
        return self.current is None and not self.rows and not self.fields

    def row_count(self) -> int:
        if self.current is not None:
            return 1
        return len(self.rows)


@dataclass
class OperationResult:
    """The outcome of one operation execution.

    ``ok`` selects the OK or KO link; ``outputs`` (e.g. a create unit's
    new oid) are forwarded along that link's parameters.
    """

    operation_id: str
    ok: bool
    outputs: dict = field(default_factory=dict)
    message: str | None = None
    affected_rows: int = 0

    def output(self, slot: str):
        return self.outputs.get(slot)
