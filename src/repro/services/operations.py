"""Operation service implementations.

Each service executes its descriptor's DML and reports an OK/KO outcome;
the controller then follows the corresponding link ("to which page
redirect the user in case of operation failure", §2).  A database
integrity violation or a statement affecting zero rows is a KO — the
modelled failure path, not a crash.
"""

from __future__ import annotations

from repro.descriptors import OperationDescriptor
from repro.errors import DatabaseError
from repro.services.base import (
    OperationServiceBase,
    RuntimeContext,
    coerce_value,
)
from repro.services.beans import OperationResult


class _StatementOperationService(OperationServiceBase):
    """Shared shape: run every statement, collect outputs.

    A list-valued input (a multichoice unit's ``oids`` selection bound
    to a scalar slot) turns the operation into a *bulk* operation: each
    statement runs once per element, in order.
    """

    #: subclasses: a zero-row statement is a failure?
    zero_rows_is_ko = True

    def execute(self, descriptor: OperationDescriptor, inputs: dict,
                ctx: RuntimeContext, session) -> OperationResult:
        """Run the statements atomically: a KO rolls back everything the
        operation already wrote (bulk selections included)."""
        ctx.database.begin()
        result = self._execute_statements(descriptor, inputs, ctx)
        if result.ok:
            ctx.database.commit()
            ctx.stats.increment("operations_executed")
            self._after_success(descriptor, ctx)
        else:
            ctx.database.rollback()
        return result

    def _execute_statements(self, descriptor: OperationDescriptor,
                            inputs: dict, ctx: RuntimeContext) -> OperationResult:
        result = OperationResult(descriptor.operation_id, ok=True)
        for statement in descriptor.statements:
            for params in self._parameter_sets(descriptor, statement, inputs):
                if isinstance(params, OperationResult):
                    return params  # a coercion failure
                try:
                    affected = ctx.execute(statement.sql, params)
                except DatabaseError as exc:
                    return OperationResult(
                        descriptor.operation_id, ok=False, message=str(exc)
                    )
                result.affected_rows += affected
                if statement.captures_new_oid:
                    result.outputs["oid"] = ctx.last_insert_id
                if affected == 0 and self.zero_rows_is_ko:
                    return OperationResult(
                        descriptor.operation_id, ok=False,
                        message=f"{descriptor.kind} matched no rows",
                        affected_rows=result.affected_rows,
                    )
        return result

    def _parameter_sets(self, descriptor, statement, inputs: dict):
        """One params dict per execution (several for bulk selections)."""
        list_slots = [
            slot for slot, _p, _t in statement.params
            if isinstance(inputs.get(slot), (list, tuple))
        ]
        repetitions = 1
        if list_slots:
            lengths = {len(inputs[slot]) for slot in list_slots}
            if len(lengths) != 1:
                yield OperationResult(
                    descriptor.operation_id, ok=False,
                    message="bulk inputs of mismatched lengths",
                )
                return
            repetitions = lengths.pop()
            if repetitions == 0:
                yield OperationResult(
                    descriptor.operation_id, ok=False,
                    message="empty bulk selection",
                )
                return
        for position in range(repetitions):
            params = {}
            for slot, sql_param, value_type in statement.params:
                value = inputs.get(slot)
                if slot in list_slots:
                    value = value[position]
                try:
                    params[sql_param] = coerce_value(value, value_type)
                except (TypeError, ValueError):
                    yield OperationResult(
                        descriptor.operation_id, ok=False,
                        message=f"bad value for {slot!r}: {value!r}",
                    )
                    return
            yield params

    def _after_success(self, descriptor: OperationDescriptor,
                       ctx: RuntimeContext) -> None:
        """§6: 'the implementation of operations automatically
        invalidates the affected cached objects' — on every cache
        level (bean, fragment, page) through the invalidation bus.

        With commit-driven invalidation enabled, *entity* write sets
        already rode the storage engine's commit stream (published by
        the commit this follows), so only the descriptor's *role*
        write sets — invisible to the storage tier — go out here."""
        if ctx.commit_invalidation_enabled:
            if descriptor.writes_roles:
                ctx.invalidate_writes((), descriptor.writes_roles)
            return
        ctx.invalidate_writes(
            descriptor.writes_entities, descriptor.writes_roles
        )


class CreateOperationService(_StatementOperationService):
    kind = "create"
    zero_rows_is_ko = False  # INSERT failures surface as exceptions


class DeleteOperationService(_StatementOperationService):
    kind = "delete"


class ModifyOperationService(_StatementOperationService):
    kind = "modify"


class ConnectOperationService(_StatementOperationService):
    kind = "connect"


class DisconnectOperationService(_StatementOperationService):
    kind = "disconnect"


class LoginOperationService(OperationServiceBase):
    """Authenticates via the descriptor's user query and binds the user
    to the session (§1's session-level personalization)."""

    kind = "login"

    def execute(self, descriptor: OperationDescriptor, inputs: dict,
                ctx: RuntimeContext, session) -> OperationResult:
        username = inputs.get("username")
        password = inputs.get("password")
        if not username or password is None:
            return OperationResult(
                descriptor.operation_id, ok=False, message="missing credentials"
            )
        rows = ctx.query(
            descriptor.user_query,
            {"username": username, "password": password},
        )
        row = rows.first()
        if row is None:
            return OperationResult(
                descriptor.operation_id, ok=False, message="invalid credentials"
            )
        session.login(user_oid=row["oid"], username=str(username))
        ctx.stats.increment("operations_executed")
        return OperationResult(
            descriptor.operation_id, ok=True, outputs={"oid": row["oid"]}
        )


class LogoutOperationService(OperationServiceBase):
    kind = "logout"

    def execute(self, descriptor: OperationDescriptor, inputs: dict,
                ctx: RuntimeContext, session) -> OperationResult:
        session.logout()
        ctx.stats.increment("operations_executed")
        return OperationResult(descriptor.operation_id, ok=True)


#: kind → service instance.
OPERATION_SERVICES: dict[str, OperationServiceBase] = {
    service.kind: service
    for service in (
        CreateOperationService(),
        DeleteOperationService(),
        ModifyOperationService(),
        ConnectOperationService(),
        DisconnectOperationService(),
        LoginOperationService(),
        LogoutOperationService(),
    )
}
