"""Content-unit service implementations.

One class per WebML unit kind, each "parametric with respect to the
features of individual units, like the SQL query to perform, the input
parameters of such a query, and the properties of the output data bean"
(§4).  The descriptor supplies those parameters; the class supplies the
kind's computation shape.
"""

from __future__ import annotations

import math

from repro.descriptors import UnitDescriptor
from repro.services.base import RuntimeContext, UnitServiceBase
from repro.services.batching import load_grouped, query_list_param
from repro.services.beans import UnitBean


def _project(row: dict, properties) -> dict:
    """Shape a result row into bean properties (name ← column)."""
    return {prop.name: row.get(prop.column) for prop in properties}


def _fetch_rows(descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext):
    """The unit's rows: one query normally; when an input holds a list
    (a multichoice selection fed through a transport link) and the
    descriptor allows batching, a single IN-list query over the set."""
    if descriptor.batched:
        batched = query_list_param(ctx, descriptor.query, inputs)
        if batched is not None:
            return batched
    return ctx.query(descriptor.query, inputs)


class DataUnitService(UnitServiceBase):
    """Publishes one object; its outputs expose the object's values so
    transport links can feed sibling units (Figure 1's dashed arrow)."""

    kind = "data"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        rows = ctx.query(descriptor.query, inputs)
        first = rows.first()
        if first is not None:
            bean.current = _project(first, descriptor.properties)
            bean.outputs = dict(bean.current)
        return bean


class IndexUnitService(UnitServiceBase):
    """Publishes a list; the *current selection* (first row by default,
    or the row named by the ``selected`` input) drives its outputs."""

    kind = "index"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        result = _fetch_rows(descriptor, inputs, ctx)
        bean.rows = [_project(row, descriptor.properties) for row in result]
        selected = inputs.get("selected")
        current = None
        if selected is not None:
            current = next(
                (r for r in bean.rows if r.get("oid") == selected), None
            )
        if current is None and bean.rows:
            current = bean.rows[0]
        if current is not None:
            bean.outputs["oid"] = current.get("oid")
        return bean


class MultidataUnitService(UnitServiceBase):
    kind = "multidata"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        result = _fetch_rows(descriptor, inputs, ctx)
        bean.rows = [_project(row, descriptor.properties) for row in result]
        return bean


class MultichoiceUnitService(IndexUnitService):
    """An index whose output is the set of checked oids (defaults to
    the ``oids`` input when the page round-trips a selection)."""

    kind = "multichoice"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = super().compute(descriptor, inputs, ctx)
        bean.kind = self.kind
        bean.outputs = {"oids": inputs.get("oids") or []}
        return bean


class ScrollerUnitService(UnitServiceBase):
    """Block-scrolls over the selected instances."""

    kind = "scroller"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        block_size = descriptor.block_size or 10
        query_inputs = {k: v for k, v in inputs.items() if k != "block"}
        total = ctx.query(descriptor.count_query, query_inputs).scalar() or 0
        block_count = max(1, math.ceil(total / block_size))
        block = inputs.get("block") or 1
        block = max(1, min(int(block), block_count))
        offset = (block - 1) * block_size
        paged_sql = f"{descriptor.query} LIMIT {block_size} OFFSET {offset}"
        result = ctx.query(paged_sql, query_inputs)
        bean.rows = [_project(row, descriptor.properties) for row in result]
        bean.total = total
        bean.block = block
        bean.block_count = block_count
        bean.outputs = {"block": block, "block_count": block_count}
        return bean


class EntryUnitService(UnitServiceBase):
    """Builds the form model; inputs prefill fields (edit forms)."""

    kind = "entry"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        bean.fields = [
            {**field_spec, "value": inputs.get(field_spec["name"], "")}
            for field_spec in descriptor.entry_fields
        ]
        bean.outputs = {
            field_spec["name"]: inputs.get(field_spec["name"])
            for field_spec in descriptor.entry_fields
        }
        return bean


class HierarchicalIndexService(UnitServiceBase):
    """Figure 1's nested index: computes the root level, then expands
    the hierarchy level by level via the per-level queries (``:parent``).

    With ``descriptor.batched`` (the default) each level is one IN-list
    query over every parent at that depth — O(levels) queries instead of
    O(rows).  When the level query resists the rewrite the per-parent
    loop is kept, so the bean is identical either way."""

    kind = "hierarchical"

    def compute(self, descriptor: UnitDescriptor, inputs: dict,
                ctx: RuntimeContext) -> UnitBean:
        bean = UnitBean(descriptor.unit_id, descriptor.name, self.kind)
        result = ctx.query(descriptor.query, inputs)
        bean.rows = [_project(row, descriptor.properties) for row in result]
        self._expand(bean.rows, 0, descriptor, ctx)
        if bean.rows:
            bean.outputs["oid"] = bean.rows[0].get("oid")
        return bean

    def _expand(self, rows: list[dict], level_index: int,
                descriptor: UnitDescriptor, ctx: RuntimeContext) -> None:
        if level_index >= len(descriptor.levels) or not rows:
            return
        level = descriptor.levels[level_index]
        grouped = None
        if descriptor.batched:
            grouped = load_grouped(
                ctx, level.query, "parent", [row["oid"] for row in rows]
            )
        if grouped is None:  # rewrite refused: per-parent fallback
            for row in rows:
                children = ctx.query(level.query, {"parent": row["oid"]})
                row["_children"] = [
                    _project(child, level.properties) for child in children
                ]
        else:
            for row in rows:
                row["_children"] = [
                    _project(child, level.properties)
                    for child in grouped.get(row["oid"], [])
                ]
        next_rows = [child for row in rows for child in row["_children"]]
        self._expand(next_rows, level_index + 1, descriptor, ctx)


#: kind → service instance; the registry the generic dispatcher consults.
CONTENT_UNIT_SERVICES: dict[str, UnitServiceBase] = {
    service.kind: service
    for service in (
        DataUnitService(),
        IndexUnitService(),
        MultidataUnitService(),
        MultichoiceUnitService(),
        ScrollerUnitService(),
        EntryUnitService(),
        HierarchicalIndexService(),
    )
}
