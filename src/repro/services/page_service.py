"""The generic page service.

§3: "The page service is a business function supporting the computation
of a page.  It exposes a single function computePage(), invoked to carry
out the parameter propagation and unit computation process."  §4 makes
it generic: one class, parameterized by the page descriptor's topology.

``compute_page`` walks the descriptor's computation order, resolves each
unit's input slots (from the HTTP request or from previously computed
unit beans, per the slot bindings), and invokes the generic unit
service.  The result — all unit beans plus the page's navigation — is
what the View renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors import PageDescriptor
from repro.services.base import RuntimeContext
from repro.services.beans import UnitBean
from repro.services.generic import GenericUnitService


@dataclass
class PageResult:
    """Everything the View needs to render one page."""

    page_id: str
    name: str
    beans: dict[str, UnitBean] = field(default_factory=dict)
    navigation: list = field(default_factory=list)
    layout_category: str = "one-column"

    def bean(self, unit_id: str) -> UnitBean:
        return self.beans[unit_id]

    def bean_named(self, unit_name: str) -> UnitBean:
        for bean in self.beans.values():
            if bean.name == unit_name:
                return bean
        raise KeyError(f"no bean for unit named {unit_name!r}")


class GenericPageService:
    """computePage() for any page, driven by its descriptor."""

    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx
        self.unit_service = GenericUnitService(ctx)

    def compute_page(self, descriptor: PageDescriptor,
                     request_params: dict) -> PageResult:
        result = PageResult(
            page_id=descriptor.page_id,
            name=descriptor.name,
            navigation=list(descriptor.navigation),
            layout_category=descriptor.layout_category,
        )
        for unit_id in descriptor.unit_order:
            unit_descriptor = self.ctx.registry.unit(unit_id)
            inputs = self._resolve_inputs(
                descriptor, unit_id, request_params, result.beans
            )
            result.beans[unit_id] = self.unit_service.compute(
                unit_descriptor, inputs
            )
        self.ctx.stats.increment("pages_computed")
        return result

    def _resolve_inputs(
        self,
        descriptor: PageDescriptor,
        unit_id: str,
        request_params: dict,
        beans: dict[str, UnitBean],
    ) -> dict:
        inputs: dict = {}
        for binding in descriptor.bindings_for(unit_id):
            if binding.source == "request":
                value = request_params.get(binding.request_param)
            else:
                source_bean = beans.get(binding.source_unit_id)
                value = (
                    source_bean.output(binding.source_output)
                    if source_bean is not None else None
                )
            if value is not None:
                inputs[binding.slot] = value
        # Selection/scrolling controls always come from the request.
        for control in ("selected", "block", "oids"):
            control_param = f"{unit_id}.{control}"
            if control_param in request_params:
                inputs[control] = _coerce_control(
                    control, request_params[control_param]
                )
        return inputs


def _coerce_control(control: str, value):
    """Request control values arrive as strings; normalize them."""
    if control in ("selected", "block"):
        try:
            return int(value)
        except (TypeError, ValueError):
            return None
    if control == "oids":
        if isinstance(value, (list, tuple)):
            return [int(v) for v in value]
        return [int(v) for v in str(value).split(",") if v.strip()]
    return value
