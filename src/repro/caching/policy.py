"""Cache policies.

A unit tagged as cached specifies "the associate cache invalidation
policy" (§6).  Two policies are supported:

- ``model-driven`` — entries live until an operation writes one of the
  entities/relationships the unit depends on (the paper's automatic
  invalidation);
- ``ttl:<seconds>`` — entries additionally expire after a fixed
  lifetime (for content whose writers bypass the operations layer,
  e.g. external feeds).

Model-driven invalidation always applies; TTL merely adds an upper
bound on staleness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheError


@dataclass(frozen=True)
class CachePolicy:
    name: str
    ttl_seconds: float | None = None

    def expires_at(self, now: float) -> float | None:
        if self.ttl_seconds is None:
            return None
        return now + self.ttl_seconds


MODEL_DRIVEN = CachePolicy("model-driven")


def parse_policy(text: str) -> CachePolicy:
    """Parse a descriptor's cachePolicy attribute."""
    if text == "model-driven":
        return MODEL_DRIVEN
    if text.startswith("ttl:"):
        try:
            seconds = float(text[4:])
        except ValueError:
            raise CacheError(f"bad TTL in cache policy {text!r}") from None
        if seconds <= 0:
            raise CacheError(f"TTL must be positive in {text!r}")
        return CachePolicy("ttl", ttl_seconds=seconds)
    raise CacheError(f"unknown cache policy {text!r}")
