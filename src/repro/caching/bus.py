"""The invalidation bus: one write notification, every cache level.

§6's automatic invalidation — "the implementation of operations
automatically invalidates the affected cached objects" — must reach
*all three* cache levels, or a write survives somewhere and a reader
observes stale content.  Operation services therefore publish their
descriptor's write sets to this bus instead of poking individual
caches.

Registration order matters and is deepest-tier first (bean →
fragment → page): when the page cache is finally invalidated, the
levels a rebuilding request will consult are already clean, and the
generation guard on each level blocks any build that started before
its invalidation.
"""

from __future__ import annotations

import threading


class InvalidationBus:
    """Fans ``invalidate_writes``/``flush`` out to registered caches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._targets: list[tuple[str, object]] = []

    def register(self, name: str, cache) -> None:
        """Attach a cache level (anything with ``invalidate_writes``);
        re-registering a name replaces the previous target."""
        with self._lock:
            self._targets = [
                (n, c) for n, c in self._targets if n != name
            ] + [(name, cache)]

    def targets(self) -> list[str]:
        with self._lock:
            return [name for name, _cache in self._targets]

    def invalidate_writes(self, entities=(), roles=()) -> dict[str, int]:
        """Publish one write; returns dropped-entry counts per level."""
        with self._lock:
            targets = list(self._targets)
        return {
            name: cache.invalidate_writes(entities, roles)
            for name, cache in targets
        }

    def flush(self) -> dict[str, int]:
        with self._lock:
            targets = list(self._targets)
        return {name: cache.flush() for name, cache in targets}
