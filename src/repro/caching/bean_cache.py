"""Level-2 cache: unit beans with model-driven invalidation.

The decisive §6 advantage of caching *in the business tier*: cached
beans spare the data-extraction queries themselves, and "since a
conceptual model of the application is available, which clearly exposes
the Entity or Relationship on which the content of a unit depends, and
the operations that may act on such content, the implementation of
operations automatically invalidates the affected cached objects,
sparing to the developer the need of managing a business-tier cache in
his application code."

Each entry carries the entity and role dependency sets recorded in the
unit descriptor; :meth:`invalidate_writes` drops exactly the dependent
entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.caching.policy import parse_policy
from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


@dataclass
class _Entry:
    bean: object
    entities: frozenset
    roles: frozenset
    expires_at: float | None


class UnitBeanCache:
    """The business-tier cache the generic unit service consults."""

    def __init__(self, max_entries: int = 4096, clock=None):
        if max_entries <= 0:
            raise CacheError("bean cache needs a positive capacity")
        self.max_entries = max_entries
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._entries: OrderedDict[object, _Entry] = OrderedDict()
        # dependency indexes: name → set of keys
        self._by_entity: dict[str, set] = {}
        self._by_role: dict[str, set] = {}

    # -- the RuntimeContext cache protocol ----------------------------------

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.expires_at is not None and self.clock.now() >= entry.expires_at:
            self._remove(key)
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        bean = entry.bean
        bean.from_cache = True
        return bean

    def put(self, key, bean, entities=(), roles=(),
            policy: str = "model-driven") -> None:
        parsed = parse_policy(policy)
        if key in self._entries:
            self._remove(key)
        entry = _Entry(
            bean=bean,
            entities=frozenset(entities),
            roles=frozenset(roles),
            expires_at=parsed.expires_at(self.clock.now()),
        )
        self._entries[key] = entry
        for entity in entry.entities:
            self._by_entity.setdefault(entity, set()).add(key)
        for role in entry.roles:
            self._by_role.setdefault(role, set()).add(key)
        self.stats.puts += 1
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            self._remove(oldest)
            self.stats.evictions += 1

    def invalidate_writes(self, entities=(), roles=()) -> int:
        """Drop every entry depending on any written entity/role."""
        keys: set = set()
        for entity in entities:
            keys |= self._by_entity.get(entity, set())
        for role in roles:
            keys |= self._by_role.get(role, set())
        for key in keys:
            self._remove(key)
        self.stats.invalidations += len(keys)
        return len(keys)

    # -- maintenance ---------------------------------------------------------

    def _remove(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for entity in entry.entities:
            holders = self._by_entity.get(entity)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_entity[entity]
        for role in entry.roles:
            holders = self._by_role.get(role)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_role[role]

    def flush(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self._by_entity.clear()
        self._by_role.clear()
        self.stats.invalidations += count
        return count

    def dependents_of(self, entity: str | None = None,
                      role: str | None = None) -> int:
        """How many live entries depend on the given entity/role."""
        if entity is not None:
            return len(self._by_entity.get(entity, set()))
        if role is not None:
            return len(self._by_role.get(role, set()))
        return 0

    def __len__(self) -> int:
        return len(self._entries)
