"""Level-2 cache: unit beans with model-driven invalidation.

The decisive §6 advantage of caching *in the business tier*: cached
beans spare the data-extraction queries themselves, and "since a
conceptual model of the application is available, which clearly exposes
the Entity or Relationship on which the content of a unit depends, and
the operations that may act on such content, the implementation of
operations automatically invalidates the affected cached objects,
sparing to the developer the need of managing a business-tier cache in
his application code."

Each entry carries the entity and role dependency sets recorded in the
unit descriptor; :meth:`invalidate_writes` drops exactly the dependent
entries.

Thread safety: every public method holds the cache lock, and
:meth:`get_or_compute` adds single-flight stampede protection — when a
popular bean expires, exactly one thread recomputes it while concurrent
requesters wait for the result.  An invalidation-generation counter
ensures a bean computed from pre-invalidation data is never stored
after an operation invalidated its dependencies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.caching.policy import parse_policy
from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


@dataclass
class _Entry:
    bean: object
    entities: frozenset
    roles: frozenset
    expires_at: float | None


class UnitBeanCache:
    """The business-tier cache the generic unit service consults."""

    def __init__(self, max_entries: int = 4096, clock=None):
        if max_entries <= 0:
            raise CacheError("bean cache needs a positive capacity")
        self.max_entries = max_entries
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[object, _Entry] = OrderedDict()
        # dependency indexes: name → set of keys
        self._by_entity: dict[str, set] = {}
        self._by_role: dict[str, set] = {}
        # single-flight bookkeeping: key → Event of the computing thread
        self._flight_lock = threading.Lock()
        self._in_flight: dict[object, threading.Event] = {}
        # bumped by every invalidation; guards stale put-after-invalidate
        self._generation = 0

    # -- the RuntimeContext cache protocol ----------------------------------

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.increment("misses")
                return None
            if (entry.expires_at is not None
                    and self.clock.now() >= entry.expires_at):
                self._remove(key)
                self.stats.increment("expirations")
                self.stats.increment("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.increment("hits")
            bean = entry.bean
            bean.from_cache = True
            return bean

    def put(self, key, bean, entities=(), roles=(),
            policy: str = "model-driven") -> None:
        parsed = parse_policy(policy)
        with self._lock:
            if key in self._entries:
                self._remove(key)
            entry = _Entry(
                bean=bean,
                entities=frozenset(entities),
                roles=frozenset(roles),
                expires_at=parsed.expires_at(self.clock.now()),
            )
            self._entries[key] = entry
            for entity in entry.entities:
                self._by_entity.setdefault(entity, set()).add(key)
            for role in entry.roles:
                self._by_role.setdefault(role, set()).add(key)
            self.stats.increment("puts")
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self.stats.increment("evictions")

    def get_or_compute(self, key, compute, entities=(), roles=(),
                       policy: str = "model-driven"):
        """Return the cached bean, or compute it exactly once.

        On a miss, the first thread becomes the *leader* and runs
        ``compute()`` (outside the cache lock — it usually queries the
        database); concurrent requesters of the same key wait for the
        leader and then re-read the cache instead of stampeding the data
        tier.  The result is cached only if no invalidation touched the
        cache meanwhile, so a bean computed from pre-invalidation data
        is never served after the invalidation.
        """
        first_attempt = True
        while True:
            bean = self.get(key)
            if bean is not None:
                if not first_attempt:
                    self.stats.increment("coalesced")
                return bean
            with self._flight_lock:
                leader_event = self._in_flight.get(key)
                if leader_event is None:
                    my_event = threading.Event()
                    self._in_flight[key] = my_event
            if leader_event is not None:
                leader_event.wait()
                first_attempt = False
                continue
            try:
                with self._lock:
                    generation = self._generation
                bean = compute()
                if bean is not None:
                    with self._lock:
                        if self._generation == generation:
                            self.put(key, bean, entities=entities,
                                     roles=roles, policy=policy)
                return bean
            finally:
                with self._flight_lock:
                    del self._in_flight[key]
                my_event.set()

    def invalidate_writes(self, entities=(), roles=()) -> int:
        """Drop every entry depending on any written entity/role."""
        with self._lock:
            self._generation += 1
            keys: set = set()
            for entity in entities:
                keys |= self._by_entity.get(entity, set())
            for role in roles:
                keys |= self._by_role.get(role, set())
            for key in keys:
                self._remove(key)
            self.stats.increment("invalidations", len(keys))
            return len(keys)

    # -- maintenance ---------------------------------------------------------

    def _remove(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for entity in entry.entities:
            holders = self._by_entity.get(entity)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_entity[entity]
        for role in entry.roles:
            holders = self._by_role.get(role)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_role[role]

    def flush(self) -> int:
        with self._lock:
            self._generation += 1
            count = len(self._entries)
            self._entries.clear()
            self._by_entity.clear()
            self._by_role.clear()
            self.stats.increment("invalidations", count)
            return count

    def dependents_of(self, entity: str | None = None,
                      role: str | None = None) -> int:
        """How many live entries depend on the given entity/role."""
        with self._lock:
            if entity is not None:
                return len(self._by_entity.get(entity, set()))
            if role is not None:
                return len(self._by_role.get(role, set()))
            return 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
