"""Level-0 cache: whole rendered pages.

The fragment cache (level 1) spares markup generation and the bean
cache (level 2) spares the data-extraction queries — but a hit still
pays page-service orchestration, slot resolution, and template
assembly.  The page cache closes the loop: the *entire* rendered
response is stored, keyed by everything that may legally change the
bytes — the page, the canonicalized request parameters, the device
class, and the authenticated principal.

Like the bean cache, it is model-driven (§6): every entry carries the
union of the entity/role dependency sets of the page's unit
descriptors, and ``invalidate_writes`` drops exactly the dependent
pages.  ``scoped=False`` degrades invalidation to a global flush — the
baseline E15 compares against.

Entries carry the content digest (the HTTP ``ETag``) and a
deterministic gzip body, so conditional and compressed delivery costs
nothing on a hit.  LRU bounded, optional TTL, single-flight builds
with the same invalidation-generation guard as the other levels.

Invalidation-ordering invariants (what keeps stale pages impossible):

- the :class:`~repro.caching.bus.InvalidationBus` notifies cache
  levels in registration order — bean before fragment before page —
  so when the page level starts rebuilding, the deeper levels it will
  read through are already clean; registering the page cache first
  would let a rebuilding page resurrect stale beans;
- every entry records the invalidation *generation* current when its
  build began; a write landing mid-build bumps the generation, and the
  finished entry is then discarded instead of stored — a build can
  never publish data older than the last write it raced with;
- ``invalidate_writes`` runs synchronously in the writing request's
  thread, after the DML commits and *before* the operation's redirect
  is produced — so the page the writer is bounced to is rebuilt, and a
  session that just wrote always re-reads its own write (§6's
  consistency requirement).
"""

from __future__ import annotations

import gzip
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


def canonical_params(params: dict) -> tuple:
    """A hashable, order-insensitive rendition of request parameters.

    List values (checkbox groups) become tuples; everything else is
    kept verbatim — two requests differing only in parameter order map
    to the same page-cache key.
    """
    return tuple(sorted(
        (name, tuple(value) if isinstance(value, (list, tuple)) else value)
        for name, value in params.items()
    ))


def content_etag(body: str) -> str:
    """The strong validator of a rendered body (RFC 7232 quoted form)."""
    return f'"{hashlib.sha1(body.encode()).hexdigest()}"'


@dataclass
class PageEntry:
    """One cached response: the body plus its delivery by-products."""

    body: str
    etag: str
    gzip_body: bytes
    entities: frozenset
    roles: frozenset
    expires_at: float | None = None


class PageCache:
    """The level-0 store consulted by the front controller."""

    def __init__(self, max_entries: int = 512,
                 ttl_seconds: float | None = None,
                 scoped: bool = True, clock=None):
        if max_entries <= 0:
            raise CacheError("page cache needs a positive capacity")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.scoped = scoped
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[object, PageEntry] = OrderedDict()
        self._by_entity: dict[str, set] = {}
        self._by_role: dict[str, set] = {}
        self._flight_lock = threading.Lock()
        self._in_flight: dict[object, threading.Event] = {}
        self._generation = 0

    # -- entry construction ---------------------------------------------------

    def make_entry(self, body: str, entities=(), roles=()) -> PageEntry:
        """Digest and compress a rendered body once, at store time.

        ``mtime=0`` keeps the gzip bytes deterministic, so repeated
        builds of identical content produce identical wire bytes.
        """
        return PageEntry(
            body=body,
            etag=content_etag(body),
            gzip_body=gzip.compress(body.encode(), mtime=0),
            entities=frozenset(entities),
            roles=frozenset(roles),
        )

    # -- the cache protocol ---------------------------------------------------

    def get(self, key) -> PageEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.increment("misses")
                return None
            if (entry.expires_at is not None
                    and self.clock.now() >= entry.expires_at):
                self._remove(key)
                self.stats.increment("expirations")
                self.stats.increment("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.increment("hits")
            return entry

    def peek(self, key) -> PageEntry | None:
        """A hit-or-nothing read for the edge fast path.

        Hits count (and refresh LRU order) exactly like :meth:`get`;
        a miss counts *nothing* — the caller is about to fall through
        to the full path, whose :meth:`get_or_build` records the miss
        once.  Without this, every inline probe of an uncached page
        would double-count misses and skew the E15/E19 hit ratios.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if (entry.expires_at is not None
                    and self.clock.now() >= entry.expires_at):
                self._remove(key)
                self.stats.increment("expirations")
                return None
            self._entries.move_to_end(key)
            self.stats.increment("hits")
            return entry

    def put(self, key, entry: PageEntry) -> None:
        with self._lock:
            if key in self._entries:
                self._remove(key)
            if self.ttl_seconds is not None:
                entry.expires_at = self.clock.now() + self.ttl_seconds
            self._entries[key] = entry
            for entity in entry.entities:
                self._by_entity.setdefault(entity, set()).add(key)
            for role in entry.roles:
                self._by_role.setdefault(role, set()).add(key)
            self.stats.increment("puts")
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self.stats.increment("evictions")

    def get_or_build(self, key, build) -> PageEntry:
        """Return the cached entry, or build it exactly once.

        ``build()`` runs the full request path (page service + view),
        so concurrent misses of a popular page must not stampede it:
        one leader builds, the rest wait and re-read.  An entry built
        from pre-invalidation data is never stored after an operation
        invalidated its dependencies (generation guard).
        """
        first_attempt = True
        while True:
            entry = self.get(key)
            if entry is not None:
                if not first_attempt:
                    self.stats.increment("coalesced")
                return entry
            with self._flight_lock:
                leader_event = self._in_flight.get(key)
                if leader_event is None:
                    my_event = threading.Event()
                    self._in_flight[key] = my_event
            if leader_event is not None:
                leader_event.wait()
                first_attempt = False
                continue
            try:
                with self._lock:
                    generation = self._generation
                entry = build()
                if entry is not None:
                    with self._lock:
                        if self._generation == generation:
                            self.put(key, entry)
                return entry
            finally:
                with self._flight_lock:
                    del self._in_flight[key]
                my_event.set()

    # -- streaming builds -----------------------------------------------------
    #
    # The chunked delivery path cannot run inside get_or_build: the
    # body does not exist until the stream has been fully written to
    # the client.  These three methods expose the same single-flight +
    # generation discipline as explicit steps, so a stream holds the
    # page's flight slot while rendering (concurrent misses wait in
    # get_or_build and reuse the stored entry) and a store is refused
    # when an invalidation raced the build.

    @property
    def generation(self) -> int:
        """The invalidation generation; capture before a detached build."""
        with self._lock:
            return self._generation

    def begin_flight(self, key) -> bool:
        """Claim the single-flight slot for ``key``.

        Returns True when this caller is the leader; False when
        another build is already in flight (the caller should fall
        back to :meth:`get_or_build` and wait like any follower).
        Leaders MUST call :meth:`finish_flight` — streaming callers do
        so from the chunk iterator's ``finally``, which is why a
        client disconnect (generator close) cannot wedge the page.
        """
        with self._flight_lock:
            if key in self._in_flight:
                return False
            self._in_flight[key] = threading.Event()
            return True

    def finish_flight(self, key) -> None:
        """Release the slot claimed by :meth:`begin_flight`, waking
        every follower parked in :meth:`get_or_build`."""
        with self._flight_lock:
            event = self._in_flight.pop(key, None)
        if event is not None:
            event.set()

    def put_if_current(self, key, entry: PageEntry, generation: int) -> bool:
        """Store ``entry`` unless an invalidation raced the build
        (same guard as :meth:`get_or_build`'s inline path)."""
        with self._lock:
            if self._generation != generation:
                return False
            self.put(key, entry)
            return True

    # -- model-driven invalidation --------------------------------------------

    def invalidate_writes(self, entities=(), roles=()) -> int:
        """Drop every page depending on any written entity/role.

        In ``scoped=False`` mode any write clears the whole cache —
        the behaviour of a cache without a conceptual model to consult.
        """
        if not self.scoped:
            if entities or roles:
                return self.flush()
            return 0
        with self._lock:
            self._generation += 1
            keys: set = set()
            for entity in entities:
                keys |= self._by_entity.get(entity, set())
            for role in roles:
                keys |= self._by_role.get(role, set())
            for key in keys:
                self._remove(key)
            self.stats.increment("invalidations", len(keys))
            return len(keys)

    def flush(self) -> int:
        with self._lock:
            self._generation += 1
            count = len(self._entries)
            self._entries.clear()
            self._by_entity.clear()
            self._by_role.clear()
            self.stats.increment("invalidations", count)
            return count

    # -- maintenance ----------------------------------------------------------

    def _remove(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for entity in entry.entities:
            holders = self._by_entity.get(entity)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_entity[entity]
        for role in entry.roles:
            holders = self._by_role.get(role)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_role[role]

    def dependents_of(self, entity: str | None = None,
                      role: str | None = None) -> int:
        with self._lock:
            if entity is not None:
                return len(self._by_entity.get(entity, set()))
            if role is not None:
                return len(self._by_role.get(role, set()))
            return 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
