"""Level-1 cache: template fragments (ESI-style).

"Last-generation cache technologies, like the Edge Side Include (ESI)
initiative, apply more sophisticated caching strategies, based on the
capability of marking fragments of the page template, which can be
cached individually and with different policies" (§6).

Keys are opaque (the template engine uses (unit, bean-digest)); values
are rendered HTML strings.  LRU bounded, optional TTL.  Thread-safe:
lookups and stores hold the cache lock, and :meth:`get_or_render`
single-flights the rendering of a missing fragment so concurrent
requests for the same page fragment render it once.

Invalidation is model-driven like the bean cache's: the template
engine stores each fragment with the entity/role dependency sets of
the unit that produced it, and :meth:`invalidate_writes` drops only
the dependent fragments.  ``scoped=False`` reverts to the historical
behaviour — any write flushes everything — kept as the E15 baseline.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


@dataclass
class _Fragment:
    html: str
    entities: frozenset
    roles: frozenset
    expires_at: float | None


class FragmentCache:
    def __init__(self, max_entries: int = 1024,
                 ttl_seconds: float | None = None,
                 scoped: bool = True, clock=None):
        if max_entries <= 0:
            raise CacheError("fragment cache needs a positive capacity")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.scoped = scoped
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[object, _Fragment] = OrderedDict()
        self._by_entity: dict[str, set] = {}
        self._by_role: dict[str, set] = {}
        self._flight_lock = threading.Lock()
        self._in_flight: dict[object, threading.Event] = {}
        self._generation = 0

    def get(self, key) -> str | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.increment("misses")
                return None
            if (entry.expires_at is not None
                    and self.clock.now() >= entry.expires_at):
                self._remove(key)
                self.stats.increment("expirations")
                self.stats.increment("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.increment("hits")
            return entry.html

    def put(self, key, html: str, entities=(), roles=()) -> None:
        with self._lock:
            if key in self._entries:
                self._remove(key)
            expires_at = (
                self.clock.now() + self.ttl_seconds
                if self.ttl_seconds is not None else None
            )
            entry = _Fragment(
                html=html,
                entities=frozenset(entities),
                roles=frozenset(roles),
                expires_at=expires_at,
            )
            self._entries[key] = entry
            for entity in entry.entities:
                self._by_entity.setdefault(entity, set()).add(key)
            for role in entry.roles:
                self._by_role.setdefault(role, set()).add(key)
            self.stats.increment("puts")
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self.stats.increment("evictions")

    def get_or_render(self, key, render, entities=(), roles=()) -> str:
        """Return the cached fragment, or render it exactly once.

        Concurrent requesters of a missing fragment wait for the first
        thread's ``render()`` instead of all rendering; an invalidation
        issued meanwhile keeps the late result out of the cache.
        """
        first_attempt = True
        while True:
            html = self.get(key)
            if html is not None:
                if not first_attempt:
                    self.stats.increment("coalesced")
                return html
            with self._flight_lock:
                leader_event = self._in_flight.get(key)
                if leader_event is None:
                    my_event = threading.Event()
                    self._in_flight[key] = my_event
            if leader_event is not None:
                leader_event.wait()
                first_attempt = False
                continue
            try:
                with self._lock:
                    generation = self._generation
                html = render()
                if html is not None:
                    with self._lock:
                        if self._generation == generation:
                            self.put(key, html, entities=entities,
                                     roles=roles)
                return html
            finally:
                with self._flight_lock:
                    del self._in_flight[key]
                my_event.set()

    def invalidate_writes(self, entities=(), roles=()) -> int:
        """Drop the fragments depending on any written entity/role.

        Fragment keys embed a digest of the bean content, so a stale
        fragment can never be served for *changed* content — scoped
        invalidation reclaims the memory and keeps the hit-rate
        statistics honest without the collateral damage of a flush.
        """
        if not self.scoped:
            if entities or roles:
                return self.flush()
            return 0
        with self._lock:
            self._generation += 1
            keys: set = set()
            for entity in entities:
                keys |= self._by_entity.get(entity, set())
            for role in roles:
                keys |= self._by_role.get(role, set())
            for key in keys:
                self._remove(key)
            self.stats.increment("invalidations", len(keys))
            return len(keys)

    def flush(self) -> int:
        with self._lock:
            self._generation += 1
            count = len(self._entries)
            self._entries.clear()
            self._by_entity.clear()
            self._by_role.clear()
            self.stats.increment("invalidations", count)
            return count

    def dependents_of(self, entity: str | None = None,
                      role: str | None = None) -> int:
        with self._lock:
            if entity is not None:
                return len(self._by_entity.get(entity, set()))
            if role is not None:
                return len(self._by_role.get(role, set()))
            return 0

    def _remove(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for entity in entry.entities:
            holders = self._by_entity.get(entity)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_entity[entity]
        for role in entry.roles:
            holders = self._by_role.get(role)
            if holders:
                holders.discard(key)
                if not holders:
                    del self._by_role[role]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
