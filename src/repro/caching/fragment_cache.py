"""Level-1 cache: template fragments (ESI-style).

"Last-generation cache technologies, like the Edge Side Include (ESI)
initiative, apply more sophisticated caching strategies, based on the
capability of marking fragments of the page template, which can be
cached individually and with different policies" (§6).

Keys are opaque (the template engine uses (unit, bean-digest)); values
are rendered HTML strings.  LRU bounded, optional TTL.  Thread-safe:
lookups and stores hold the cache lock, and :meth:`get_or_render`
single-flights the rendering of a missing fragment so concurrent
requests for the same page fragment render it once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


class FragmentCache:
    def __init__(self, max_entries: int = 1024,
                 ttl_seconds: float | None = None, clock=None):
        if max_entries <= 0:
            raise CacheError("fragment cache needs a positive capacity")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: OrderedDict[object, tuple[str, float | None]] = OrderedDict()
        self._flight_lock = threading.Lock()
        self._in_flight: dict[object, threading.Event] = {}
        self._generation = 0

    def get(self, key) -> str | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.increment("misses")
                return None
            html, expires_at = entry
            if expires_at is not None and self.clock.now() >= expires_at:
                del self._entries[key]
                self.stats.increment("expirations")
                self.stats.increment("misses")
                return None
            self._entries.move_to_end(key)
            self.stats.increment("hits")
            return html

    def put(self, key, html: str) -> None:
        with self._lock:
            expires_at = (
                self.clock.now() + self.ttl_seconds
                if self.ttl_seconds is not None else None
            )
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (html, expires_at)
            self.stats.increment("puts")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.increment("evictions")

    def get_or_render(self, key, render) -> str:
        """Return the cached fragment, or render it exactly once.

        Concurrent requesters of a missing fragment wait for the first
        thread's ``render()`` instead of all rendering; a ``flush``
        issued meanwhile keeps the late result out of the cache.
        """
        first_attempt = True
        while True:
            html = self.get(key)
            if html is not None:
                if not first_attempt:
                    self.stats.increment("coalesced")
                return html
            with self._flight_lock:
                leader_event = self._in_flight.get(key)
                if leader_event is None:
                    my_event = threading.Event()
                    self._in_flight[key] = my_event
            if leader_event is not None:
                leader_event.wait()
                first_attempt = False
                continue
            try:
                with self._lock:
                    generation = self._generation
                html = render()
                if html is not None:
                    with self._lock:
                        if self._generation == generation:
                            self.put(key, html)
                return html
            finally:
                with self._flight_lock:
                    del self._in_flight[key]
                my_event.set()

    def flush(self) -> int:
        with self._lock:
            self._generation += 1
            count = len(self._entries)
            self._entries.clear()
            self.stats.increment("invalidations", count)
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
