"""Level-1 cache: template fragments (ESI-style).

"Last-generation cache technologies, like the Edge Side Include (ESI)
initiative, apply more sophisticated caching strategies, based on the
capability of marking fragments of the page template, which can be
cached individually and with different policies" (§6).

Keys are opaque (the template engine uses (unit, bean-digest)); values
are rendered HTML strings.  LRU bounded, optional TTL.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.caching.stats import CacheStats
from repro.errors import CacheError
from repro.util import SystemClock


class FragmentCache:
    def __init__(self, max_entries: int = 1024,
                 ttl_seconds: float | None = None, clock=None):
        if max_entries <= 0:
            raise CacheError("fragment cache needs a positive capacity")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.clock = clock or SystemClock()
        self.stats = CacheStats()
        self._entries: OrderedDict[object, tuple[str, float | None]] = OrderedDict()

    def get(self, key) -> str | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        html, expires_at = entry
        if expires_at is not None and self.clock.now() >= expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return html

    def put(self, key, html: str) -> None:
        expires_at = (
            self.clock.now() + self.ttl_seconds
            if self.ttl_seconds is not None else None
        )
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (html, expires_at)
        self.stats.puts += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    def __len__(self) -> int:
        return len(self._entries)
