"""The two-level cache architecture (paper §6).

Level 1 — the **fragment cache**: an ESI-style template-fragment store.
It spares the markup generation of cached fragments but, as §6 points
out, "caching fragments of the page template may spare only the
computation of markup from query results, not the execution of the data
extraction queries" — the action classes run before the template.

Level 2 — the **unit-bean cache**: "WebRatio caches the data beans
produced by the action invocations, which typically include the result
of data access queries, and make them reusable by multiple requests."
Because the conceptual model exposes what each unit depends on,
"the implementation of operations automatically invalidates the
affected cached objects".

- :mod:`repro.caching.policy` — TTL / model-driven policies,
- :mod:`repro.caching.fragment_cache` — level 1,
- :mod:`repro.caching.bean_cache` — level 2 with the model-driven
  dependency index,
- :mod:`repro.caching.stats` — hit/miss/invalidation counters.
"""

from repro.caching.bean_cache import UnitBeanCache
from repro.caching.fragment_cache import FragmentCache
from repro.caching.policy import CachePolicy, parse_policy
from repro.caching.stats import CacheStats

__all__ = [
    "UnitBeanCache",
    "FragmentCache",
    "CachePolicy",
    "parse_policy",
    "CacheStats",
]
