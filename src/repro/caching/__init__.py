"""The two-level cache architecture (paper §6).

Level 1 — the **fragment cache**: an ESI-style template-fragment store.
It spares the markup generation of cached fragments but, as §6 points
out, "caching fragments of the page template may spare only the
computation of markup from query results, not the execution of the data
extraction queries" — the action classes run before the template.

Level 2 — the **unit-bean cache**: "WebRatio caches the data beans
produced by the action invocations, which typically include the result
of data access queries, and make them reusable by multiple requests."
Because the conceptual model exposes what each unit depends on,
"the implementation of operations automatically invalidates the
affected cached objects".

Level 0 — the **page cache**: whole rendered responses, keyed by
(page, canonical parameters, device, principal), carrying the union of
the page's unit dependency sets so the same model-driven invalidation
applies to full pages.

All levels implement one ``invalidate_writes(entities, roles)``
protocol and are invalidated together through the
:class:`~repro.caching.bus.InvalidationBus` an operation publishes to.

- :mod:`repro.caching.policy` — TTL / model-driven policies,
- :mod:`repro.caching.page_cache` — level 0 with ETag/gzip by-products,
- :mod:`repro.caching.fragment_cache` — level 1 with the scoped
  dependency index,
- :mod:`repro.caching.bean_cache` — level 2 with the model-driven
  dependency index,
- :mod:`repro.caching.bus` — the write-notification fan-out,
- :mod:`repro.caching.stats` — hit/miss/invalidation counters.
"""

from repro.caching.bean_cache import UnitBeanCache
from repro.caching.bus import InvalidationBus
from repro.caching.fragment_cache import FragmentCache
from repro.caching.page_cache import (
    PageCache,
    PageEntry,
    canonical_params,
    content_etag,
)
from repro.caching.policy import CachePolicy, parse_policy
from repro.caching.stats import CacheStats

__all__ = [
    "UnitBeanCache",
    "FragmentCache",
    "PageCache",
    "PageEntry",
    "InvalidationBus",
    "canonical_params",
    "content_etag",
    "CachePolicy",
    "parse_policy",
    "CacheStats",
]
