"""Cache statistics.

Counters are bumped through :meth:`AtomicCounters.increment` so that
worker threads serving requests concurrently never lose an update.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.concurrency import AtomicCounters


@dataclass
class CacheStats(AtomicCounters):
    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidations: int = 0
    evictions: int = 0
    expirations: int = 0
    #: lookups that waited for another thread's in-flight computation
    #: instead of recomputing (single-flight stampede protection)
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """Snapshot for the observability registry's collectors."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "puts": self.puts,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalidations = 0
        self.evictions = 0
        self.expirations = 0
        self.coalesced = 0
