"""Small shared utilities: naming, ordering, clocks, concurrency."""

from repro.util.concurrency import AtomicCounters, ReadWriteLock
from repro.util.identifiers import (
    camel_to_snake,
    make_identifier,
    snake_to_camel,
    unique_name,
)
from repro.util.ordered import CycleError, stable_topological_sort
from repro.util.timing import SystemClock, VirtualClock

__all__ = [
    "camel_to_snake",
    "snake_to_camel",
    "make_identifier",
    "unique_name",
    "stable_topological_sort",
    "CycleError",
    "VirtualClock",
    "SystemClock",
    "ReadWriteLock",
    "AtomicCounters",
]
