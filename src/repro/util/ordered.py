"""Deterministic topological ordering.

The generic page service must compute a page's units in dependency order
(a unit can only run once the units feeding its input parameters have
run).  The paper calls this "computing units in the proper order and with
the correct input parameters" (Section 4).  We need the order to be
*stable*: among ready units, preserve the model's declaration order, so
generated artifacts and cached plans are reproducible run to run.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import TypeVar

from repro.errors import ReproError

T = TypeVar("T", bound=Hashable)


class CycleError(ReproError):
    """The dependency graph contains a cycle; ``members`` are the nodes
    that could not be ordered."""

    def __init__(self, members: list):
        super().__init__(f"dependency cycle among: {members!r}")
        self.members = members


def stable_topological_sort(
    nodes: Iterable[T], dependencies: Mapping[T, Iterable[T]]
) -> list[T]:
    """Order ``nodes`` so every node follows all its ``dependencies``.

    ``dependencies[n]`` lists the nodes that must precede ``n``.
    Dependencies on nodes outside ``nodes`` are ignored (they are treated
    as already satisfied — e.g. a unit fed only by the HTTP request).

    Among simultaneously-ready nodes, input order is preserved (Kahn's
    algorithm with a FIFO ready list), which makes the result deterministic.

    Raises :class:`CycleError` if a cycle prevents a complete ordering.
    """
    node_list = list(nodes)
    node_set = set(node_list)
    indegree: dict[T, int] = {n: 0 for n in node_list}
    dependents: dict[T, list[T]] = {n: [] for n in node_list}

    for node in node_list:
        for dep in dependencies.get(node, ()):
            if dep in node_set and dep != node:
                indegree[node] += 1
                dependents[dep].append(node)

    ready = [n for n in node_list if indegree[n] == 0]
    order: list[T] = []
    cursor = 0
    while cursor < len(ready):
        node = ready[cursor]
        cursor += 1
        order.append(node)
        for dependent in dependents[node]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)

    if len(order) != len(node_list):
        leftovers = [n for n in node_list if n not in set(order)]
        raise CycleError(leftovers)
    return order
