"""Clock abstractions.

Throughput benchmarks use the real clock (via pytest-benchmark), but the
application-server experiments (E7) must be deterministic: they advance a
:class:`VirtualClock` explicitly so instance-pool timeouts and load decay
behave identically on every run.
"""

from __future__ import annotations

import time


class SystemClock:
    """Wall-clock time source (monotonic)."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock:
    """Manually-advanced time source for deterministic simulations."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time.

        Negative advances are rejected so simulations cannot accidentally
        travel backwards and corrupt expiry bookkeeping.
        """
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now
