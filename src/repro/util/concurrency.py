"""Concurrency primitives shared by every tier.

The paper's runtime serves "many simultaneous users" (§1): pooled JDBC
connections, a shared business tier, a two-level cache.  This module
holds the primitives that make the Python reproduction of those tiers
safe under a pool of worker threads:

- :class:`ReadWriteLock` — a reentrant readers-writer lock.  The rdb
  tier takes the read side for SELECTs (data-extraction queries run
  concurrently) and the write side for DML/DDL and undo-log
  transactions (writes serialize, and a transaction holds the write
  side from ``begin`` to ``commit``/``rollback``).
- :class:`AtomicCounters` — a mixin giving dataclass-style stats
  objects a lock-guarded :meth:`increment`, so counters shared by
  worker threads never lose updates.
"""

from __future__ import annotations

import contextlib
import threading


class ReadWriteLock:
    """A reentrant readers-writer lock with writer preference.

    Many readers may hold the lock at once; a writer holds it alone.
    Reentrancy rules:

    - a thread holding the write side may acquire either side again
      (a transaction executes its own statements);
    - a thread holding the read side may re-acquire the read side even
      while writers wait (no self-deadlock on nested queries);
    - upgrading read → write is refused — it deadlocks by construction.

    New readers queue behind waiting writers, so a steady SELECT stream
    cannot starve operations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident → recursion depth
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read() without acquire_read()")
            if depth > 1:
                self._readers[me] = depth - 1
            else:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()

    # -- write side -----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write() by a non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------------

    @contextlib.contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- observation (tests/debugging) ----------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return len(self._readers)

    def write_held_by_current_thread(self) -> bool:
        with self._cond:
            return self._writer == threading.get_ident()

    def held_by_writer(self) -> bool:
        with self._cond:
            return self._writer is not None


class AtomicCounters:
    """Lock-guarded counter updates for stats dataclasses.

    Subclasses call :meth:`increment` instead of ``self.field += 1`` so
    read-modify-write races between worker threads cannot lose counts.
    """

    @property
    def _counter_lock(self) -> threading.Lock:
        # Created lazily so dataclass subclasses need no extra field and
        # pickling/copying stays trivial.
        lock = self.__dict__.get("__counter_lock")
        if lock is None:
            lock = self.__dict__.setdefault("__counter_lock",
                                            threading.Lock())
        return lock

    def increment(self, counter: str, by: int = 1) -> int:
        with self._counter_lock:
            value = getattr(self, counter) + by
            setattr(self, counter, value)
            return value
