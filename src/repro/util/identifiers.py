"""Identifier and naming helpers shared by the model and codegen layers.

The generators continually move between the conceptual world (``"Volume
data"`` unit names, ``VolumeToIssue`` relationship names) and artifact
names (SQL table names, descriptor ids, Java-like class names).  These
helpers centralize those conversions so every generator names things the
same way.
"""

from __future__ import annotations

import re

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_IDENTIFIER = re.compile(r"[^A-Za-z0-9_]+")


def camel_to_snake(name: str) -> str:
    """Convert ``CamelCase``/``mixedCase`` to ``snake_case``.

    >>> camel_to_snake("VolumeToIssue")
    'volume_to_issue'
    >>> camel_to_snake("ACMPaper")
    'acm_paper'
    """
    return _CAMEL_BOUNDARY.sub("_", name).lower()


def snake_to_camel(name: str, upper_first: bool = True) -> str:
    """Convert ``snake_case`` (or space-separated words) to CamelCase.

    >>> snake_to_camel("volume_to_issue")
    'VolumeToIssue'
    >>> snake_to_camel("volume data", upper_first=False)
    'volumeData'
    """
    parts = [p for p in re.split(r"[\s_]+", name) if p]
    if not parts:
        return ""
    camel = "".join(p[:1].upper() + p[1:] for p in parts)
    if not upper_first:
        camel = camel[:1].lower() + camel[1:]
    return camel


def make_identifier(name: str) -> str:
    """Turn an arbitrary display name into a safe lowercase identifier.

    CamelCase boundaries become underscores, non-alphanumeric runs
    collapse to single underscores, and a leading digit gets an
    underscore prefix so the result is a valid Python/SQL name.

    >>> make_identifier("Issues&Papers")
    'issues_papers'
    >>> make_identifier("VolumeToIssue")
    'volume_to_issue'
    >>> make_identifier("2-column layout")
    '_2_column_layout'
    """
    ident = _NON_IDENTIFIER.sub("_", camel_to_snake(name.strip())).strip("_")
    # Collapse internal runs produced by consecutive separators.
    ident = re.sub(r"_+", "_", ident)
    if not ident:
        return "_"
    if ident[0].isdigit():
        ident = "_" + ident
    return ident


def unique_name(base: str, taken: set[str]) -> str:
    """Return ``base`` or ``base_2``, ``base_3``... not present in ``taken``.

    The chosen name is added to ``taken`` so repeated calls keep uniqueness.
    """
    if base not in taken:
        taken.add(base)
        return base
    counter = 2
    while f"{base}_{counter}" in taken:
        counter += 1
    name = f"{base}_{counter}"
    taken.add(name)
    return name
