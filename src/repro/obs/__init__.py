"""End-to-end observability for the MVC2 runtime.

The paper's architecture (Figure 3) chains controller → generic
services → data tier → caches → presentation; this package makes that
chain *measurable* in production, not just in benchmarks:

- :mod:`repro.obs.trace` — per-request span trees, propagated through
  :mod:`contextvars` so every tier a request crosses contributes
  tier-tagged spans without signature changes;
- :mod:`repro.obs.metrics` — a lock-cheap registry of counters,
  gauges, and log-scale histograms (p50/p95/p99), plus snapshot-time
  collectors for tiers that already keep their own stats;
- :mod:`repro.obs.slowlog` — the slow-query ring buffer the §6
  query-tuning workflow starts from, each entry carrying the planner's
  chosen access path;
- :mod:`repro.obs.status` — the built-in ``/_status`` page (text and
  JSON) the front controller serves;
- :mod:`repro.obs.core` — the per-application :class:`Observability`
  root that ties the above together.

Experiment E16 holds the line on cost: the fully instrumented request
path stays within 5% of the uninstrumented p50 on the E15 read-heavy
workload.
"""

from repro.obs.core import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.status import build_status, render_status_json, render_status_text
from repro.obs.trace import Span, Trace, attach_span, current_span, span, trace

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SlowQueryLog",
    "SlowQuery",
    "Span",
    "Trace",
    "trace",
    "span",
    "attach_span",
    "current_span",
    "build_status",
    "render_status_json",
    "render_status_text",
]
