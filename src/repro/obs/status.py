"""The built-in ``/_status`` page.

One GET returns everything an operator needs to answer "where is this
application spending its time": request/latency metrics from the
dispatcher, per-statement and pool stats from the data tier, hit/miss
counters for all three cache levels, and the slow-query ring — the
runtime equivalent of the paper's design-time "tune the descriptor
query" loop (§6).

Served by the :class:`~repro.mvc.dispatcher.FrontController` in two
renditions: plain text (the default, for humans and ``curl``) and JSON
(``?format=json`` or an ``Accept: application/json`` header, for
scrapers).  Both are projections of the same :func:`build_status`
dict, whose schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json

#: slow-query entries shown on the page (the ring may hold more)
SLOW_QUERY_LIMIT = 20


def build_status(front) -> dict:
    """The status document for one front controller's application."""
    ctx = front.ctx
    obs = ctx.obs
    database = ctx.database
    status: dict = {
        "service": database.name,
        "requests_served": front.requests_served,
        "sessions": len(front.sessions),
        "tracing_enabled": bool(obs is not None and obs.tracing_enabled),
        "cache_levels": ctx.invalidation_bus.targets(),
    }
    if obs is not None:
        metrics = obs.metrics.snapshot()
        counters = metrics["counters"]
        # the dispatcher keeps per-status counts in a plain dict (one
        # C-level increment per request); they are folded into the
        # counters section here, and the request total is their sum —
        # the hot path never counts anything twice
        status_counts = getattr(front, "status_counts", {})
        for code in sorted(status_counts):
            counters[f"http.status.{code}"] = status_counts[code]
        counters["http.requests"] = sum(status_counts.values())
        status["metrics"] = metrics
    slow_log = getattr(database, "slow_log", None)
    if slow_log is not None:
        status["slow_query_log"] = slow_log.stats()
        status["slow_queries"] = [
            entry.to_dict() for entry in slow_log.entries(SLOW_QUERY_LIMIT)
        ]
    adaptive = getattr(database, "adaptive", None)
    if adaptive is not None:
        # the adaptive-planner section: replan/re-ANALYZE counters,
        # feedback-memory health, and the top misestimated statements
        status["planner"] = adaptive.stats()
    return status


def render_status_json(status: dict) -> str:
    return json.dumps(status, indent=2, sort_keys=True, default=str)


def render_status_text(status: dict) -> str:
    """A plain-text rendering, stable enough to grep."""
    lines = [
        f"repro status: {status['service']}",
        f"requests_served: {status['requests_served']}",
        f"sessions: {status['sessions']}",
        f"tracing_enabled: {status['tracing_enabled']}",
        f"cache_levels: {', '.join(status['cache_levels']) or '-'}",
        "",
    ]
    metrics = status.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("[counters]")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
        lines.append("")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("[gauges]")
        for name in sorted(gauges):
            gauge = gauges[name]
            lines.append(
                f"  {name} = {gauge['value']} (max {gauge['max']})"
            )
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("[histograms]")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name}: n={h['count']} p50={h['p50_ms']}ms "
                f"p95={h['p95_ms']}ms p99={h['p99_ms']}ms max={h['max_ms']}ms"
            )
        lines.append("")
    for source in sorted(metrics.get("external", {})):
        stats = metrics["external"][source]
        lines.append(f"[{source}]")
        if isinstance(stats, dict):
            for key in sorted(stats):
                lines.append(f"  {key} = {stats[key]}")
        else:
            lines.append(f"  {stats}")
        lines.append("")
    planner = status.get("planner")
    if planner is not None:
        lines.append("[planner]")
        for key in sorted(planner):
            if key == "top_misestimates":
                continue
            lines.append(f"  {key} = {planner[key]}")
        misestimates = planner.get("top_misestimates", [])
        if misestimates:
            lines.append("  top misestimates (worst q-error first):")
            for entry in misestimates:
                lines.append(
                    f"    q~{entry['q_error_max']}  est~{entry['estimated']}"
                    f" actual={entry['actual']}"
                    f" execs={entry['executions']}"
                    f" replans={entry['replans']}  {entry['statement']}"
                )
        lines.append("")
    slow_log = status.get("slow_query_log")
    if slow_log is not None:
        lines.append("[slow queries]")
        lines.append(
            f"  threshold={slow_log['threshold_ms']}ms "
            f"recorded={slow_log['recorded_total']} held={slow_log['held']}"
        )
        for entry in status.get("slow_queries", []):
            access = f"  [{entry['access']}]" if entry.get("access") else ""
            mode = f"  [{entry['mode']}]" if entry.get("mode") else ""
            lines.append(
                f"  {entry['duration_ms']:.3f}ms  {entry['sql']}{access}{mode}"
            )
        lines.append("")
    return "\n".join(lines)
