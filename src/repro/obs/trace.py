"""Per-request trace contexts: a span tree over the MVC2 tiers.

A *trace* is one request's span tree: the front controller opens the
root span, and every tier the request crosses — controller actions,
unit services, data-extraction statements, cache probes, template
rendering — contributes child spans tagged with the tier that produced
them (``mvc``, ``services``, ``rdb``, ``cache``).  The result is the
Figure 3 request path made visible: *where* a request spent its time,
tier by tier, statement by statement.

Propagation uses :mod:`contextvars`, so the active span follows the
call stack of the worker thread serving the request without any tier
having to pass a context object through its signatures.  The deep
tiers (the rdb engine, the caches, the template engine) call
:func:`span` or :func:`attach_span` unconditionally; when no trace is
active — benchmarks poking a tier directly, tracing disabled — both
degrade to a no-op whose cost is a single context-variable read.

Two ways to record a span:

- :class:`span` — a context manager that *becomes the current span*
  for its extent, so nested work (a unit service running queries, a
  cache miss computing its value) lands underneath it;
- :meth:`Span.attach` / :func:`attach_span` — append an already-timed
  leaf span (the rdb tier measures a statement first, then attaches
  it, paying nothing when no trace is active).

Both context managers are hand-written classes, not
``contextlib.contextmanager`` generators: they sit on the request hot
path, and the class form costs roughly a third of the generator form.
"""

from __future__ import annotations

import contextvars
import time

#: the innermost open span of the request being served on this thread
_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed step of a request, with its nested children."""

    __slots__ = ("name", "tier", "tags", "started", "duration", "children")

    def __init__(self, name: str, tier: str = "", tags: dict | None = None,
                 started: float | None = None):
        self.name = name
        self.tier = tier
        self.tags = tags if tags is not None else {}
        self.started = time.perf_counter() if started is None else started
        self.duration: float | None = None
        self.children: list[Span] = []

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self.started

    @property
    def duration_ms(self) -> float:
        return (self.duration or 0.0) * 1000.0

    def attach(self, name: str, tier: str, started: float, duration: float,
               tags: dict | None = None) -> "Span":
        """Append an already-completed leaf span."""
        child = Span(name, tier, tags, started=started)
        child.duration = duration
        self.children.append(child)
        return child

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tier": self.tier,
            "ms": round(self.duration_ms, 3),
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, tier={self.tier!r}, ms={self.duration_ms:.3f})"


class Trace:
    """One request's span tree, rooted at the front controller."""

    __slots__ = ("root",)

    def __init__(self, root: Span):
        self.root = root

    def spans(self):
        """Every span of the tree, depth-first, root included."""
        return self.root.walk()

    def spans_in(self, tier: str) -> list[Span]:
        return [span for span in self.spans() if span.tier == tier]

    def spans_named(self, prefix: str) -> list[Span]:
        return [span for span in self.spans() if span.name.startswith(prefix)]

    def tier_totals(self) -> dict[str, tuple[int, float]]:
        """tier → (span count, summed seconds), root excluded."""
        totals: dict[str, tuple[int, float]] = {}
        for span in self.spans():
            if span is self.root:
                continue
            count, seconds = totals.get(span.tier, (0, 0.0))
            totals[span.tier] = (count + 1, seconds + (span.duration or 0.0))
        return totals

    def summary(self) -> str:
        """A one-line rendition for the ``X-Trace`` response header,
        e.g. ``GET /pv/p1 1.84ms; mvc=2/1.7ms services=4/1.2ms
        rdb=9/0.8ms cache=5/0.1ms``."""
        parts = [f"{self.root.name} {self.root.duration_ms:.2f}ms"]
        tiers = []
        for tier, (count, seconds) in sorted(self.tier_totals().items()):
            tiers.append(f"{tier}={count}/{seconds * 1000.0:.2f}ms")
        if tiers:
            parts.append(" ".join(tiers))
        return "; ".join(parts)

    def to_dict(self) -> dict:
        return self.root.to_dict()


def current_span() -> Span | None:
    """The innermost open span of this thread's request, if any."""
    return _current_span.get()


#: the context variable itself, for hot call sites that want to pay a
#: bare ``.get()`` instead of a function call when probing for a trace
current_span_var = _current_span


class trace:
    """Open a new trace; the root span becomes the current span.

    ``with trace(name) as t:`` yields the :class:`Trace`; nested
    :class:`span`/:func:`attach_span` calls land inside it until the
    block exits.
    """

    __slots__ = ("_root", "_token")

    def __init__(self, name: str, tier: str = "mvc", **tags):
        self._root = Span(name, tier, tags or None)

    def __enter__(self) -> Trace:
        self._token = _current_span.set(self._root)
        return Trace(self._root)

    def __exit__(self, *exc_info) -> bool:
        self._root.finish()
        _current_span.reset(self._token)
        return False


class span:
    """A child span of the current span — or a no-op without a trace.

    ``with span(name, tier=...) as s:`` yields the new :class:`Span`
    (so callers can set tags discovered mid-flight, like cache
    hit/miss), or ``None`` when no trace is active — the no-op case
    costs one context-variable read.
    """

    __slots__ = ("_name", "_tier", "_tags", "_child", "_token")

    def __init__(self, name: str, tier: str = "", **tags):
        self._name = name
        self._tier = tier
        self._tags = tags

    def __enter__(self) -> Span | None:
        parent = _current_span.get()
        if parent is None:
            self._child = None
            return None
        child = Span(self._name, self._tier, self._tags or None)
        parent.children.append(child)
        self._token = _current_span.set(child)
        self._child = child
        return child

    def __exit__(self, *exc_info) -> bool:
        child = self._child
        if child is not None:
            child.finish()
            _current_span.reset(self._token)
        return False


def attach_span(name: str, tier: str, started: float, duration: float,
                tags: dict | None = None) -> Span | None:
    """Attach a completed leaf span to the current span, if any."""
    parent = _current_span.get()
    if parent is None:
        return None
    return parent.attach(name, tier, started, duration, tags)
