"""A lock-cheap metrics registry: counters, gauges, log-scale histograms.

The registry is the operator-facing aggregation point of the runtime:
every tier publishes into one :class:`MetricsRegistry` (owned by the
:class:`~repro.obs.core.Observability` object on the runtime context),
and the ``/_status`` endpoint renders its snapshot.

Design constraints, in order:

1. **Hot-path cost** — a counter bump is one plain integer add and a
   histogram record is an integer ``bit_length`` bucket index plus a
   handful of attribute writes; neither takes a lock.  Under CPython
   an unlocked ``+=`` can lose an increment only when the thread is
   preempted between its read and its write — once per interpreter
   switch interval at worst — and observability tolerates a lost
   count where it cannot tolerate a lock acquire/release pair on
   every request.  (Gauges keep a lock: ``inc``/``dec`` pairs must
   balance, and gauges sit off the per-request path.)  Metric objects
   are meant to be *looked up once and kept* by instrumented code
   (the rdb tier caches its statement histogram on the database
   object), so the registry dictionary is not consulted per event.
2. **Read consistency** — :meth:`MetricsRegistry.snapshot` gives a
   point-in-time dict of every metric; per-metric reads are atomic,
   cross-metric skew is accepted (observability, not accounting).
3. **No double counting** — tiers that already keep their own counters
   (cache :class:`~repro.caching.stats.CacheStats`, pool wait stats,
   database statement counters) are surfaced through *collectors*:
   callables polled only at snapshot time, costing the hot path
   nothing.

Histograms are log₂-bucketed over microseconds: bucket *b* covers
``[2^(b-1), 2^b) µs``, so the full range from 1 µs to over an hour
fits in 42 buckets and percentile estimates are within a factor of 2
everywhere — the right trade for latency distributions whose interesting
differences are orders of magnitude.
"""

from __future__ import annotations

import threading

#: bucket count: 2^41 µs ≈ 36 minutes, enough for any request latency
_BUCKETS = 42


class Counter:
    """A monotonically increasing counter.

    Deliberately unlocked: see the module docstring — a preemption
    exactly between the read and write of ``+=`` can drop one count,
    which observability accepts in exchange for a lock-free hot path.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, by: int = 1) -> None:
        self._value += by

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (pool connections in use, queue depth)."""

    __slots__ = ("_lock", "_value", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self._value += by
            if self._value > self._max:
                self._max = self._value

    def dec(self, by: float = 1.0) -> None:
        with self._lock:
            self._value -= by

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_value(self) -> float:
        """High-water mark since creation (peak pool usage)."""
        return self._max


class Histogram:
    """Log₂-bucketed duration histogram with percentile estimates.

    :meth:`record` takes **seconds**; buckets are powers of two in
    microseconds.  Percentiles return the geometric midpoint of the
    bucket holding the requested rank — accurate to within the bucket's
    factor-of-2 width, which is what a log-scale histogram promises.

    Like :class:`Counter`, records are unlocked; a reader racing a
    writer may see a snapshot one event out of step across fields,
    which percentile estimates with factor-of-2 buckets don't notice.
    """

    __slots__ = ("_counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, seconds: float) -> None:
        micros = int(seconds * 1e6)
        bucket = min(micros.bit_length(), _BUCKETS - 1) if micros > 0 else 0
        self._counts[bucket] += 1
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    def percentile(self, fraction: float) -> float:
        """Estimated value (seconds) at ``fraction`` of the recorded
        distribution; 0.0 before anything was recorded."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count))
        seen = 0
        for bucket, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if bucket == 0:
                    return 0.0
                # geometric midpoint of [2^(b-1), 2^b) µs
                return (2 ** (bucket - 1)) * 1.5 / 1e6
        return self.max or 0.0

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Snapshot with millisecond-denominated summary statistics."""
        count, total = self.count, self.total
        low, high = self.min, self.max
        return {
            "count": count,
            "sum_ms": round(total * 1000.0, 3),
            "min_ms": round((low or 0.0) * 1000.0, 3),
            "max_ms": round((high or 0.0) * 1000.0, 3),
            "mean_ms": round((total / count if count else 0.0) * 1000.0, 3),
            "p50_ms": round(self.p50 * 1000.0, 3),
            "p95_ms": round(self.p95 * 1000.0, 3),
            "p99_ms": round(self.p99 * 1000.0, 3),
        }


class MetricsRegistry:
    """Named metrics plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` create on first use and always
    return the same object for a name, so instrumented code can cache
    the reference and never pay the registry lookup again.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, object] = {}

    def _get_or_create(self, table: dict, name: str, factory):
        metric = table.get(name)
        if metric is None:
            with self._lock:
                metric = table.setdefault(name, factory())
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(self._histograms, name, Histogram)

    def register_collector(self, name: str, collect) -> None:
        """Attach a snapshot-time stats source (``collect() -> dict``).

        Re-registering a name replaces the previous collector — a new
        app server instance takes over its predecessor's slot.
        """
        with self._lock:
            self._collectors[name] = collect

    # -- reading ------------------------------------------------------------

    def counters(self, prefix: str = "") -> dict[str, int]:
        with self._lock:
            items = list(self._counters.items())
        return {
            name: counter.value
            for name, counter in items if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """Every metric, point in time, JSON-shaped."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
            collectors = list(self._collectors.items())
        external = {}
        for name, collect in collectors:
            try:
                external[name] = collect()
            except Exception as exc:  # a broken collector must not 500 /_status
                external[name] = {"error": repr(exc)}
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in gauges
            },
            "histograms": {name: h.to_dict() for name, h in histograms},
            "external": external,
        }
