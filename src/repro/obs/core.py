"""The per-application observability root.

One :class:`Observability` object is owned by each
:class:`~repro.services.base.RuntimeContext` and shared by every tier
of that application: the front controller opens request traces through
it, the rdb tier and connection pool publish metrics into its
registry, and the cache levels / app server register snapshot-time
collectors on it.  The ``/_status`` endpoint is a rendering of this
object's state.

Two switches plus a sampling knob, all safe to flip at runtime:

- ``tracing_enabled`` — whether the front controller may open traces
  at all (span creation everywhere below is driven by the presence of
  a trace, so one flag silences the whole tree);
- ``trace_every`` — the sampling rate: one request in every
  ``trace_every`` carries a full span tree *and* the request-latency
  histogram timestamps (default 32).  Counters are bumped for every
  request regardless — sampling only thins the work whose cost would
  otherwise dominate instrumentation: span construction and clock
  reads.  A client sending an ``X-Trace`` request header bypasses
  sampling for that request, so a trace is always one curl away.
  ``1`` traces everything (tests do this for determinism);
- ``enabled`` — whether instrumented tiers record metrics at all; the
  E16 benchmark measures instrumentation overhead by comparing runs
  with this on and off against the same build.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace


class Observability:
    """Tracing switchboard plus the application's metrics registry."""

    #: default sampling rate: one request in this many is traced
    DEFAULT_TRACE_EVERY = 32

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracing_enabled: bool = True, enabled: bool = True,
                 trace_every: int | None = None):
        self.metrics = metrics or MetricsRegistry()
        self.tracing_enabled = tracing_enabled
        self.enabled = enabled
        self.trace_every = trace_every or self.DEFAULT_TRACE_EVERY
        self._trace_tick = 0

    def sample(self) -> bool:
        """Advance the sampling tick; True when this request's turn to
        be traced has come round.  The tick update is deliberately
        lock-free — a lost increment perturbs *which* request gets
        sampled, never whether metrics are recorded."""
        every = self.trace_every
        if every <= 1:
            return True
        tick = self._trace_tick
        self._trace_tick = tick + 1
        return tick % every == 0

    def trace_request(self, method: str, path: str, force: bool = False):
        """A request trace context when this request should be traced,
        else ``None``.  ``force`` (the ``X-Trace`` request header)
        bypasses sampling but never the master switches.  The front
        controller inlines this decision on its hot path; this method
        is the same logic for any other entry point (tests, scripts
        driving a tier directly)."""
        if not (self.enabled and self.tracing_enabled):
            return None
        if not (force or self.sample()):
            return None
        return trace(f"{method} {path}")

    def disable(self) -> None:
        """Turn every instrumented site into (near) no-ops."""
        self.enabled = False
        self.tracing_enabled = False

    def enable(self) -> None:
        self.enabled = True
        self.tracing_enabled = True
