"""The slow-query ring buffer.

The §6 tuning workflow — find the expensive descriptor query, override
it with an optimized one, hot-redeploy — needs the *find* step at
runtime, not in a benchmark: the data tier keeps the last N statements
that exceeded a configurable duration threshold, each carrying the
access path the planner chose (so "slow because it seq-scanned" is
visible without re-running EXPLAIN by hand).

A bounded ring (``collections.deque``) keeps memory constant under any
traffic; the threshold comparison is the only cost a fast statement
pays.  ``threshold_seconds`` may be lowered at runtime (benchmarks set
it to 0 to capture everything) without touching the database.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

#: default threshold: an in-memory engine statement taking 50 ms is slow
DEFAULT_THRESHOLD_SECONDS = 0.05


@dataclass
class SlowQuery:
    """One recorded slow statement."""

    sql: str
    duration_ms: float
    access: str | None = None
    recorded_at: float = 0.0
    #: execution mode of the plan that ran it — "compiled", "mixed" or
    #: "interpreted" (None for non-SELECT statements)
    mode: str | None = None

    def to_dict(self) -> dict:
        return {
            "sql": self.sql,
            "duration_ms": round(self.duration_ms, 3),
            "access": self.access,
            "mode": self.mode,
            "recorded_at": self.recorded_at,
        }


class SlowQueryLog:
    """Bounded newest-first record of statements over the threshold."""

    def __init__(self, capacity: int = 128,
                 threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS):
        if capacity <= 0:
            raise ValueError("slow-query log needs a positive capacity")
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        #: statements recorded (≥ threshold), including ones the ring
        #: has since evicted
        self.recorded_total = 0

    def observe(self, sql: str, duration_seconds: float,
                access: str | None = None, mode: str | None = None) -> bool:
        """Record the statement if it crossed the threshold.

        Returns whether it was recorded, so callers can skip computing
        expensive context (access-path text) for fast statements by
        checking ``duration >= threshold_seconds`` first.
        """
        if duration_seconds < self.threshold_seconds:
            return False
        entry = SlowQuery(
            sql=sql,
            duration_ms=duration_seconds * 1000.0,
            access=access,
            recorded_at=time.time(),
            mode=mode,
        )
        with self._lock:
            self._entries.append(entry)
            self.recorded_total += 1
        return True

    def entries(self, limit: int | None = None) -> list[SlowQuery]:
        """Newest first."""
        with self._lock:
            newest_first = list(reversed(self._entries))
        return newest_first if limit is None else newest_first[:limit]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            held = len(self._entries)
            slowest = max(
                (entry.duration_ms for entry in self._entries), default=0.0
            )
        return {
            "threshold_ms": self.threshold_seconds * 1000.0,
            "recorded_total": self.recorded_total,
            "held": held,
            "capacity": self.capacity,
            "slowest_ms": round(slowest, 3),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
