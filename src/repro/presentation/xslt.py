"""XSLT-style presentation rules (§5, Figure 7).

Two rule kinds, exactly as the paper defines them:

- **page rules** "match the outermost part of the skeleton's layout (for
  example, the top-level HTML table) and transform it into the actual
  grid of the page, which may include multiple frames, images, static
  texts, and other kinds of embellishments";
- **unit rules** "match a class of units ... and produce the markup for
  their presentation", which here means decorating the custom tag (the
  dynamic part stays a tag, §5) and wrapping it in static markup.

A :class:`Stylesheet` holds rules plus CSS; ``apply`` transforms a
skeleton into a final template.  Conflicts resolve by pattern
specificity, then declaration order.  Application can happen at compile
time (once per template) or at request time (see
:mod:`repro.presentation.renderer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.xmlkit import Element, Pattern, compile_pattern, parse_xml, serialize


@dataclass
class PageRule:
    """Decorates/wraps the page grid.

    - ``wrapper_html``: markup with a ``<placeholder/>`` element where
      the matched grid is re-inserted (banner/footer embellishments),
    - ``set_attrs``: attributes forced onto the matched element,
    - ``add_class``: CSS class appended to the matched element.
    """

    pattern: str
    wrapper_html: str | None = None
    set_attrs: dict = field(default_factory=dict)
    add_class: str | None = None
    name: str = "page-rule"
    _compiled: Pattern = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._compiled = compile_pattern(self.pattern)
        if self.wrapper_html is not None:
            wrapper = parse_xml(self.wrapper_html)
            if not _find_placeholder(wrapper):
                raise RuleError(
                    f"rule {self.name!r}: wrapper_html needs a <placeholder/>"
                )

    def matches(self, element: Element) -> bool:
        return self._compiled.matches(element)

    @property
    def specificity(self) -> int:
        return self._compiled.specificity

    def apply(self, element: Element) -> Element:
        for attr_name, attr_value in self.set_attrs.items():
            element.set(attr_name, attr_value)
        if self.add_class:
            existing = element.get("class", "")
            element.set(
                "class", f"{existing} {self.add_class}".strip()
            )
        if self.wrapper_html is not None:
            wrapper = parse_xml(self.wrapper_html)
            placeholder = _find_placeholder(wrapper)
            if element.parent is not None:
                element.replace_with(wrapper)
            placeholder.replace_with(element)
            return wrapper
        return element


@dataclass
class UnitRule:
    """Decorates the custom tags of a class of units.

    - ``set_attrs`` are attributes written onto the tag (``render-as``,
      ``show-title``, ``class``... — the knobs tag renderers read),
    - ``box_html`` optionally wraps the tag in static markup (with a
      ``<placeholder/>``).
    """

    pattern: str  # e.g. "webml:indexUnit" or "webml:dataUnit[@kind='data']"
    set_attrs: dict = field(default_factory=dict)
    box_html: str | None = None
    name: str = "unit-rule"
    _compiled: Pattern = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._compiled = compile_pattern(self.pattern)
        if self.box_html is not None:
            wrapper = parse_xml(self.box_html)
            if not _find_placeholder(wrapper):
                raise RuleError(
                    f"rule {self.name!r}: box_html needs a <placeholder/>"
                )

    def matches(self, element: Element) -> bool:
        return self._compiled.matches(element)

    @property
    def specificity(self) -> int:
        return self._compiled.specificity

    def apply(self, element: Element) -> Element:
        for attr_name, attr_value in self.set_attrs.items():
            element.set(attr_name, attr_value)
        if self.box_html is not None:
            wrapper = parse_xml(self.box_html)
            placeholder = _find_placeholder(wrapper)
            if element.parent is not None:
                element.replace_with(wrapper)
            placeholder.replace_with(element)
            return wrapper
        return element


def _find_placeholder(tree: Element) -> Element | None:
    for element in tree.iter():
        if element.tag == "placeholder":
            return element
    return None


@dataclass
class Stylesheet:
    """A named bundle of page rules, unit rules, and CSS.

    The Acer-Euro deployment needed exactly three of these for 556
    pages (§8) — one per site-view family.
    """

    name: str
    page_rules: list[PageRule] = field(default_factory=list)
    unit_rules: list[UnitRule] = field(default_factory=list)
    css: str = ""
    devices: list[str] = field(default_factory=lambda: ["html"])

    def apply(self, skeleton_xml: str) -> str:
        """Transform a skeleton document into a final template."""
        tree = parse_xml(skeleton_xml)
        tree = self._apply_rules(tree, self.page_rules)
        tree = self._apply_rules(tree, self.unit_rules)
        if self.css:
            self._attach_css(tree)
        return serialize(tree)

    def _apply_rules(self, tree: Element, rules: list) -> Element:
        # Collect matches first: applying a rule rewrites the tree.
        matches: list[tuple[Element, object]] = []
        for element in tree.iter():
            best = None
            for rule in rules:
                if rule.matches(element):
                    if best is None or rule.specificity > best.specificity:
                        best = rule
            if best is not None:
                matches.append((element, best))
        for element, rule in matches:
            replacement = rule.apply(element)
            if element is tree:
                tree = replacement
        return tree

    def _attach_css(self, tree: Element) -> None:
        head = None
        for element in tree.iter():
            if element.tag == "head":
                head = element
                break
        if head is None and tree.tag == "html":
            head = Element("head")
            tree.insert(0, head)
        if head is not None:
            head.add("style", {"type": "text/css"}, text=self.css)

    def coverage(self, skeleton_xml: str) -> dict:
        """How much of a skeleton this stylesheet styles (experiment E3):
        the fraction of custom tags matched by at least one unit rule and
        whether any page rule fired."""
        tree = parse_xml(skeleton_xml)
        unit_tags = [
            e for e in tree.iter()
            if e.tag.startswith("webml:") and e.tag != "webml:siteMenu"
            # the site menu is resolved by the engine, not by unit rules
        ]
        styled = sum(
            1 for tag in unit_tags
            if any(rule.matches(tag) for rule in self.unit_rules)
        )
        page_styled = any(
            rule.matches(element)
            for element in tree.iter()
            for rule in self.page_rules
        )
        return {
            "unit_tags": len(unit_tags),
            "styled_unit_tags": styled,
            "page_styled": page_styled,
        }
