"""The View wiring: templates + rules + tags, in both §5 modes.

- **compile-time mode**: every skeleton is transformed once at
  deployment; requests render pre-styled templates ("more efficient,
  because no template transformation is required at runtime");
- **runtime mode**: skeletons are transformed per request — "more
  expensive in terms of execution time ... but more flexible and may be
  very effective for multi-device applications", selecting the
  stylesheet from the request's User-Agent through the device registry.

A :class:`PresentationRenderer` instance is the ``view_renderer``
callable plugged into :class:`~repro.mvc.FrontController`.
"""

from __future__ import annotations

from repro.errors import PresentationError
from repro.presentation.devices import DeviceRegistry
from repro.presentation.jsp import PageTemplate, RenderContext
from repro.presentation.layouts import rule_for_category
from repro.presentation.xslt import Stylesheet, UnitRule
from repro.presentation.css import default_css


def default_stylesheet(site_name: str = "Site",
                       layout_categories: list[str] | None = None,
                       devices: list[str] | None = None) -> Stylesheet:
    """A complete stylesheet in the paper's structure: one page rule per
    layout category, one unit rule per unit kind, modularized CSS."""
    categories = layout_categories or ["one-column", "two-columns",
                                       "three-columns"]
    page_rules = [rule_for_category(c, site_name) for c in categories[:1]]
    unit_rules = [
        UnitRule(pattern="webml:dataUnit",
                 set_attrs={"show-title": "true"}, name="style-data"),
        UnitRule(pattern="webml:indexUnit",
                 set_attrs={"show-title": "true", "render-as": "table"},
                 name="style-index"),
        UnitRule(pattern="webml:multidataUnit",
                 set_attrs={"show-title": "true"}, name="style-multidata"),
        UnitRule(pattern="webml:multichoiceUnit",
                 set_attrs={"show-title": "true"}, name="style-multichoice"),
        UnitRule(pattern="webml:scrollerUnit",
                 set_attrs={"show-title": "true"}, name="style-scroller"),
        UnitRule(pattern="webml:entryUnit",
                 set_attrs={"show-title": "true"}, name="style-entry"),
        UnitRule(pattern="webml:hierarchicalUnit",
                 set_attrs={"show-title": "true"}, name="style-hierarchical"),
    ]
    return Stylesheet(
        name=f"{site_name}-style",
        page_rules=page_rules,
        unit_rules=unit_rules,
        css=default_css(),
        devices=devices or ["html"],
    )


class PresentationRenderer:
    """Renders page results through styled templates."""

    def __init__(
        self,
        skeletons: dict[str, str],
        stylesheet: Stylesheet | None = None,
        mode: str = "compile-time",
        device_registry: DeviceRegistry | None = None,
        fragment_cache=None,
    ):
        if mode not in ("compile-time", "runtime"):
            raise PresentationError(f"unknown presentation mode {mode!r}")
        if mode == "compile-time" and stylesheet is None:
            raise PresentationError("compile-time mode needs a stylesheet")
        if mode == "runtime" and device_registry is None and stylesheet is None:
            raise PresentationError(
                "runtime mode needs a stylesheet or a device registry"
            )
        self.mode = mode
        self.skeletons = dict(skeletons)
        self.stylesheet = stylesheet
        self.device_registry = device_registry
        self.fragment_cache = fragment_cache
        self.templates_compiled = 0
        self.runtime_transformations = 0
        self._compiled: dict[str, PageTemplate] = {}
        if mode == "compile-time":
            self._compile_all()

    def _compile_all(self) -> None:
        for page_id, skeleton in self.skeletons.items():
            styled = self.stylesheet.apply(skeleton)
            template = PageTemplate.from_xml(page_id, styled)
            # Flatten to the segment/slot program now, at deployment:
            # requests pay string joins, not tree walks.
            template.compile()
            self._compiled[page_id] = template
            self.templates_compiled += 1

    def template_for(self, page_id: str, user_agent: str = "") -> PageTemplate:
        if self.mode == "compile-time":
            template = self._compiled.get(page_id)
            if template is None:
                raise PresentationError(f"no template for page {page_id!r}")
            return template
        skeleton = self.skeletons.get(page_id)
        if skeleton is None:
            raise PresentationError(f"no skeleton for page {page_id!r}")
        stylesheet = self.stylesheet
        if self.device_registry is not None:
            stylesheet = self.device_registry.stylesheet_for(user_agent)
        self.runtime_transformations += 1
        return PageTemplate.from_xml(page_id, stylesheet.apply(skeleton))

    # -- the FrontController view-renderer contract -----------------------

    def __call__(self, page_result, request, controller) -> str:
        template = self.template_for(
            page_result.page_id,
            user_agent=request.user_agent if request else "",
        )
        context = RenderContext(
            page_result, controller, request, self.fragment_cache
        )
        return template.render(context)

    def stream_chunks(self, page_id: str, request, controller,
                      page_result_factory):
        """The streaming face of the view-renderer contract.

        Resolves the template *eagerly* (so a missing page raises here,
        before any byte is promised to a client) and returns a chunk
        iterator whose join equals :meth:`__call__`'s output for the
        same page result.  ``page_result_factory`` runs lazily at the
        first dynamic slot — the template's static prefix streams while
        the unit services have not yet been asked for anything.
        """
        template = self.template_for(
            page_id, user_agent=request.user_agent if request else "",
        )

        def context_factory():
            return RenderContext(
                page_result_factory(), controller, request,
                self.fragment_cache,
            )

        return template.render_chunks(context_factory)
