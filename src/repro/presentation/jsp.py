"""The page template engine.

A :class:`PageTemplate` is a parsed template document — a skeleton or a
rule-styled template — whose ``webml:*`` custom tags are resolved
against the unit beans of a :class:`~repro.services.PageResult` at
render time.  Static markup is emitted verbatim, so everything the
presentation rules added survives untouched (§5's separation).

Fragment caching (§6): when a custom tag carries ``fragment="cache"``
(set by a presentation rule or by hand) and the render context has a
fragment cache, the rendered HTML of that unit is cached and reused for
identical bean content — the ESI-style *template-level* cache whose
limits §6 analyses.
"""

from __future__ import annotations

from repro.descriptors import PageDescriptor
from repro.errors import TemplateRenderError
from repro.mvc.http import build_url
from repro.presentation.tags import renderer_for_tag
from repro.services.page_service import PageResult
from repro.xmlkit import Element, Node, Text, parse_xml, serialize


class RenderContext:
    """Everything a tag renderer may consult."""

    def __init__(
        self,
        page_result: PageResult,
        controller,
        request=None,
        fragment_cache=None,
    ):
        self.page_result = page_result
        self.controller = controller
        self.request = request
        self.fragment_cache = fragment_cache

    def navigation_from(self, unit_id: str):
        return [
            t for t in self.page_result.navigation
            if t.source_unit_id == unit_id
        ]

    def same_page_url(self, extra_params: dict) -> str:
        """The current page's URL with parameters merged (scrollers)."""
        path = self.controller.path_of_page(self.page_result.page_id)
        params = dict(self.request.params) if self.request is not None else {}
        params.update(extra_params)
        return build_url(path, params)


class PageTemplate:
    """A compiled page template, render-ready."""

    def __init__(self, page_id: str, document: Element):
        self.page_id = page_id
        self.document = document

    @classmethod
    def from_xml(cls, page_id: str, xml: str) -> "PageTemplate":
        return cls(page_id, parse_xml(xml))

    def source(self) -> str:
        return serialize(self.document)

    def render(self, context: RenderContext) -> str:
        """Produce the final HTML for one request."""
        rendered = self._render_node(self.document, context)
        assert rendered is not None
        return serialize(rendered)

    def _render_node(self, node: Node, context: RenderContext) -> Node | None:
        if isinstance(node, Text):
            return Text(node.value)
        assert isinstance(node, Element)
        if node.tag.startswith("webml:"):
            return self._render_unit_tag(node, context)
        clone = Element(node.tag, dict(node.attrs))
        for child in node.children:
            rendered = self._render_node(child, context)
            if rendered is not None:
                clone.append(rendered)
        return clone

    def _render_unit_tag(self, tag: Element,
                         context: RenderContext) -> Node | None:
        if tag.tag == "webml:siteMenu":
            return self._render_site_menu(tag, context)
        unit_id = tag.get("unit")
        if unit_id is None:
            raise TemplateRenderError(
                f"custom tag <{tag.tag}> lacks the unit attribute"
            )
        bean = context.page_result.beans.get(unit_id)
        if bean is None:
            raise TemplateRenderError(
                f"no unit bean computed for {unit_id!r} "
                f"(page {self.page_id!r})"
            )
        cache = context.fragment_cache if tag.get("fragment") == "cache" else None
        renderer = renderer_for_tag(tag.tag)
        if cache is not None:
            key = self._fragment_key(unit_id, bean)
            if hasattr(cache, "get_or_render"):
                # Single-flight: concurrent misses render the fragment once.
                html = cache.get_or_render(
                    key,
                    lambda: serialize(renderer.render(bean, tag, context)),
                )
                return parse_xml(html)
            cached = cache.get(key)
            if cached is not None:
                return parse_xml(cached)
        rendered = renderer.render(bean, tag, context)
        if cache is not None:
            cache.put(self._fragment_key(unit_id, bean), serialize(rendered))
        return rendered

    @staticmethod
    def _render_site_menu(tag: Element, context: RenderContext) -> Element:
        """The landmark-page navigation menu (resolved against the
        controller's live path mapping, so re-linking never breaks it)."""
        menu = Element("ul", {"class": "site-menu"})
        current = tag.get("current")
        for item in tag.find_all("menuItem"):
            page_id = item.require_attr("page")
            entry = menu.add("li")
            attrs = {"href": context.controller.path_of_page(page_id)}
            if page_id == current:
                attrs["class"] = "current"
            entry.add("a", attrs, text=item.get("label", page_id))
        return menu

    @staticmethod
    def _fragment_key(unit_id: str, bean) -> tuple:
        """Fragment identity: the unit and a digest of its bean content.

        The digest makes the cache correct by construction — but note
        (§6's point) the *bean* still had to be computed to produce it:
        fragment caching spares markup generation, not the queries.
        """
        import hashlib
        import json

        payload = json.dumps(
            {
                "current": bean.current,
                "rows": bean.rows,
                "fields": bean.fields,
                "block": bean.block,
            },
            sort_keys=True,
            default=str,
        )
        digest = hashlib.sha1(payload.encode()).hexdigest()
        return (unit_id, digest)


def render_page(
    template: PageTemplate,
    page_result: PageResult,
    controller,
    request=None,
    fragment_cache=None,
) -> str:
    """Convenience wrapper used by the renderer and tests."""
    context = RenderContext(page_result, controller, request, fragment_cache)
    return template.render(context)
