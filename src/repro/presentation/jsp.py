"""The page template engine.

A :class:`PageTemplate` is a parsed template document — a skeleton or a
rule-styled template — whose ``webml:*`` custom tags are resolved
against the unit beans of a :class:`~repro.services.PageResult` at
render time.  Static markup is emitted verbatim, so everything the
presentation rules added survives untouched (§5's separation).

Rendering runs through a **compiled program**: at compile time the
template tree is flattened into alternating pre-serialized static HTML
segments and dynamic slots (one per custom tag), so a request performs
string joins instead of cloning and re-serializing the whole tree.
The tree-walking renderer survives as :meth:`PageTemplate.render_tree`
— the oracle the compiled path must match byte for byte.

Fragment caching (§6): when a custom tag carries ``fragment="cache"``
(set by a presentation rule or by hand) and the render context has a
fragment cache, the rendered HTML of that unit is cached and reused for
identical bean content — the ESI-style *template-level* cache whose
limits §6 analyses.  A fragment hit splices the cached HTML string
straight into the output; no XML parse or re-serialization happens on
the hit path.  Fragments are stored with the bean's entity/role
dependency sets, so operation writes invalidate exactly the dependent
fragments.
"""

from __future__ import annotations

import hashlib
import json

from repro.descriptors import PageDescriptor
from repro.errors import TemplateRenderError
from repro.mvc.http import build_url
from repro.obs import span
from repro.presentation.tags import renderer_for_tag
from repro.services.page_service import PageResult
from repro.xmlkit import (
    Element,
    Node,
    Text,
    escape_text,
    open_tag,
    parse_xml,
    serialize,
)


class RenderContext:
    """Everything a tag renderer may consult."""

    def __init__(
        self,
        page_result: PageResult,
        controller,
        request=None,
        fragment_cache=None,
    ):
        self.page_result = page_result
        self.controller = controller
        self.request = request
        self.fragment_cache = fragment_cache

    def navigation_from(self, unit_id: str):
        return [
            t for t in self.page_result.navigation
            if t.source_unit_id == unit_id
        ]

    def same_page_url(self, extra_params: dict) -> str:
        """The current page's URL with parameters merged (scrollers)."""
        path = self.controller.path_of_page(self.page_result.page_id)
        params = dict(self.request.params) if self.request is not None else {}
        params.update(extra_params)
        return build_url(path, params)


def _bean_digest(unit_id: str, bean) -> tuple:
    """Fragment identity: the unit and a digest of its bean content.

    The digest makes the cache correct by construction — but note
    (§6's point) the *bean* still had to be computed to produce it:
    fragment caching spares markup generation, not the queries.
    """
    payload = json.dumps(
        {
            "current": bean.current,
            "rows": bean.rows,
            "fields": bean.fields,
            "block": bean.block,
        },
        sort_keys=True,
        default=str,
    )
    return (unit_id, hashlib.sha1(payload.encode()).hexdigest())


class _UnitSlot:
    """One dynamic position of the compiled program: a custom tag whose
    HTML depends on the request's unit bean."""

    __slots__ = ("tag", "unit_id", "cache_enabled", "page_id")

    def __init__(self, tag: Element, page_id: str):
        self.tag = tag
        self.page_id = page_id
        self.unit_id = tag.get("unit")
        self.cache_enabled = tag.get("fragment") == "cache"
        if self.unit_id is None:
            raise TemplateRenderError(
                f"custom tag <{tag.tag}> lacks the unit attribute"
            )

    def render(self, context: RenderContext) -> str:
        bean = context.page_result.beans.get(self.unit_id)
        if bean is None:
            raise TemplateRenderError(
                f"no unit bean computed for {self.unit_id!r} "
                f"(page {self.page_id!r})"
            )
        renderer = renderer_for_tag(self.tag.tag)
        cache = context.fragment_cache if self.cache_enabled else None
        if cache is None:
            return serialize(renderer.render(bean, self.tag, context))
        key = _bean_digest(self.unit_id, bean)
        rendered_fresh = False

        def _build() -> str:
            nonlocal rendered_fresh
            rendered_fresh = True
            return serialize(renderer.render(bean, self.tag, context))

        with span("cache.fragment", tier="cache", level="fragment",
                  unit=self.unit_id) as probe:
            if hasattr(cache, "get_or_render"):
                # Single-flight: concurrent misses render the fragment
                # once; a hit splices the cached string — no parse, no
                # serialize.
                html = cache.get_or_render(
                    key, _build,
                    entities=bean.depends_entities,
                    roles=bean.depends_roles,
                )
            else:
                html = cache.get(key)
                if html is None:
                    html = _build()
                    cache.put(key, html, entities=bean.depends_entities,
                              roles=bean.depends_roles)
            if probe is not None:
                probe.tags["hit"] = not rendered_fresh
        return html


class _MenuSlot:
    """The site-menu tag: dynamic against the controller's live path
    mapping (re-linking swaps the mapping dict, which drops the memo),
    constant otherwise — so its HTML is rendered once per mapping."""

    __slots__ = ("tag", "_memo")

    def __init__(self, tag: Element):
        self.tag = tag
        self._memo: tuple[int, str] | None = None

    def render(self, context: RenderContext) -> str:
        mappings_id = id(context.controller.mappings)
        memo = self._memo
        if memo is not None and memo[0] == mappings_id:
            return memo[1]
        html = serialize(_render_site_menu(self.tag, context))
        self._memo = (mappings_id, html)
        return html


def _render_site_menu(tag: Element, context: RenderContext) -> Element:
    """The landmark-page navigation menu (resolved against the
    controller's live path mapping, so re-linking never breaks it)."""
    menu = Element("ul", {"class": "site-menu"})
    current = tag.get("current")
    for item in tag.find_all("menuItem"):
        page_id = item.require_attr("page")
        entry = menu.add("li")
        attrs = {"href": context.controller.path_of_page(page_id)}
        if page_id == current:
            attrs["class"] = "current"
        entry.add("a", attrs, text=item.get("label", page_id))
    return menu


class PageTemplate:
    """A compiled page template, render-ready."""

    def __init__(self, page_id: str, document: Element):
        self.page_id = page_id
        self.document = document
        self._program: list | None = None

    @classmethod
    def from_xml(cls, page_id: str, xml: str) -> "PageTemplate":
        return cls(page_id, parse_xml(xml))

    def source(self) -> str:
        return serialize(self.document)

    # -- the compiled fast path ----------------------------------------------

    def render(self, context: RenderContext) -> str:
        """Produce the final HTML for one request: join the program's
        static segments with the dynamic slots' output."""
        program = self._program
        if program is None:
            program = self.compile()
        return "".join(
            part if isinstance(part, str) else part.render(context)
            for part in program
        )

    def render_chunks(self, context_factory):
        """Generate the page as ordered HTML chunks (the streaming
        delivery mode).

        ``context_factory`` is called lazily, at the first dynamic
        slot — so every static segment *before* it (doctype, head,
        navigation shell) is yielded before the page's unit services
        run.  That prefix is what a streaming edge puts on the wire
        while the model tier computes; fragment-cache hits then splice
        mid-stream at string-copy cost.

        The concatenation of the chunks is byte-identical to
        :meth:`render` of the same context — the buffered path is the
        oracle, and the page cache stores the joined stream under the
        same key as a buffered build.
        """
        program = self._program
        if program is None:
            program = self.compile()
        context = None
        for part in program:
            if isinstance(part, str):
                yield part
            else:
                if context is None:
                    context = context_factory()
                yield part.render(context)

    def compile(self) -> list:
        """Flatten the template tree into the segment/slot program.

        Everything outside custom tags serializes once, here; per
        request only the slots run.  Compilation is idempotent and the
        program is memoized on the template.
        """
        parts: list = []
        static: list[str] = []

        def flush() -> None:
            if static:
                parts.append("".join(static))
                static.clear()

        def walk(node: Node) -> None:
            if isinstance(node, Text):
                static.append(escape_text(node.value))
                return
            assert isinstance(node, Element)
            if node.tag.startswith("webml:"):
                flush()
                if node.tag == "webml:siteMenu":
                    parts.append(_MenuSlot(node))
                else:
                    parts.append(_UnitSlot(node, self.page_id))
                return
            if not _contains_custom_tag(node):
                static.append(serialize(node))
                return
            static.append(open_tag(node))
            for child in node.children:
                walk(child)
            static.append(f"</{node.tag}>")

        walk(self.document)
        flush()
        self._program = parts
        return parts

    def slots(self) -> list:
        """The dynamic slots of the compiled program (introspection)."""
        program = self._program if self._program is not None else self.compile()
        return [part for part in program if not isinstance(part, str)]

    # -- the tree-walking oracle ---------------------------------------------

    def render_tree(self, context: RenderContext) -> str:
        """The original node-by-node renderer.  Kept as the semantic
        oracle: ``render`` must produce byte-identical output."""
        rendered = self._render_node(self.document, context)
        assert rendered is not None
        return serialize(rendered)

    def _render_node(self, node: Node, context: RenderContext) -> Node | None:
        if isinstance(node, Text):
            return Text(node.value)
        assert isinstance(node, Element)
        if node.tag.startswith("webml:"):
            return self._render_unit_tag(node, context)
        clone = Element(node.tag, dict(node.attrs))
        for child in node.children:
            rendered = self._render_node(child, context)
            if rendered is not None:
                clone.append(rendered)
        return clone

    def _render_unit_tag(self, tag: Element,
                         context: RenderContext) -> Node | None:
        if tag.tag == "webml:siteMenu":
            return _render_site_menu(tag, context)
        unit_id = tag.get("unit")
        if unit_id is None:
            raise TemplateRenderError(
                f"custom tag <{tag.tag}> lacks the unit attribute"
            )
        bean = context.page_result.beans.get(unit_id)
        if bean is None:
            raise TemplateRenderError(
                f"no unit bean computed for {unit_id!r} "
                f"(page {self.page_id!r})"
            )
        cache = context.fragment_cache if tag.get("fragment") == "cache" else None
        renderer = renderer_for_tag(tag.tag)
        if cache is None:
            return renderer.render(bean, tag, context)
        key = self._fragment_key(unit_id, bean)
        rendered_fresh = False

        def _build() -> str:
            nonlocal rendered_fresh
            rendered_fresh = True
            return serialize(renderer.render(bean, tag, context))

        with span("cache.fragment", tier="cache", level="fragment",
                  unit=unit_id) as probe:
            if hasattr(cache, "get_or_render"):
                # Single-flight: concurrent misses render the fragment once.
                html = cache.get_or_render(
                    key, _build,
                    entities=bean.depends_entities,
                    roles=bean.depends_roles,
                )
            else:
                html = cache.get(key)
                if html is None:
                    html = _build()
                    cache.put(key, html, entities=bean.depends_entities,
                              roles=bean.depends_roles)
            if probe is not None:
                probe.tags["hit"] = not rendered_fresh
        return parse_xml(html)

    @staticmethod
    def _fragment_key(unit_id: str, bean) -> tuple:
        return _bean_digest(unit_id, bean)


def _contains_custom_tag(element: Element) -> bool:
    return any(e.tag.startswith("webml:") for e in element.iter())


def render_page(
    template: PageTemplate,
    page_result: PageResult,
    controller,
    request=None,
    fragment_cache=None,
) -> str:
    """Convenience wrapper used by the renderer and tests."""
    context = RenderContext(page_result, controller, request, fragment_cache)
    return template.render(context)
