"""Presentation management (paper §5, Figure 7).

The pipeline: the generator emits *template skeletons* (minimal layout
grid + custom tags); XSLT-style *page rules* and *unit rules* transform
skeletons into final page templates — at compile time (fast) or at
request time (flexible, enables per-device adaptation); the template
engine renders templates against unit beans through the *custom tag
library*; graphic properties live in modularized *CSS*.

- :mod:`repro.presentation.tags` — the webml custom tag renderers,
- :mod:`repro.presentation.jsp` — the page template engine,
- :mod:`repro.presentation.xslt` — page/unit presentation rules,
- :mod:`repro.presentation.css` — per-unit-kind CSS modularization,
- :mod:`repro.presentation.layouts` — page layout categories,
- :mod:`repro.presentation.devices` — device profiles and user-agent
  driven stylesheet selection,
- :mod:`repro.presentation.renderer` — the View wiring (compile-time and
  runtime modes) plugged into the front controller.
"""

from repro.presentation.css import CssStylesheet, default_css
from repro.presentation.devices import DeviceProfile, DeviceRegistry
from repro.presentation.jsp import PageTemplate, RenderContext
from repro.presentation.renderer import PresentationRenderer
from repro.presentation.xslt import PageRule, Stylesheet, UnitRule

__all__ = [
    "PageTemplate",
    "RenderContext",
    "Stylesheet",
    "PageRule",
    "UnitRule",
    "CssStylesheet",
    "default_css",
    "DeviceProfile",
    "DeviceRegistry",
    "PresentationRenderer",
]
