"""CSS modularization (§5).

"A good practice in the definition of Cascading Style Sheets for WebML
applications is to leverage the conceptual model to modularise the CSS
rules.  A set of rules can be designed for each WebML unit, by
identifying the different graphic elements needed to present a certain
kind of unit."

A :class:`CssStylesheet` is built from per-unit-kind modules plus page
chrome; it renders to a single text the stylesheet attaches to the
template head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: the graphic elements each unit kind exposes (class selectors the tag
#: renderers emit) — the paper's "labels of various kinds, cell
#: backgrounds, and so on".
UNIT_CSS_ELEMENTS: dict[str, list[str]] = {
    "data": [".unit-data", ".unit-data .unit-title", ".data-attributes dt",
             ".data-attributes dd", ".unit-data .unit-links a"],
    "index": [".unit-index", ".unit-index .unit-title", ".index-rows",
              ".index-row", ".index-row a"],
    "multidata": [".unit-multidata", ".multidata-rows th", ".multidata-rows td"],
    "multichoice": [".unit-multichoice", ".choice-row", ".multichoice-form button"],
    "scroller": [".unit-scroller", ".scroller-rows li", ".scroller-nav a",
                 ".scroll-pos"],
    "entry": [".unit-entry", ".entry-field label", ".entry-field input",
              ".entry-form button"],
    "hierarchical": [".unit-hierarchical", ".hierarchy-level",
                     ".hierarchy-node", ".hierarchy-level a"],
}


@dataclass
class CssStylesheet:
    """An ordered mapping of selectors to property dictionaries."""

    name: str = "stylesheet"
    rules: dict[str, dict[str, str]] = field(default_factory=dict)

    def set(self, selector: str, **properties: str) -> "CssStylesheet":
        bucket = self.rules.setdefault(selector, {})
        for prop_name, value in properties.items():
            bucket[prop_name.replace("_", "-")] = value
        return self

    def merge(self, other: "CssStylesheet") -> "CssStylesheet":
        for selector, properties in other.rules.items():
            self.rules.setdefault(selector, {}).update(properties)
        return self

    def render(self) -> str:
        blocks = []
        for selector, properties in self.rules.items():
            if not properties:
                continue
            body = " ".join(f"{k}: {v};" for k, v in properties.items())
            blocks.append(f"{selector} {{ {body} }}")
        return "\n".join(blocks)

    def selectors_for_kind(self, kind: str) -> list[str]:
        known = UNIT_CSS_ELEMENTS.get(kind, [])
        return [s for s in self.rules if s in known]


def unit_module(kind: str, palette: dict[str, str]) -> CssStylesheet:
    """The per-unit-kind CSS module: one rule per graphic element."""
    sheet = CssStylesheet(name=f"css-{kind}")
    accent = palette.get("accent", "#336699")
    text = palette.get("text", "#222222")
    background = palette.get("background", "#ffffff")
    for selector in UNIT_CSS_ELEMENTS.get(kind, []):
        if selector.endswith("a"):
            sheet.set(selector, color=accent, text_decoration="none")
        elif "title" in selector:
            sheet.set(selector, color=accent, font_weight="bold")
        elif selector.endswith(("th",)):
            sheet.set(selector, background=accent, color=background)
        else:
            sheet.set(selector, color=text)
    return sheet


def page_chrome(palette: dict[str, str]) -> CssStylesheet:
    sheet = CssStylesheet(name="css-page")
    sheet.set("body", font_family=palette.get("font", "Verdana, sans-serif"),
              background=palette.get("background", "#ffffff"),
              color=palette.get("text", "#222222"))
    sheet.set(".page-grid", width="100%", border_collapse="collapse")
    sheet.set(".unit-cell", vertical_align="top", padding="8px")
    sheet.set(".site-banner", background=palette.get("accent", "#336699"),
              color=palette.get("background", "#ffffff"), padding="10px")
    sheet.set(".site-footer", font_size="80%", color="#666666")
    sheet.set(".site-menu", list_style="none", padding="0", margin="0")
    sheet.set(".site-menu li", display="inline", margin_right="12px")
    sheet.set(".site-menu a", color=palette.get("accent", "#336699"),
              text_decoration="none", font_weight="bold")
    sheet.set(".site-menu a.current", text_decoration="underline")
    return sheet


def default_css(palette: dict[str, str] | None = None,
                kinds: list[str] | None = None) -> str:
    """Assemble the full modularized stylesheet text."""
    palette = palette or {}
    sheet = page_chrome(palette)
    for kind in kinds or sorted(UNIT_CSS_ELEMENTS):
        sheet.merge(unit_module(kind, palette))
    return sheet.render()
