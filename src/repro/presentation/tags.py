"""The WebML custom tag library.

§3: "In the View, content units map to custom tags transforming the
content stored in the unit beans into HTML."  Each renderer turns one
unit bean into an HTML subtree.  Presentation rules (§5) influence the
output only through attributes they set on the custom tag — e.g.
``render-as``, ``show-title``, ``class`` — keeping the rendering logic
and the look-and-feel independent.
"""

from __future__ import annotations

from repro.errors import TemplateRenderError
from repro.mvc.http import build_url
from repro.services.beans import UnitBean
from repro.xmlkit import Element


def _anchor_url(context, nav_target, values: dict) -> str:
    """Build the href for one navigation target given output values."""
    if nav_target.target_kind == "operation":
        path = context.controller.operation_path(nav_target.target_id)
        params = {
            f"{nav_target.target_id}.{slot}": values.get(output)
            for output, slot in nav_target.parameters
        }
    else:
        path = context.controller.path_of_page(
            nav_target.target_page_id or nav_target.target_id
        )
        params = {
            request_param: values.get(output)
            for output, request_param in nav_target.parameters
        }
    return build_url(path, {k: v for k, v in params.items() if v is not None})


def _unit_box(bean: UnitBean, tag: Element) -> Element:
    """The common wrapper every unit renders into."""
    css_class = f"unit unit-{bean.kind}"
    extra = tag.get("class")
    if extra:
        css_class += f" {extra}"
    box = Element("div", {"class": css_class, "id": bean.unit_id})
    if tag.get("show-title") == "true":
        box.add("h3", {"class": "unit-title"}, text=bean.name)
    return box


def _row_values(row: dict) -> list[tuple[str, object]]:
    return [(k, v) for k, v in row.items()
            if k != "_children" and not k.startswith("_")]


class DataUnitTag:
    """Attribute/value rendition of a single object."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        if bean.current is None:
            box.add("p", {"class": "empty"}, text="No content")
            return box
        listing = box.add("dl", {"class": "data-attributes"})
        for name, value in _row_values(bean.current):
            listing.add("dt", text=str(name))
            listing.add("dd", text="" if value is None else str(value))
        self._render_anchors(bean, box, context)
        return box

    def _render_anchors(self, bean: UnitBean, box: Element, context) -> None:
        targets = [
            t for t in context.navigation_from(bean.unit_id)
        ]
        if not targets or bean.current is None:
            return
        nav = box.add("p", {"class": "unit-links"})
        for target in targets:
            nav.add(
                "a",
                {"href": _anchor_url(context, target, bean.current)},
                text=target.label or "open",
            )


class IndexUnitTag:
    """List rendition with one anchor per row (the defining behaviour of
    the index unit: 'the user picks one')."""

    list_kind = "index"

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        if not bean.rows:
            box.add("p", {"class": "empty"}, text="No content")
            return box
        render_as = tag.get("render-as", "table")
        targets = context.navigation_from(bean.unit_id)
        if render_as == "list":
            holder = box.add("ul", {"class": "index-rows"})
            for row in bean.rows:
                item = holder.add("li", {"class": "index-row"})
                self._render_row_inline(item, row, targets, context)
        else:
            holder = box.add("table", {"class": "index-rows"})
            for row in bean.rows:
                line = holder.add("tr", {"class": "index-row"})
                cell = line.add("td")
                self._render_row_inline(cell, row, targets, context)
        return box

    def _render_row_inline(self, parent: Element, row: dict, targets,
                           context) -> None:
        text = " — ".join(
            str(v) for k, v in _row_values(row) if k != "oid" and v is not None
        ) or f"#{row.get('oid')}"
        if targets:
            parent.add(
                "a", {"href": _anchor_url(context, targets[0], row)}, text=text
            )
            for extra in targets[1:]:
                parent.add(
                    "a",
                    {"href": _anchor_url(context, extra, row),
                     "class": "extra-link"},
                    text=extra.label or "more",
                )
        else:
            parent.add_text(text)


class MultidataUnitTag:
    """Tabular rendition of every attribute of every object."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        if not bean.rows:
            box.add("p", {"class": "empty"}, text="No content")
            return box
        table = box.add("table", {"class": "multidata-rows"})
        header = table.add("tr")
        for name, _value in _row_values(bean.rows[0]):
            header.add("th", text=str(name))
        for row in bean.rows:
            line = table.add("tr")
            for _name, value in _row_values(row):
                line.add("td", text="" if value is None else str(value))
        return box


class MultichoiceUnitTag:
    """Checkbox form; submits the chosen oids to the first target."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        targets = context.navigation_from(bean.unit_id)
        form_attrs = {"method": "get", "class": "multichoice-form"}
        checkbox_name = f"{bean.unit_id}.oids"
        if targets:
            target = targets[0]
            if target.target_kind == "operation":
                form_attrs["action"] = context.controller.operation_path(
                    target.target_id
                )
                # checkboxes submit straight into the operation's slot
                for output, slot in target.parameters:
                    if output == "oids":
                        checkbox_name = f"{target.target_id}.{slot}"
            else:
                form_attrs["action"] = context.controller.path_of_page(
                    target.target_page_id or target.target_id
                )
                for output, request_param in target.parameters:
                    if output == "oids":
                        checkbox_name = request_param
        form = box.add("form", form_attrs)
        chosen = set(bean.outputs.get("oids") or [])
        for row in bean.rows:
            label = form.add("label", {"class": "choice-row"})
            attrs = {
                "type": "checkbox",
                "name": checkbox_name,
                "value": str(row.get("oid")),
            }
            if row.get("oid") in chosen:
                attrs["checked"] = "checked"
            label.add("input", attrs)
            label.add_text(
                " — ".join(str(v) for k, v in _row_values(row) if k != "oid")
            )
        form.add("button", {"type": "submit"}, text="Choose")
        return box


class ScrollerUnitTag:
    """Row block plus first/previous/next/last block navigation."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        holder = box.add("ul", {"class": "scroller-rows"})
        for row in bean.rows:
            holder.add(
                "li",
                text=" — ".join(
                    str(v) for k, v in _row_values(row) if k != "oid"
                ),
            )
        if bean.block_count and bean.block_count > 1:
            nav = box.add("p", {"class": "scroller-nav"})
            current = bean.block or 1
            for label, block in (
                ("first", 1),
                ("prev", max(1, current - 1)),
                ("next", min(bean.block_count, current + 1)),
                ("last", bean.block_count),
            ):
                href = context.same_page_url(
                    {f"{bean.unit_id}.block": str(block)}
                )
                nav.add("a", {"href": href, "class": f"scroll-{label}"},
                        text=label)
            nav.add("span", {"class": "scroll-pos"},
                    text=f"block {current}/{bean.block_count}")
        return box


class EntryUnitTag:
    """Form rendition; the action comes from the unit's outgoing link."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        targets = context.navigation_from(bean.unit_id)
        form_attrs = {"method": "get", "class": "entry-form"}
        field_param_names: dict[str, str] = {}
        if targets:
            target = targets[0]
            if target.target_kind == "operation":
                form_attrs["action"] = context.controller.operation_path(
                    target.target_id
                )
                field_param_names = {
                    output: f"{target.target_id}.{slot}"
                    for output, slot in target.parameters
                }
            else:
                form_attrs["action"] = context.controller.path_of_page(
                    target.target_page_id or target.target_id
                )
                field_param_names = dict(target.parameters)
        form = box.add("form", form_attrs)
        for field_spec in bean.fields:
            name = field_spec["name"]
            param = field_param_names.get(name, name)
            row = form.add("p", {"class": "entry-field"})
            row.add("label", text=field_spec.get("label") or name)
            if field_spec.get("type") == "textarea":
                row.add("textarea", {"name": param},
                        text=str(field_spec.get("value") or ""))
            else:
                row.add("input", {
                    "type": field_spec.get("type", "text"),
                    "name": param,
                    "value": str(field_spec.get("value") or ""),
                })
        form.add("button", {"type": "submit"}, text="Submit")
        return box


class HierarchicalUnitTag:
    """Nested list rendition of Figure 1's hierarchical index."""

    def render(self, bean: UnitBean, tag: Element, context) -> Element:
        box = _unit_box(bean, tag)
        if not bean.rows:
            box.add("p", {"class": "empty"}, text="No content")
            return box
        targets = context.navigation_from(bean.unit_id)
        box.append(self._render_level(bean.rows, 0, targets, context))
        return box

    def _render_level(self, rows: list[dict], depth: int, targets,
                      context) -> Element:
        holder = Element("ul", {"class": f"hierarchy-level level-{depth}"})
        for row in rows:
            item = holder.add("li")
            text = " — ".join(
                str(v) for k, v in _row_values(row)
                if k != "oid" and v is not None
            ) or f"#{row.get('oid')}"
            children = row.get("_children")
            if children is None and targets:
                # leaf rows carry the unit's outgoing anchor
                item.add(
                    "a", {"href": _anchor_url(context, targets[0], row)},
                    text=text,
                )
            else:
                item.add("span", {"class": "hierarchy-node"}, text=text)
            if children:
                item.append(
                    self._render_level(children, depth + 1, targets, context)
                )
        return holder


#: tag name → renderer (what the template engine dispatches on)
TAG_RENDERERS = {
    "webml:dataUnit": DataUnitTag(),
    "webml:indexUnit": IndexUnitTag(),
    "webml:multidataUnit": MultidataUnitTag(),
    "webml:multichoiceUnit": MultichoiceUnitTag(),
    "webml:scrollerUnit": ScrollerUnitTag(),
    "webml:entryUnit": EntryUnitTag(),
    "webml:hierarchicalUnit": HierarchicalUnitTag(),
}


def renderer_for_tag(tag_name: str):
    renderer = TAG_RENDERERS.get(tag_name)
    if renderer is not None:
        return renderer
    from repro.services.plugins import plugin_registry

    for kind in plugin_registry.kinds():
        plugin = plugin_registry.get(kind)
        if plugin.tag_name == tag_name and plugin.renderer is not None:
            return plugin.renderer
    raise TemplateRenderError(f"no renderer for custom tag <{tag_name}>")
