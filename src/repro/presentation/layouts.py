"""Page layout categories (§5).

"For facilitating the writing of page rules, page layouts could be
classified into general categories (for instance, multi-frame pages,
two-columns pages, three-columns pages, and so on), and different rule
sets could be designed for each category of layout."

Each factory returns the :class:`PageRule` that turns a skeleton's bare
grid into that category's real chrome (banner, navigation strip,
footer).  Stylesheet builders pick the factories matching the layout
categories their site view uses.
"""

from __future__ import annotations

from repro.presentation.xslt import PageRule


def one_column_rule(site_name: str) -> PageRule:
    return PageRule(
        pattern="table[@class='page-grid']",
        add_class="layout-one-column",
        wrapper_html=(
            "<div class='page'>"
            f"<div class='site-banner'>{site_name}</div>"
            "<div class='page-body'><placeholder/></div>"
            f"<div class='site-footer'>{site_name} — generated</div>"
            "</div>"
        ),
        name="one-column",
    )


def two_column_rule(site_name: str) -> PageRule:
    return PageRule(
        pattern="table[@class='page-grid']",
        add_class="layout-two-columns",
        set_attrs={"data-columns": "2"},
        wrapper_html=(
            "<div class='page'>"
            f"<div class='site-banner'>{site_name}</div>"
            "<div class='page-columns'><placeholder/></div>"
            f"<div class='site-footer'>{site_name}</div>"
            "</div>"
        ),
        name="two-columns",
    )


def three_column_rule(site_name: str) -> PageRule:
    return PageRule(
        pattern="table[@class='page-grid']",
        add_class="layout-three-columns",
        set_attrs={"data-columns": "3"},
        wrapper_html=(
            "<div class='page'>"
            f"<div class='site-banner'>{site_name}</div>"
            "<div class='page-columns wide'><placeholder/></div>"
            f"<div class='site-footer'>{site_name}</div>"
            "</div>"
        ),
        name="three-columns",
    )


def multi_frame_rule(site_name: str) -> PageRule:
    return PageRule(
        pattern="table[@class='page-grid']",
        add_class="layout-multi-frame",
        wrapper_html=(
            "<div class='page frames'>"
            f"<div class='site-banner frame-top'>{site_name}</div>"
            "<div class='frame-left'>navigation</div>"
            "<div class='frame-main'><placeholder/></div>"
            "</div>"
        ),
        name="multi-frame",
    )


LAYOUT_RULE_FACTORIES = {
    "one-column": one_column_rule,
    "two-columns": two_column_rule,
    "three-columns": three_column_rule,
    "multi-frame": multi_frame_rule,
}


def rule_for_category(category: str, site_name: str) -> PageRule:
    factory = LAYOUT_RULE_FACTORIES.get(category, one_column_rule)
    return factory(site_name)
