"""Device profiles and user-agent driven stylesheet selection (§5).

"Different XSL rules can be designed addressing the presentation
requirements of alternative devices; then, the most appropriate rules
can be dynamically applied at runtime, based on the user agent declared
in the HTTP request."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PresentationError
from repro.presentation.xslt import Stylesheet, UnitRule


@dataclass
class DeviceProfile:
    """A device class recognized from User-Agent substrings."""

    name: str
    agent_markers: list[str] = field(default_factory=list)

    def matches(self, user_agent: str) -> bool:
        agent = user_agent.lower()
        return any(marker.lower() in agent for marker in self.agent_markers)


#: default profiles, most specific first
DEFAULT_PROFILES = [
    DeviceProfile("wap", ["wap", "nokia", "up.browser"]),
    DeviceProfile("pda", ["windows ce", "palm", "blazer", "pda"]),
    DeviceProfile("html", ["mozilla", "opera", "msie"]),
]


class DeviceRegistry:
    """Maps user agents to device profiles and profiles to stylesheets."""

    def __init__(self, profiles: list[DeviceProfile] | None = None):
        self.profiles = list(profiles or DEFAULT_PROFILES)
        self._stylesheets: dict[str, Stylesheet] = {}

    def register_stylesheet(self, stylesheet: Stylesheet) -> None:
        for device in stylesheet.devices:
            self._stylesheets[device] = stylesheet

    def profile_for(self, user_agent: str) -> DeviceProfile:
        for profile in self.profiles:
            if profile.matches(user_agent):
                return profile
        return self.profiles[-1] if self.profiles else DeviceProfile("html")

    def stylesheet_for(self, user_agent: str) -> Stylesheet:
        profile = self.profile_for(user_agent)
        stylesheet = self._stylesheets.get(profile.name)
        if stylesheet is None:
            stylesheet = self._stylesheets.get("html")
        if stylesheet is None:
            raise PresentationError(
                f"no stylesheet registered for device {profile.name!r} "
                "and no html fallback"
            )
        return stylesheet

    def devices(self) -> list[str]:
        return sorted(self._stylesheets)


def compact_device_stylesheet(name: str = "wap-style") -> Stylesheet:
    """A minimal-markup stylesheet for constrained devices: lists instead
    of tables, no titles, terse chrome."""
    return Stylesheet(
        name=name,
        devices=["wap", "pda"],
        unit_rules=[
            UnitRule(pattern="webml:indexUnit",
                     set_attrs={"render-as": "list"},
                     name="wap-index"),
            UnitRule(pattern="webml:dataUnit",
                     set_attrs={"show-title": "false"},
                     name="wap-data"),
        ],
        css=".unit { font-size: 90%; }",
    )
