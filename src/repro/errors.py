"""Exception hierarchy for the repro library.

Every layer raises a subclass of :class:`ReproError`, so callers can catch
the library's failures with a single ``except`` clause while still being
able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# ---------------------------------------------------------------------------
# XML kit
# ---------------------------------------------------------------------------

class XmlError(ReproError):
    """Malformed XML document or illegal tree operation."""


class XmlParseError(XmlError):
    """The XML parser rejected its input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be parsed."""


class SchemaError(DatabaseError):
    """DDL problem: unknown table/column, duplicate definition, bad type."""


class IntegrityError(DatabaseError):
    """Constraint violation: primary key, foreign key, NOT NULL, unique."""


class TypeMismatchError(DatabaseError):
    """A value does not fit the declared SQL type of its column."""


class QueryError(DatabaseError):
    """A semantically invalid query (unknown column, bad aggregate use...)."""


class ReplicationError(DatabaseError):
    """WAL-shipping replication failure: a write on a read-only replica,
    an out-of-order record (the stream lost its prefix), or a protocol
    violation on the shipping socket."""


# ---------------------------------------------------------------------------
# Conceptual models
# ---------------------------------------------------------------------------

class ModelError(ReproError):
    """Base class for ER/WebML model construction or validation errors."""


class ERModelError(ModelError):
    """Invalid Entity-Relationship model element."""


class WebMLError(ModelError):
    """Invalid WebML hypertext model element."""


class ValidationError(ModelError):
    """A model failed validation; ``problems`` lists every finding."""

    def __init__(self, problems: list[str]):
        super().__init__(
            "model validation failed with %d problem(s):\n%s"
            % (len(problems), "\n".join("  - " + p for p in problems))
        )
        self.problems = list(problems)


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------

class RuntimeLayerError(ReproError):
    """Base class for MVC/service runtime failures."""


class DescriptorError(RuntimeLayerError):
    """Missing or malformed unit/page descriptor."""


class ControllerError(RuntimeLayerError):
    """No action mapping for a request, or a broken mapping."""


class ServiceError(RuntimeLayerError):
    """A page/unit/operation service failed to compute."""


class OperationFailure(RuntimeLayerError):
    """An operation unit signalled its KO outcome.

    This is the *modelled* failure path (the KO link); the controller
    catches it and follows the KO link rather than propagating.
    """


class ContainerError(RuntimeLayerError):
    """Application-server container misuse (unknown component, exhausted pool)."""


# ---------------------------------------------------------------------------
# Presentation
# ---------------------------------------------------------------------------

class PresentationError(ReproError):
    """Base class for template/rule failures."""


class TemplateSyntaxError(PresentationError):
    """A page template could not be parsed."""


class TemplateRenderError(PresentationError):
    """A template referenced a bean or attribute that is not available."""


class RuleError(PresentationError):
    """An XSLT-style presentation rule is malformed or failed to apply."""


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

class CodegenError(ReproError):
    """The generator could not produce an artifact from the model."""


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------

class CacheError(ReproError):
    """Cache misconfiguration (unknown policy, bad dependency declaration)."""
