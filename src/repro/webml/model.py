"""WebML model containers and the fluent builder API.

A :class:`WebMLModel` holds site views; a :class:`SiteView` holds areas
and pages ("the structuring of the application into different
hypertexts ... the hierarchical organization of a site view into
areas", §1); a :class:`Page` holds content units.  Operation units hang
off their site view and are reached through links.

Every element receives a model-unique id (``sv1``, ``page3``,
``unit12``, ``op2``, ``link7``); links reference elements by id so the
model serializes cleanly and the controller configuration can be
generated from the topology alone (§7: "the configuration file ... is
automatically generated from the topology of the hypertext").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.er.model import ERModel
from repro.errors import WebMLError
from repro.webml.links import Link, LinkKind, LinkParameter
from repro.webml.operations import (
    ConnectUnit,
    CreateUnit,
    DeleteUnit,
    DisconnectUnit,
    LoginUnit,
    LogoutUnit,
    ModifyUnit,
    OperationUnit,
)
from repro.webml.selectors import Selector
from repro.webml.units import (
    ContentUnit,
    DataUnit,
    EntryField,
    EntryUnit,
    HierarchicalIndexUnit,
    HierarchyLevel,
    IndexUnit,
    MultichoiceIndexUnit,
    MultidataUnit,
    ScrollerUnit,
)


@dataclass
class Page:
    """A page and its content units.

    ``landmark`` pages appear in the site view's navigation menu on
    every page (WebML's landmark notion — the global entry points of a
    site view).
    """

    id: str
    name: str
    units: list[ContentUnit] = field(default_factory=list)
    layout_category: str = "one-column"  # §5: page layouts are classified
    landmark: bool = False
    _model: "WebMLModel | None" = field(default=None, repr=False)

    def _add_unit(self, unit: ContentUnit) -> ContentUnit:
        if any(u.name == unit.name for u in self.units):
            raise WebMLError(
                f"page {self.name!r} already has a unit named {unit.name!r}"
            )
        self.units.append(unit)
        assert self._model is not None
        self._model._register(unit.id, unit)
        self._model._unit_page[unit.id] = self.id
        return unit

    # -- unit builders (one per WebML unit kind) ---------------------------

    def data_unit(self, name: str, entity: str, **kwargs) -> DataUnit:
        return self._add_unit(
            DataUnit(self._model._new_id("unit"), name, entity=entity, **kwargs)
        )

    def index_unit(self, name: str, entity: str, **kwargs) -> IndexUnit:
        return self._add_unit(
            IndexUnit(self._model._new_id("unit"), name, entity=entity, **kwargs)
        )

    def multidata_unit(self, name: str, entity: str, **kwargs) -> MultidataUnit:
        return self._add_unit(
            MultidataUnit(self._model._new_id("unit"), name, entity=entity, **kwargs)
        )

    def multichoice_unit(self, name: str, entity: str, **kwargs) -> MultichoiceIndexUnit:
        return self._add_unit(
            MultichoiceIndexUnit(
                self._model._new_id("unit"), name, entity=entity, **kwargs
            )
        )

    def scroller_unit(self, name: str, entity: str, **kwargs) -> ScrollerUnit:
        return self._add_unit(
            ScrollerUnit(self._model._new_id("unit"), name, entity=entity, **kwargs)
        )

    def entry_unit(self, name: str, fields: list, **kwargs) -> EntryUnit:
        parsed = [
            f if isinstance(f, EntryField)
            else EntryField(*f) if isinstance(f, tuple) else EntryField(f)
            for f in fields
        ]
        return self._add_unit(
            EntryUnit(self._model._new_id("unit"), name, fields=parsed, **kwargs)
        )

    def hierarchical_index(
        self, name: str, levels: list[HierarchyLevel], **kwargs
    ) -> HierarchicalIndexUnit:
        return self._add_unit(
            HierarchicalIndexUnit(
                self._model._new_id("unit"), name, levels=levels, **kwargs
            )
        )

    def plugin_unit(self, name: str, kind: str, entity: str | None = None,
                    **kwargs) -> ContentUnit:
        """Place a §7 plug-in unit; its kind must be registered with the
        plug-in registry (which supplies service, tag, and rules)."""
        from repro.services.plugins import plugin_registry

        if plugin_registry.get(kind) is None:
            raise WebMLError(
                f"no plug-in registered for unit kind {kind!r}"
            )
        return self._add_unit(
            ContentUnit(self._model._new_id("unit"), name, entity=entity,
                        kind=kind, **kwargs)
        )

    def unit(self, name: str) -> ContentUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise WebMLError(f"page {self.name!r} has no unit {name!r}")


@dataclass
class Area:
    """A named group of pages (and sub-areas) inside a site view."""

    id: str
    name: str
    pages: list[Page] = field(default_factory=list)
    areas: list["Area"] = field(default_factory=list)
    _site_view: "SiteView | None" = field(default=None, repr=False)

    def page(self, name: str, **kwargs) -> Page:
        assert self._site_view is not None
        page = self._site_view._build_page(name, **kwargs)
        self.pages.append(page)
        return page

    def area(self, name: str) -> "Area":
        assert self._site_view is not None
        sub = Area(self._site_view._model._new_id("area"), name)
        sub._site_view = self._site_view
        self.areas.append(sub)
        self._site_view._model._register(sub.id, sub)
        return sub

    def all_pages(self) -> list[Page]:
        pages = list(self.pages)
        for sub in self.areas:
            pages.extend(sub.all_pages())
        return pages


@dataclass
class SiteView:
    """A hypertext targeted at one user group or device (§1)."""

    id: str
    name: str
    device: str = "html"
    requires_login: bool = False
    user_group: str | None = None
    pages: list[Page] = field(default_factory=list)
    areas: list[Area] = field(default_factory=list)
    operations: list[OperationUnit] = field(default_factory=list)
    home_page_id: str | None = None
    _model: "WebMLModel | None" = field(default=None, repr=False)

    # -- construction ------------------------------------------------------

    def _build_page(self, name: str, home: bool = False, **kwargs) -> Page:
        assert self._model is not None
        if any(p.name == name for p in self.all_pages()):
            raise WebMLError(
                f"site view {self.name!r} already has a page named {name!r}"
            )
        page = Page(self._model._new_id("page"), name, **kwargs)
        page._model = self._model
        self._model._register(page.id, page)
        self._model._page_site_view[page.id] = self.id
        if home or self.home_page_id is None:
            self.home_page_id = page.id
        return page

    def page(self, name: str, home: bool = False, **kwargs) -> Page:
        page = self._build_page(name, home=home, **kwargs)
        self.pages.append(page)
        return page

    def area(self, name: str) -> Area:
        assert self._model is not None
        area = Area(self._model._new_id("area"), name)
        area._site_view = self
        self.areas.append(area)
        self._model._register(area.id, area)
        return area

    def _add_operation(self, operation: OperationUnit) -> OperationUnit:
        assert self._model is not None
        if any(o.name == operation.name for o in self.operations):
            raise WebMLError(
                f"site view {self.name!r} already has operation {operation.name!r}"
            )
        self.operations.append(operation)
        self._model._register(operation.id, operation)
        self._model._operation_site_view[operation.id] = self.id
        return operation

    def create_op(self, name: str, entity: str, attributes: list[str]) -> CreateUnit:
        return self._add_operation(
            CreateUnit(self._model._new_id("op"), name, entity=entity,
                       attributes=attributes)
        )

    def delete_op(self, name: str, entity: str) -> DeleteUnit:
        return self._add_operation(
            DeleteUnit(self._model._new_id("op"), name, entity=entity)
        )

    def modify_op(self, name: str, entity: str, attributes: list[str]) -> ModifyUnit:
        return self._add_operation(
            ModifyUnit(self._model._new_id("op"), name, entity=entity,
                       attributes=attributes)
        )

    def connect_op(self, name: str, role: str) -> ConnectUnit:
        return self._add_operation(
            ConnectUnit(self._model._new_id("op"), name, role=role)
        )

    def disconnect_op(self, name: str, role: str) -> DisconnectUnit:
        return self._add_operation(
            DisconnectUnit(self._model._new_id("op"), name, role=role)
        )

    def login_op(self, name: str = "Login", **kwargs) -> LoginUnit:
        return self._add_operation(
            LoginUnit(self._model._new_id("op"), name, **kwargs)
        )

    def logout_op(self, name: str = "Logout") -> LogoutUnit:
        return self._add_operation(LogoutUnit(self._model._new_id("op"), name))

    # -- navigation ----------------------------------------------------------

    def all_pages(self) -> list[Page]:
        pages = list(self.pages)
        for area in self.areas:
            pages.extend(area.all_pages())
        return pages

    def find_page(self, name: str) -> Page:
        for page in self.all_pages():
            if page.name == name:
                return page
        raise WebMLError(f"site view {self.name!r} has no page {name!r}")

    def landmark_pages(self) -> list[Page]:
        """The pages shown in this view's global navigation menu."""
        return [p for p in self.all_pages() if p.landmark]

    @property
    def home_page(self) -> Page:
        if self.home_page_id is None:
            raise WebMLError(f"site view {self.name!r} has no pages")
        assert self._model is not None
        return self._model.element(self.home_page_id)


class WebMLModel:
    """The root of a WebML specification, bound to its ER data model."""

    def __init__(self, data_model: ERModel, name: str = "application"):
        self.name = name
        self.data_model = data_model
        self.site_views: list[SiteView] = []
        self.links: list[Link] = []
        self._elements: dict[str, object] = {}
        self._counters: dict[str, int] = {}
        self._unit_page: dict[str, str] = {}
        self._page_site_view: dict[str, str] = {}
        self._operation_site_view: dict[str, str] = {}
        # topology indexes: generation at Acer scale (3068 units, ~2800
        # links) must stay linear, not units x links
        self._links_by_source: dict[str, list[Link]] = {}
        self._links_by_target: dict[str, list[Link]] = {}

    # -- identity -----------------------------------------------------------

    def _new_id(self, prefix: str) -> str:
        self._counters[prefix] = self._counters.get(prefix, 0) + 1
        return f"{prefix}{self._counters[prefix]}"

    def _register(self, element_id: str, element) -> None:
        if element_id in self._elements:
            raise WebMLError(f"duplicate element id {element_id!r}")
        self._elements[element_id] = element

    def element(self, element_id: str):
        try:
            return self._elements[element_id]
        except KeyError:
            raise WebMLError(f"unknown element id {element_id!r}") from None

    def has_element(self, element_id: str) -> bool:
        return element_id in self._elements

    # -- construction ----------------------------------------------------------

    def site_view(self, name: str, **kwargs) -> SiteView:
        if any(sv.name == name for sv in self.site_views):
            raise WebMLError(f"duplicate site view {name!r}")
        view = SiteView(self._new_id("sv"), name, **kwargs)
        view._model = self
        self.site_views.append(view)
        self._register(view.id, view)
        return view

    def find_site_view(self, name: str) -> SiteView:
        for view in self.site_views:
            if view.name == name:
                return view
        raise WebMLError(f"unknown site view {name!r}")

    def link(
        self,
        source,
        target,
        kind: LinkKind | str = LinkKind.NORMAL,
        params: list[tuple[str, str]] | None = None,
        label: str | None = None,
    ) -> Link:
        """Create a link between two elements (objects or ids)."""
        source_id = source if isinstance(source, str) else source.id
        target_id = target if isinstance(target, str) else target.id
        for element_id in (source_id, target_id):
            if not self.has_element(element_id):
                raise WebMLError(f"link endpoint {element_id!r} is not in the model")
        link = Link(
            id=self._new_id("link"),
            kind=kind if isinstance(kind, LinkKind) else LinkKind.parse(kind),
            source=source_id,
            target=target_id,
            parameters=[LinkParameter(o, i) for o, i in (params or [])],
            label=label,
        )
        self.links.append(link)
        self._links_by_source.setdefault(source_id, []).append(link)
        self._links_by_target.setdefault(target_id, []).append(link)
        return link

    def remove_link(self, link: Link) -> None:
        self.links.remove(link)
        self._links_by_source.get(link.source, []).remove(link)
        self._links_by_target.get(link.target, []).remove(link)

    def retarget_link(self, link: Link, new_target) -> Link:
        """Point an existing link at a different element (the §7 re-link
        gesture).  Mutating ``link.target`` directly would desynchronize
        the topology indexes; always go through this method."""
        target_id = new_target if isinstance(new_target, str) else new_target.id
        if not self.has_element(target_id):
            raise WebMLError(f"link target {target_id!r} is not in the model")
        self._links_by_target.get(link.target, []).remove(link)
        link.target = target_id
        self._links_by_target.setdefault(target_id, []).append(link)
        return link

    # -- topology queries ----------------------------------------------------------

    def links_from(self, element) -> list[Link]:
        element_id = element if isinstance(element, str) else element.id
        return list(self._links_by_source.get(element_id, []))

    def links_to(self, element) -> list[Link]:
        element_id = element if isinstance(element, str) else element.id
        return list(self._links_by_target.get(element_id, []))

    def page_of_unit(self, unit) -> Page:
        unit_id = unit if isinstance(unit, str) else unit.id
        try:
            return self.element(self._unit_page[unit_id])
        except KeyError:
            raise WebMLError(f"unit {unit_id!r} belongs to no page") from None

    def site_view_of_page(self, page) -> SiteView:
        page_id = page if isinstance(page, str) else page.id
        try:
            return self.element(self._page_site_view[page_id])
        except KeyError:
            raise WebMLError(f"page {page_id!r} belongs to no site view") from None

    def site_view_of_operation(self, operation) -> SiteView:
        operation_id = operation if isinstance(operation, str) else operation.id
        try:
            return self.element(self._operation_site_view[operation_id])
        except KeyError:
            raise WebMLError(
                f"operation {operation_id!r} belongs to no site view"
            ) from None

    def all_pages(self) -> list[Page]:
        pages: list[Page] = []
        for view in self.site_views:
            pages.extend(view.all_pages())
        return pages

    def all_units(self) -> list[ContentUnit]:
        units: list[ContentUnit] = []
        for page in self.all_pages():
            units.extend(page.units)
        return units

    def all_operations(self) -> list[OperationUnit]:
        operations: list[OperationUnit] = []
        for view in self.site_views:
            operations.extend(view.operations)
        return operations

    # -- statistics (the numbers §8 reports) ------------------------------------------

    def statistics(self) -> dict[str, int]:
        return {
            "site_views": len(self.site_views),
            "pages": len(self.all_pages()),
            "units": len(self.all_units()),
            "operations": len(self.all_operations()),
            "links": len(self.links),
        }

    def validate(self) -> None:
        from repro.webml.validation import validate_model

        validate_model(self)
