"""Operation units.

Operations "execute some processing and then display a result page"
(§1).  They are not contained in pages; links trigger them, and their
OK/KO links decide where the user lands afterwards — possibly chaining
through further operations.  WebML's built-in content-management
operations (§8 lists create, delete, modify, connect, disconnect) plus
the session operations (login/logout) are implemented; user-defined
operations plug in through :mod:`repro.services.plugins`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WebMLError


@dataclass
class OperationUnit:
    """Base operation.

    ``input_slots``/``output_slots`` define the dataflow contract the
    descriptors and the runtime honour, mirroring content units.
    """

    id: str
    name: str
    kind: str = "operation"

    def __post_init__(self) -> None:
        if not self.name:
            raise WebMLError("operation name must be non-empty")

    @property
    def input_slots(self) -> list[str]:
        return []

    @property
    def output_slots(self) -> list[str]:
        return []

    @property
    def writes_entities(self) -> list[str]:
        """Entities whose instances this operation may change (drives
        §6's automatic cache invalidation)."""
        return []

    @property
    def writes_roles(self) -> list[str]:
        """Relationship roles this operation may change."""
        return []


@dataclass
class CreateUnit(OperationUnit):
    """Creates an instance of ``entity`` from the incoming slot values
    (one slot per attribute); outputs the new object's oid."""

    entity: str | None = None
    attributes: list[str] = field(default_factory=list)
    kind: str = "create"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.entity:
            raise WebMLError(f"create unit {self.name!r} needs an entity")

    @property
    def input_slots(self) -> list[str]:
        return list(self.attributes)

    @property
    def output_slots(self) -> list[str]:
        return ["oid"]

    @property
    def writes_entities(self) -> list[str]:
        return [self.entity]


@dataclass
class DeleteUnit(OperationUnit):
    """Deletes the instance(s) whose oid(s) arrive on the input."""

    entity: str | None = None
    kind: str = "delete"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.entity:
            raise WebMLError(f"delete unit {self.name!r} needs an entity")

    @property
    def input_slots(self) -> list[str]:
        return ["oid"]

    @property
    def writes_entities(self) -> list[str]:
        return [self.entity]


@dataclass
class ModifyUnit(OperationUnit):
    """Updates the listed attributes of the instance given by oid."""

    entity: str | None = None
    attributes: list[str] = field(default_factory=list)
    kind: str = "modify"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.entity:
            raise WebMLError(f"modify unit {self.name!r} needs an entity")
        if not self.attributes:
            raise WebMLError(f"modify unit {self.name!r} needs attributes to set")

    @property
    def input_slots(self) -> list[str]:
        return ["oid"] + list(self.attributes)

    @property
    def output_slots(self) -> list[str]:
        return ["oid"]

    @property
    def writes_entities(self) -> list[str]:
        return [self.entity]


@dataclass
class ConnectUnit(OperationUnit):
    """Creates an instance of relationship ``role`` between the objects
    arriving as ``source_oid`` and ``target_oid``."""

    role: str | None = None
    kind: str = "connect"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.role:
            raise WebMLError(f"connect unit {self.name!r} needs a relationship role")

    @property
    def input_slots(self) -> list[str]:
        return ["source_oid", "target_oid"]

    @property
    def writes_roles(self) -> list[str]:
        return [self.role]


@dataclass
class DisconnectUnit(OperationUnit):
    """Removes the relationship instance between the two objects."""

    role: str | None = None
    kind: str = "disconnect"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.role:
            raise WebMLError(
                f"disconnect unit {self.name!r} needs a relationship role"
            )

    @property
    def input_slots(self) -> list[str]:
        return ["source_oid", "target_oid"]

    @property
    def writes_roles(self) -> list[str]:
        return [self.role]


@dataclass
class LoginUnit(OperationUnit):
    """Authenticates against the ``user_entity`` (username/password
    attributes) and binds the user to the session — the paper's
    "session-level information and personalization aspects"."""

    user_entity: str = "User"
    username_attribute: str = "username"
    password_attribute: str = "password"
    kind: str = "login"

    @property
    def input_slots(self) -> list[str]:
        return ["username", "password"]

    @property
    def output_slots(self) -> list[str]:
        return ["oid"]


@dataclass
class LogoutUnit(OperationUnit):
    """Clears the session's user binding."""

    kind: str = "logout"
