"""Hypertext diagram export (Graphviz DOT).

The paper's workflow is diagram-centric — "the developer re-links the
pages in the WebML diagram" (§7) — and Figure 1 is exactly such a
diagram: pages as rectangles, units as labelled icons inside them, links
as arrows (dashed for transport).  :func:`model_to_dot` renders a model
in that visual convention so any Graphviz viewer reproduces the paper's
notation.
"""

from __future__ import annotations

from repro.webml.links import LinkKind
from repro.webml.model import Area, SiteView, WebMLModel

#: unit kind → the icon-ish glyph shown before the unit name
UNIT_GLYPHS = {
    "data": "▢",
    "index": "≣",
    "multidata": "▤",
    "multichoice": "☑",
    "scroller": "⇄",
    "entry": "✎",
    "hierarchical": "≣≣",
}

_LINK_STYLE = {
    LinkKind.NORMAL: 'style=solid',
    LinkKind.TRANSPORT: 'style=dashed',
    LinkKind.AUTOMATIC: 'style=dotted',
    LinkKind.OK: 'style=solid, color="darkgreen", label="OK"',
    LinkKind.KO: 'style=solid, color="red", label="KO"',
}


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _unit_label(unit) -> str:
    glyph = UNIT_GLYPHS.get(unit.kind, "⚙")
    label = f"{glyph} {unit.name}"
    if unit.entity:
        label += f"\\n{unit.entity}"
        roles = unit.depends_on_roles
        if roles:
            label += f" [{', '.join(roles)}]"
    return label


def model_to_dot(model: WebMLModel,
                 site_view_names: list[str] | None = None) -> str:
    """Render the hypertext as a DOT document.

    ``site_view_names`` restricts the drawing (a 22-site-view portal is
    unreadable on one canvas); links whose two ends are both drawn are
    included.
    """
    wanted = None if site_view_names is None else set(site_view_names)
    lines = [
        f"digraph {_quote(model.name)} {{",
        "  rankdir=LR;",
        "  compound=true;",
        '  node [fontname="Helvetica", fontsize=10];',
        "  node [shape=box, style=rounded];",
    ]
    drawn: set[str] = set()
    anchors: dict[str, str] = {}  # page id → a node inside its cluster
    for view in model.site_views:
        if wanted is not None and view.name not in wanted:
            continue
        lines.append(f"  subgraph cluster_{view.id} {{")
        lines.append(f"    label={_quote('site view: ' + view.name)};")
        lines.append('    style=dashed;')
        _emit_pages(view, lines, drawn, anchors, indent="    ")
        for operation in view.operations:
            lines.append(
                f"    {operation.id} [shape=ellipse, "
                f"label={_quote('⚙ ' + operation.name)}];"
            )
            drawn.add(operation.id)
        lines.append("  }")
    for link in model.links:
        if link.source not in drawn or link.target not in drawn:
            continue
        attrs = _LINK_STYLE[link.kind]
        if link.label and link.kind not in (LinkKind.OK, LinkKind.KO):
            attrs += f", label={_quote(link.label)}"
        if link.parameters:
            tooltip = ", ".join(
                f"{p.source_output}→{p.target_input}"
                for p in link.parameters
            )
            attrs += f", tooltip={_quote(tooltip)}"
        # DOT edges must join nodes; page endpoints use an anchor unit
        # plus lhead/ltail so the arrow visually meets the page border.
        source = link.source
        target = link.target
        if source in anchors:
            attrs += f", ltail=cluster_{source}"
            source = anchors[source]
        if target in anchors:
            attrs += f", lhead=cluster_{target}"
            target = anchors[target]
        lines.append(f"  {source} -> {target} [{attrs}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _emit_pages(container: SiteView | Area, lines: list[str],
                drawn: set[str], anchors: dict[str, str],
                indent: str) -> None:
    for page in container.pages:
        lines.append(f"{indent}subgraph cluster_{page.id} {{")
        lines.append(f"{indent}  label={_quote(page.name)};")
        lines.append(f"{indent}  style=solid;")
        if not page.units:
            lines.append(f"{indent}  {page.id}_anchor "
                         "[shape=point, style=invis];")
            anchors[page.id] = f"{page.id}_anchor"
        for unit in page.units:
            lines.append(
                f"{indent}  {unit.id} [label={_quote(_unit_label(unit))}];"
            )
            drawn.add(unit.id)
        if page.units:
            anchors[page.id] = page.units[0].id
        drawn.add(page.id)
        lines.append(f"{indent}}}")
    for area in getattr(container, "areas", []):
        lines.append(f"{indent}subgraph cluster_{area.id} {{")
        lines.append(f"{indent}  label={_quote('area: ' + area.name)};")
        lines.append(f"{indent}  style=dotted;")
        _emit_pages(area, lines, drawn, anchors, indent + "  ")
        lines.append(f"{indent}}}")
