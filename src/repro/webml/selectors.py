"""Unit selectors.

A selector restricts the instances a content unit publishes.  Figure 1's
hierarchical index displays ``Issue[VolumeToIssue]``: the issues reached
from the current volume via the VolumeToIssue role.  Selector conditions
come in three kinds:

- :class:`KeyCondition` — select by object identifier, supplied through a
  link parameter (the data unit's implicit behaviour),
- :class:`AttributeCondition` — compare an attribute to a constant or a
  link parameter,
- :class:`RelationshipCondition` — keep instances related to a given
  object through a relationship role.

Conditions AND together.  Parameter-driven conditions name the unit
*input* slot that feeds them; link parameters bind outputs of other
units to those slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WebMLError

_OPERATORS = ("=", "<>", "<", "<=", ">", ">=", "like")


@dataclass
class KeyCondition:
    """Select the instance whose oid equals the ``parameter`` input."""

    parameter: str = "oid"

    @property
    def parameters(self) -> list[str]:
        return [self.parameter]


@dataclass
class AttributeCondition:
    """``attribute <op> value-or-parameter``.

    Exactly one of ``value`` / ``parameter`` must be set.  ``parameter``
    names an input slot fed by a link (e.g. an entry-unit field).
    """

    attribute: str
    operator: str = "="
    value: object = None
    parameter: str | None = None

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise WebMLError(f"unknown selector operator {self.operator!r}")
        if (self.value is None) == (self.parameter is None):
            raise WebMLError(
                "attribute condition needs exactly one of value / parameter"
            )

    @property
    def parameters(self) -> list[str]:
        return [self.parameter] if self.parameter else []


@dataclass
class RelationshipCondition:
    """Keep instances related via ``role`` to the object identified by
    the ``parameter`` input (the ``Entity[Role]`` notation)."""

    role: str
    parameter: str | None = None

    def __post_init__(self) -> None:
        if self.parameter is None:
            # Default slot name: the role itself, snake-cased.
            from repro.util import make_identifier

            self.parameter = make_identifier(self.role)

    @property
    def parameters(self) -> list[str]:
        return [self.parameter]


Condition = KeyCondition | AttributeCondition | RelationshipCondition


@dataclass
class Selector:
    """A conjunctive list of conditions."""

    conditions: list[Condition] = field(default_factory=list)

    @property
    def parameters(self) -> list[str]:
        """All input slots this selector needs, in declaration order."""
        slots: list[str] = []
        for condition in self.conditions:
            for parameter in condition.parameters:
                if parameter not in slots:
                    slots.append(parameter)
        return slots

    @staticmethod
    def by_key(parameter: str = "oid") -> "Selector":
        return Selector([KeyCondition(parameter)])

    @staticmethod
    def over_role(role: str, parameter: str | None = None) -> "Selector":
        return Selector([RelationshipCondition(role, parameter)])
