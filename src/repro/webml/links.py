"""Links between pages, units and operations.

The paper distinguishes links by what they do at runtime:

- ``NORMAL`` — rendered as an anchor/button; following it navigates and
  transports parameters (Figure 1's arrow from the index unit to the
  paper page),
- ``TRANSPORT`` — the dashed arrow: no user interaction, parameters flow
  automatically between units of the same page,
- ``AUTOMATIC`` — navigated by the runtime on page load when the user
  provides no explicit choice (used to give units a default input),
- ``OK`` / ``KO`` — the outcome links of an operation, deciding "to
  which page redirect the user in case of operation failure" (§2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WebMLError


class LinkKind(enum.Enum):
    NORMAL = "normal"
    TRANSPORT = "transport"
    AUTOMATIC = "automatic"
    OK = "ok"
    KO = "ko"

    @classmethod
    def parse(cls, text: str) -> "LinkKind":
        for member in cls:
            if member.value == text.lower():
                return member
        raise WebMLError(f"unknown link kind {text!r}")


@dataclass(frozen=True)
class LinkParameter:
    """Bind one output of the link's source to one input slot of its
    target (``source_output`` → ``target_input``)."""

    source_output: str
    target_input: str


@dataclass
class Link:
    """A directed link between two model elements (by element id)."""

    id: str
    kind: LinkKind
    source: str
    target: str
    parameters: list[LinkParameter] = field(default_factory=list)
    label: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            self.kind = LinkKind.parse(self.kind)

    def carry(self, source_output: str, target_input: str | None = None) -> "Link":
        """Fluent helper: add a parameter binding (defaults to same name)."""
        self.parameters.append(
            LinkParameter(source_output, target_input or source_output)
        )
        return self

    @property
    def is_navigational(self) -> bool:
        """Does following this link cause a page change?"""
        return self.kind in (LinkKind.NORMAL, LinkKind.AUTOMATIC)
