"""XML persistence of WebML models.

WebRatio stores the hypertext specification as an XML project document;
this module provides the equivalent round-trippable serialization.
Element ids are written out but regenerated on load (links are remapped),
so a loaded model is structurally identical without depending on the
builder's id counters.
"""

from __future__ import annotations

from repro.er.model import ERModel
from repro.errors import WebMLError
from repro.webml.links import LinkKind
from repro.webml.model import Area, Page, SiteView, WebMLModel
from repro.webml.operations import (
    ConnectUnit,
    CreateUnit,
    DeleteUnit,
    DisconnectUnit,
    LoginUnit,
    LogoutUnit,
    ModifyUnit,
    OperationUnit,
)
from repro.webml.selectors import (
    AttributeCondition,
    KeyCondition,
    RelationshipCondition,
    Selector,
)
from repro.webml.units import (
    ContentUnit,
    EntryField,
    EntryUnit,
    HierarchicalIndexUnit,
    HierarchyLevel,
)
from repro.xmlkit import Element, parse_xml, pretty_print


def _bool(value: bool) -> str:
    return "true" if value else "false"


def _order_to_text(order_by: list[tuple[str, bool]]) -> str:
    return ",".join(f"{attr}:{'desc' if desc else 'asc'}" for attr, desc in order_by)


def _order_from_text(text: str) -> list[tuple[str, bool]]:
    items: list[tuple[str, bool]] = []
    for piece in filter(None, text.split(",")):
        attr, _sep, direction = piece.partition(":")
        items.append((attr, direction == "desc"))
    return items


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def webml_to_xml(model: WebMLModel) -> str:
    root = Element("webml", {"name": model.name, "datamodel": model.data_model.name})
    for view in model.site_views:
        root.append(_site_view_to_xml(model, view))
    links_el = root.add("links")
    for link in model.links:
        link_el = links_el.add(
            "link",
            {
                "id": link.id,
                "kind": link.kind.value,
                "source": link.source,
                "target": link.target,
            },
        )
        if link.label:
            link_el.set("label", link.label)
        for parameter in link.parameters:
            link_el.add(
                "param",
                {"output": parameter.source_output, "input": parameter.target_input},
            )
    return pretty_print(root)


def _site_view_to_xml(model: WebMLModel, view: SiteView) -> Element:
    view_el = Element(
        "siteview",
        {
            "id": view.id,
            "name": view.name,
            "device": view.device,
            "requiresLogin": _bool(view.requires_login),
        },
    )
    if view.user_group:
        view_el.set("group", view.user_group)
    if view.home_page_id:
        view_el.set("home", view.home_page_id)
    for page in view.pages:
        view_el.append(_page_to_xml(page))
    for area in view.areas:
        view_el.append(_area_to_xml(area))
    for operation in view.operations:
        view_el.append(_operation_to_xml(operation))
    return view_el


def _area_to_xml(area: Area) -> Element:
    area_el = Element("area", {"id": area.id, "name": area.name})
    for page in area.pages:
        area_el.append(_page_to_xml(page))
    for sub in area.areas:
        area_el.append(_area_to_xml(sub))
    return area_el


def _page_to_xml(page: Page) -> Element:
    page_el = Element(
        "page",
        {"id": page.id, "name": page.name, "layout": page.layout_category},
    )
    if page.landmark:
        page_el.set("landmark", "true")
    for unit in page.units:
        page_el.append(_unit_to_xml(unit))
    return page_el


def _unit_to_xml(unit: ContentUnit) -> Element:
    unit_el = Element("unit", {"id": unit.id, "name": unit.name, "kind": unit.kind})
    if unit.entity:
        unit_el.set("entity", unit.entity)
    if unit.extra_inputs:
        unit_el.set("extraInputs", ",".join(unit.extra_inputs))
    if unit.extra_outputs:
        unit_el.set("extraOutputs", ",".join(unit.extra_outputs))
    if unit.cacheable:
        unit_el.set("cacheable", "true")
        unit_el.set("cachePolicy", unit.cache_policy)
    if unit.display_attributes:
        unit_el.set("display", ",".join(unit.display_attributes))
    order_by = getattr(unit, "order_by", None)
    if order_by:
        unit_el.set("order", _order_to_text(order_by))
    if getattr(unit, "block_size", None) and unit.kind == "scroller":
        unit_el.set("blockSize", str(unit.block_size))
    if unit.selector and not _is_implicit_selector(unit):
        unit_el.append(_selector_to_xml(unit.selector))
    if isinstance(unit, EntryUnit):
        for field in unit.fields:
            field_el = unit_el.add(
                "field",
                {
                    "name": field.name,
                    "type": field.field_type,
                    "required": _bool(field.required),
                },
            )
            if field.label:
                field_el.set("label", field.label)
    if isinstance(unit, HierarchicalIndexUnit):
        for level in unit.levels:
            level_el = unit_el.add("level", {"entity": level.entity})
            if level.role:
                level_el.set("role", level.role)
            if level.display_attributes:
                level_el.set("display", ",".join(level.display_attributes))
            if level.order_by:
                level_el.set("order", _order_to_text(level.order_by))
    return unit_el


def _is_implicit_selector(unit: ContentUnit) -> bool:
    """Data units get ``Selector.by_key()`` and rooted hierarchical units
    get a role selector implicitly; don't serialize those."""
    if unit.kind == "data":
        conditions = unit.selector.conditions
        return len(conditions) == 1 and isinstance(conditions[0], KeyCondition) \
            and conditions[0].parameter == "oid"
    if unit.kind == "hierarchical":
        level0 = unit.levels[0]
        if level0.role is None:
            return unit.selector is None
        conditions = unit.selector.conditions
        return (
            len(conditions) == 1
            and isinstance(conditions[0], RelationshipCondition)
            and conditions[0].role == level0.role
        )
    return unit.selector is None


def _selector_to_xml(selector: Selector) -> Element:
    selector_el = Element("selector")
    for condition in selector.conditions:
        if isinstance(condition, KeyCondition):
            selector_el.add("key", {"parameter": condition.parameter})
        elif isinstance(condition, AttributeCondition):
            attrs = {"attribute": condition.attribute, "op": condition.operator}
            if condition.parameter is not None:
                attrs["parameter"] = condition.parameter
            else:
                attrs["value"] = str(condition.value)
            selector_el.add("attributeCondition", attrs)
        elif isinstance(condition, RelationshipCondition):
            selector_el.add(
                "roleCondition",
                {"role": condition.role, "parameter": condition.parameter},
            )
    return selector_el


def _operation_to_xml(operation: OperationUnit) -> Element:
    op_el = Element(
        "operation",
        {"id": operation.id, "name": operation.name, "kind": operation.kind},
    )
    entity = getattr(operation, "entity", None)
    if entity:
        op_el.set("entity", entity)
    role = getattr(operation, "role", None)
    if role:
        op_el.set("role", role)
    attributes = getattr(operation, "attributes", None)
    if attributes:
        op_el.set("attributes", ",".join(attributes))
    if isinstance(operation, LoginUnit):
        op_el.set("userEntity", operation.user_entity)
        op_el.set("usernameAttribute", operation.username_attribute)
        op_el.set("passwordAttribute", operation.password_attribute)
    return op_el


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------


def webml_from_xml(document: str, data_model: ERModel) -> WebMLModel:
    root = parse_xml(document)
    if root.tag != "webml":
        raise WebMLError(f"expected <webml> document, got <{root.tag}>")
    model = WebMLModel(data_model, name=root.get("name", "application"))
    id_map: dict[str, str] = {}

    for view_el in root.find_all("siteview"):
        view = model.site_view(
            view_el.require_attr("name"),
            device=view_el.get("device", "html"),
            requires_login=view_el.get("requiresLogin") == "true",
            user_group=view_el.get("group"),
        )
        id_map[view_el.require_attr("id")] = view.id
        for child in view_el.element_children():
            if child.tag == "page":
                _load_page(view, child, id_map)
            elif child.tag == "area":
                _load_area(view.area(child.require_attr("name")), child, id_map)
            elif child.tag == "operation":
                _load_operation(view, child, id_map)
        home = view_el.get("home")
        if home and home in id_map:
            view.home_page_id = id_map[home]

    links_el = root.find("links")
    if links_el is not None:
        for link_el in links_el.find_all("link"):
            link = model.link(
                id_map[link_el.require_attr("source")],
                id_map[link_el.require_attr("target")],
                kind=LinkKind.parse(link_el.require_attr("kind")),
                label=link_el.get("label"),
            )
            for param_el in link_el.find_all("param"):
                link.carry(
                    param_el.require_attr("output"), param_el.require_attr("input")
                )
    return model


def _load_area(area: Area, area_el: Element, id_map: dict) -> None:
    id_map[area_el.require_attr("id")] = area.id
    for child in area_el.element_children():
        if child.tag == "page":
            _load_page(area, child, id_map)
        elif child.tag == "area":
            _load_area(area.area(child.require_attr("name")), child, id_map)


def _load_page(container, page_el: Element, id_map: dict) -> None:
    page = container.page(
        page_el.require_attr("name"),
        layout_category=page_el.get("layout", "one-column"),
        landmark=page_el.get("landmark") == "true",
    )
    id_map[page_el.require_attr("id")] = page.id
    for unit_el in page_el.find_all("unit"):
        unit = _load_unit(page, unit_el)
        id_map[unit_el.require_attr("id")] = unit.id


def _load_unit(page: Page, unit_el: Element) -> ContentUnit:
    kind = unit_el.require_attr("kind")
    name = unit_el.require_attr("name")
    common: dict = {}
    display = unit_el.get("display")
    if display:
        common["display_attributes"] = display.split(",")
    if unit_el.get("extraInputs"):
        common["extra_inputs"] = unit_el.get("extraInputs").split(",")
    if unit_el.get("extraOutputs"):
        common["extra_outputs"] = unit_el.get("extraOutputs").split(",")
    if unit_el.get("cacheable") == "true":
        common["cacheable"] = True
        common["cache_policy"] = unit_el.get("cachePolicy", "model-driven")
    selector_el = unit_el.find("selector")
    if selector_el is not None:
        common["selector"] = _load_selector(selector_el)
    order = unit_el.get("order")
    order_by = _order_from_text(order) if order else []

    if kind == "entry":
        fields = [
            EntryField(
                name=f.require_attr("name"),
                field_type=f.get("type", "text"),
                required=f.get("required") == "true",
                label=f.get("label"),
            )
            for f in unit_el.find_all("field")
        ]
        return page.entry_unit(name, fields, **common)
    if kind == "hierarchical":
        levels = [
            HierarchyLevel(
                entity=level_el.require_attr("entity"),
                role=level_el.get("role"),
                display_attributes=(level_el.get("display") or "").split(",")
                if level_el.get("display") else [],
                order_by=_order_from_text(level_el.get("order") or ""),
            )
            for level_el in unit_el.find_all("level")
        ]
        return page.hierarchical_index(name, levels, **common)

    from repro.services.plugins import plugin_registry

    if plugin_registry.get(kind) is not None:
        return page.plugin_unit(name, kind, entity=unit_el.get("entity"),
                                **common)

    entity = unit_el.require_attr("entity")
    if kind == "data":
        return page.data_unit(name, entity, **common)
    if kind == "index":
        return page.index_unit(name, entity, order_by=order_by, **common)
    if kind == "multidata":
        return page.multidata_unit(name, entity, order_by=order_by, **common)
    if kind == "multichoice":
        return page.multichoice_unit(name, entity, order_by=order_by, **common)
    if kind == "scroller":
        return page.scroller_unit(
            name,
            entity,
            block_size=int(unit_el.get("blockSize", "10")),
            order_by=order_by,
            **common,
        )
    raise WebMLError(f"unknown unit kind {kind!r} in XML")


def _load_selector(selector_el: Element) -> Selector:
    conditions = []
    for condition_el in selector_el.element_children():
        if condition_el.tag == "key":
            conditions.append(KeyCondition(condition_el.get("parameter", "oid")))
        elif condition_el.tag == "attributeCondition":
            parameter = condition_el.get("parameter")
            conditions.append(
                AttributeCondition(
                    attribute=condition_el.require_attr("attribute"),
                    operator=condition_el.get("op", "="),
                    value=condition_el.get("value") if parameter is None else None,
                    parameter=parameter,
                )
            )
        elif condition_el.tag == "roleCondition":
            conditions.append(
                RelationshipCondition(
                    role=condition_el.require_attr("role"),
                    parameter=condition_el.get("parameter"),
                )
            )
        else:
            raise WebMLError(f"unknown selector condition <{condition_el.tag}>")
    return Selector(conditions)


def _load_operation(view: SiteView, op_el: Element, id_map: dict) -> None:
    kind = op_el.require_attr("kind")
    name = op_el.require_attr("name")
    attributes = (op_el.get("attributes") or "").split(",") \
        if op_el.get("attributes") else []
    if kind == "create":
        operation = view.create_op(name, op_el.require_attr("entity"), attributes)
    elif kind == "delete":
        operation = view.delete_op(name, op_el.require_attr("entity"))
    elif kind == "modify":
        operation = view.modify_op(name, op_el.require_attr("entity"), attributes)
    elif kind == "connect":
        operation = view.connect_op(name, op_el.require_attr("role"))
    elif kind == "disconnect":
        operation = view.disconnect_op(name, op_el.require_attr("role"))
    elif kind == "login":
        operation = view.login_op(
            name,
            user_entity=op_el.get("userEntity", "User"),
            username_attribute=op_el.get("usernameAttribute", "username"),
            password_attribute=op_el.get("passwordAttribute", "password"),
        )
    elif kind == "logout":
        operation = view.logout_op(name)
    else:
        raise WebMLError(f"unknown operation kind {kind!r} in XML")
    id_map[op_el.require_attr("id")] = operation.id
