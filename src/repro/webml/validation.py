"""Whole-model structural validation.

The paper's premise is that the WebML specification is *formal* enough
to derive the implementation from it (§1); validation is what makes
that safe.  :func:`validate_model` re-checks everything the builder
API cannot see locally: ER references, selector roles, link endpoint
compatibility, parameter coverage, and operation outcome links.  All
problems are collected and reported together in a
:class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

from repro.errors import ERModelError, ValidationError
from repro.webml.links import Link, LinkKind
from repro.webml.operations import (
    ConnectUnit,
    CreateUnit,
    DeleteUnit,
    DisconnectUnit,
    LoginUnit,
    ModifyUnit,
    OperationUnit,
)
from repro.webml.selectors import (
    AttributeCondition,
    KeyCondition,
    RelationshipCondition,
)
from repro.webml.units import ContentUnit, EntryUnit, HierarchicalIndexUnit, ScrollerUnit


def validate_model(model) -> None:
    problems: list[str] = []
    data_model = model.data_model

    for view in model.site_views:
        if not view.all_pages():
            problems.append(f"site view {view.name!r} has no pages")

    for page in model.all_pages():
        for unit in page.units:
            _check_unit(model, page, unit, problems)

    for operation in model.all_operations():
        _check_operation(data_model, operation, problems)
        outgoing = model.links_from(operation)
        if not any(l.kind == LinkKind.OK for l in outgoing):
            problems.append(
                f"operation {operation.name!r} has no OK link (no success target)"
            )
        for link in outgoing:
            if link.kind not in (LinkKind.OK, LinkKind.KO):
                problems.append(
                    f"operation {operation.name!r} has a non-OK/KO outgoing "
                    f"link ({link.kind.value})"
                )

    for link in model.links:
        _check_link(model, link, problems)

    _check_parameter_coverage(model, problems)

    if problems:
        raise ValidationError(problems)


def _check_unit(model, page, unit: ContentUnit, problems: list[str]) -> None:
    data_model = model.data_model
    label = f"unit {unit.name!r} (page {page.name!r})"
    if isinstance(unit, EntryUnit):
        if not unit.fields:
            problems.append(f"{label}: entry unit has no fields")
        return
    if unit.entity is None:
        from repro.services.plugins import plugin_registry

        if plugin_registry.get(unit.kind) is not None:
            return  # §7 plug-in units may be entity-less (e.g. web services)
        problems.append(f"{label}: content unit without an entity")
        return
    if not data_model.has_entity(unit.entity):
        problems.append(f"{label}: unknown entity {unit.entity!r}")
        return
    entity = data_model.entity(unit.entity)
    for attribute in unit.display_attributes:
        if attribute != "oid" and not entity.has_attribute(attribute):
            problems.append(
                f"{label}: displays unknown attribute {attribute!r} of "
                f"{unit.entity!r}"
            )
    for attribute, _desc in getattr(unit, "order_by", []):
        if attribute != "oid" and not entity.has_attribute(attribute):
            problems.append(
                f"{label}: orders by unknown attribute {attribute!r}"
            )
    if unit.selector:
        _check_selector(data_model, unit, label, problems)
    if isinstance(unit, HierarchicalIndexUnit):
        _check_hierarchy(data_model, unit, label, problems)


def _check_selector(data_model, unit: ContentUnit, label: str,
                    problems: list[str]) -> None:
    entity = data_model.entity(unit.entity)
    for condition in unit.selector.conditions:
        if isinstance(condition, AttributeCondition):
            if not entity.has_attribute(condition.attribute):
                problems.append(
                    f"{label}: selector on unknown attribute "
                    f"{condition.attribute!r}"
                )
        elif isinstance(condition, RelationshipCondition):
            try:
                _from_entity, to_entity = _role_endpoints(
                    data_model, condition.role
                )
            except ERModelError:
                problems.append(
                    f"{label}: selector over unknown role {condition.role!r}"
                )
                continue
            if to_entity != unit.entity:
                problems.append(
                    f"{label}: role {condition.role!r} leads to "
                    f"{to_entity!r}, not to the unit's entity {unit.entity!r}"
                )
        elif isinstance(condition, KeyCondition):
            pass  # always valid on an entity-bound unit


def _role_endpoints(data_model, role: str) -> tuple[str, str]:
    relationship, forward = data_model.resolve_role(role)
    if forward:
        return relationship.source, relationship.target
    return relationship.target, relationship.source


def _check_hierarchy(data_model, unit: HierarchicalIndexUnit, label: str,
                     problems: list[str]) -> None:
    previous_entity: str | None = None
    for position, level in enumerate(unit.levels):
        if not data_model.has_entity(level.entity):
            problems.append(
                f"{label}: hierarchy level {position} uses unknown entity "
                f"{level.entity!r}"
            )
            previous_entity = level.entity
            continue
        if position > 0:
            if level.role is None:
                problems.append(
                    f"{label}: hierarchy level {position} needs a role to "
                    "reach it from the previous level"
                )
            else:
                try:
                    from_entity, to_entity = _role_endpoints(
                        data_model, level.role
                    )
                except ERModelError:
                    problems.append(
                        f"{label}: hierarchy level {position} uses unknown "
                        f"role {level.role!r}"
                    )
                    previous_entity = level.entity
                    continue
                if from_entity != previous_entity or to_entity != level.entity:
                    problems.append(
                        f"{label}: hierarchy level {position} role "
                        f"{level.role!r} connects {from_entity!r}→{to_entity!r},"
                        f" expected {previous_entity!r}→{level.entity!r}"
                    )
        entity = data_model.entity(level.entity)
        for attribute in level.display_attributes:
            if attribute != "oid" and not entity.has_attribute(attribute):
                problems.append(
                    f"{label}: hierarchy level {position} displays unknown "
                    f"attribute {attribute!r}"
                )
        previous_entity = level.entity


def _check_operation(data_model, operation: OperationUnit,
                     problems: list[str]) -> None:
    label = f"operation {operation.name!r}"
    if isinstance(operation, (CreateUnit, DeleteUnit, ModifyUnit)):
        if not data_model.has_entity(operation.entity):
            problems.append(f"{label}: unknown entity {operation.entity!r}")
            return
        entity = data_model.entity(operation.entity)
        for attribute in getattr(operation, "attributes", []):
            if not entity.has_attribute(attribute):
                problems.append(
                    f"{label}: unknown attribute {attribute!r} of "
                    f"{operation.entity!r}"
                )
    elif isinstance(operation, (ConnectUnit, DisconnectUnit)):
        if not data_model.has_relationship(operation.role):
            problems.append(f"{label}: unknown relationship role {operation.role!r}")
    elif isinstance(operation, LoginUnit):
        if not data_model.has_entity(operation.user_entity):
            problems.append(
                f"{label}: unknown user entity {operation.user_entity!r}"
            )
        else:
            entity = data_model.entity(operation.user_entity)
            for attribute in (operation.username_attribute,
                              operation.password_attribute):
                if not entity.has_attribute(attribute):
                    problems.append(
                        f"{label}: user entity lacks attribute {attribute!r}"
                    )


def _element_kind(model, element_id: str) -> str:
    from repro.webml.model import Area, Page, SiteView

    element = model.element(element_id)
    if isinstance(element, Page):
        return "page"
    if isinstance(element, OperationUnit):
        return "operation"
    if isinstance(element, ContentUnit):
        return "unit"
    if isinstance(element, (SiteView, Area)):
        return "container"
    return "other"


def _check_link(model, link: Link, problems: list[str]) -> None:
    source_kind = _element_kind(model, link.source)
    target_kind = _element_kind(model, link.target)
    label = f"link {link.id} ({link.kind.value})"

    if link.kind == LinkKind.TRANSPORT:
        if source_kind != "unit" or target_kind != "unit":
            problems.append(f"{label}: transport links connect units to units")
        else:
            source_page = model.page_of_unit(link.source)
            target_page = model.page_of_unit(link.target)
            if source_page.id != target_page.id:
                problems.append(
                    f"{label}: transport links stay within one page "
                    f"({source_page.name!r} → {target_page.name!r})"
                )
    elif link.kind in (LinkKind.OK, LinkKind.KO):
        if source_kind != "operation":
            problems.append(f"{label}: only operations have OK/KO links")
        if target_kind not in ("page", "unit", "operation"):
            problems.append(f"{label}: OK/KO target must be page/unit/operation")
    elif link.kind in (LinkKind.NORMAL, LinkKind.AUTOMATIC):
        if source_kind not in ("unit", "page"):
            problems.append(f"{label}: source must be a unit or page")
        if target_kind not in ("unit", "page", "operation"):
            problems.append(f"{label}: target must be a unit, page or operation")

    # Parameter bindings must honour the endpoints' dataflow contracts.
    source_element = model.element(link.source)
    target_element = model.element(link.target)
    for parameter in link.parameters:
        outputs = getattr(source_element, "output_slots", None)
        if outputs is not None and parameter.source_output not in outputs:
            problems.append(
                f"{label}: source has no output {parameter.source_output!r} "
                f"(available: {', '.join(outputs) or 'none'})"
            )
        inputs = getattr(target_element, "input_slots", None)
        if inputs is not None and parameter.target_input not in inputs:
            problems.append(
                f"{label}: target has no input {parameter.target_input!r} "
                f"(available: {', '.join(inputs) or 'none'})"
            )


def _check_parameter_coverage(model, problems: list[str]) -> None:
    """Every unit/operation input slot must be fed by some incoming link."""
    fed: dict[str, set[str]] = {}
    for link in model.links:
        slots = fed.setdefault(link.target, set())
        for parameter in link.parameters:
            slots.add(parameter.target_input)

    for page in model.all_pages():
        for unit in page.units:
            for slot in unit.input_slots:
                if isinstance(unit, ScrollerUnit) and slot == "block":
                    continue  # supplied by the runtime's scroller navigation
                if slot.startswith("session."):
                    continue  # supplied by the session (login state, §1)
                if slot not in fed.get(unit.id, set()):
                    problems.append(
                        f"unit {unit.name!r} (page {page.name!r}): input "
                        f"{slot!r} is never fed by any link"
                    )
    for operation in model.all_operations():
        for slot in operation.input_slots:
            if slot not in fed.get(operation.id, set()):
                problems.append(
                    f"operation {operation.name!r}: input {slot!r} is never "
                    "fed by any link"
                )
